"""Repository-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run against
the checkout even when the package has not been installed.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
