"""Setuptools shim: enables editable installs in environments without the
``wheel`` package (``python setup.py develop``)."""

from setuptools import setup

setup()
