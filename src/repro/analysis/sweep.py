"""Load sweeps: latency-vs-throughput curves, one simulation per point.

The paper's Figures 13-16 plot average communication latency against
average network throughput as the offered load rises.  A sweep runs the
simulator at a list of offered loads and collects the
:class:`~repro.simulation.metrics.SimulationResult` per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..routing.base import RoutingAlgorithm
from ..simulation.config import SimulationConfig
from ..simulation.engine import WormholeSimulator
from ..simulation.metrics import SimulationResult


@dataclass
class SweepSeries:
    """One algorithm's latency/throughput curve under one pattern."""

    algorithm: str
    pattern: str
    results: List[SimulationResult]

    def points(self) -> List[Tuple[float, Optional[float]]]:
        """(delivered throughput in flits/us, avg latency in us) pairs."""
        return [
            (r.throughput_flits_per_us, r.avg_latency_us) for r in self.results
        ]

    def sustainable_results(self) -> List[SimulationResult]:
        return [r for r in self.results if r.sustainable]

    def max_sustainable_throughput(self) -> float:
        """Highest delivered throughput among sustainable points."""
        sustainable = self.sustainable_results()
        if not sustainable:
            return 0.0
        return max(r.throughput_flits_per_us for r in sustainable)

    def rows(self) -> List[str]:
        header = (
            f"# {self.algorithm} / {self.pattern}\n"
            f"# offered(fl/us)  delivered(fl/us)  latency(us)  sustainable"
        )
        lines = [header]
        for r in self.results:
            latency = r.avg_latency_us
            lat = f"{latency:11.2f}" if latency is not None else "        n/a"
            lines.append(
                f"{r.offered_flits_per_us:15.1f} {r.throughput_flits_per_us:17.1f} "
                f"{lat}  {'yes' if r.sustainable else 'NO'}"
            )
        return lines


def run_sweep(
    algorithm: RoutingAlgorithm,
    pattern,
    loads: Sequence[float],
    base_config: Optional[SimulationConfig] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> SweepSeries:
    """Simulate each offered load in ``loads`` (flits/us/node)."""
    if base_config is None:
        base_config = SimulationConfig()
    results = []
    for load in loads:
        sim = WormholeSimulator(algorithm, pattern, base_config.with_load(load))
        result = sim.run()
        results.append(result)
        if progress is not None:
            progress(result)
    return SweepSeries(
        algorithm=algorithm.name,
        pattern=getattr(pattern, "name", type(pattern).__name__),
        results=results,
    )


def compare_algorithms(
    algorithms: Sequence[RoutingAlgorithm],
    pattern_factory: Callable[[object], object],
    loads: Sequence[float],
    base_config: Optional[SimulationConfig] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> List[SweepSeries]:
    """One sweep per algorithm; ``pattern_factory(topology)`` builds the
    workload for each algorithm's topology (they normally share one)."""
    series = []
    for algorithm in algorithms:
        pattern = pattern_factory(algorithm.topology)
        series.append(
            run_sweep(algorithm, pattern, loads, base_config, progress)
        )
    return series
