"""Load sweeps: latency-vs-throughput curves, one simulation per point.

The paper's Figures 13-16 plot average communication latency against
average network throughput as the offered load rises.  A sweep runs the
simulator at a list of offered loads and collects the
:class:`~repro.simulation.metrics.SimulationResult` per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..routing.base import RoutingAlgorithm
from ..simulation.config import SimulationConfig
from ..simulation.engine import WormholeSimulator
from ..simulation.metrics import SimulationResult
from .runner import ParallelSweepRunner, PointSpec, point_spec


@dataclass
class SweepSeries:
    """One algorithm's latency/throughput curve under one pattern.

    Under the runner's ``keep_going`` mode a permanently failed point
    leaves ``None`` at its position (docs/RESILIENCE.md); every
    aggregate here skips the holes and :meth:`rows` marks them.
    """

    algorithm: str
    pattern: str
    results: List[Optional[SimulationResult]]

    def completed_results(self) -> List[SimulationResult]:
        """The results that were actually delivered (no ``None`` holes)."""
        return [r for r in self.results if r is not None]

    def points(self) -> List[Tuple[float, Optional[float]]]:
        """(delivered throughput in flits/us, avg latency in us) pairs."""
        return [
            (r.throughput_flits_per_us, r.avg_latency_us)
            for r in self.completed_results()
        ]

    def sustainable_results(self) -> List[SimulationResult]:
        return [r for r in self.completed_results() if r.sustainable]

    def max_sustainable_throughput(self) -> float:
        """Highest delivered throughput among sustainable points."""
        sustainable = self.sustainable_results()
        if not sustainable:
            return 0.0
        return max(r.throughput_flits_per_us for r in sustainable)

    def rows(self) -> List[str]:
        header = (
            f"# {self.algorithm} / {self.pattern}\n"
            f"# offered(fl/us)  delivered(fl/us)  latency(us)  sustainable"
        )
        lines = [header]
        for r in self.results:
            if r is None:
                lines.append("         FAILED            FAILED         "
                             "FAILED  (see failure manifest)")
                continue
            latency = r.avg_latency_us
            lat = f"{latency:11.2f}" if latency is not None else "        n/a"
            # Three decimals: a 0.02 vs 0.04 flits/us/node sweep on a
            # small network differs by far less than 0.1 aggregate
            # flits/us, which a .1f column collapsed into equal rows.
            lines.append(
                f"{r.offered_flits_per_us:15.3f} {r.throughput_flits_per_us:17.3f} "
                f"{lat}  {'yes' if r.sustainable else 'NO'}"
            )
        return lines


def _specs_for(
    algorithm: RoutingAlgorithm,
    pattern,
    loads: Sequence[float],
    base_config: SimulationConfig,
) -> Optional[List[PointSpec]]:
    """Picklable specs for one sweep, or None when the algorithm or
    pattern cannot be rebuilt from a spec (hand-built objects)."""
    try:
        return [
            point_spec(algorithm, pattern, base_config.with_load(load))
            for load in loads
        ]
    except ValueError:
        return None


def run_sweep(
    algorithm: RoutingAlgorithm,
    pattern,
    loads: Sequence[float],
    base_config: Optional[SimulationConfig] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> SweepSeries:
    """Simulate each offered load in ``loads`` (flits/us/node).

    With a :class:`~repro.analysis.runner.ParallelSweepRunner` the
    points fan out over its worker pool and result cache; results are
    bit-identical to the serial path.  Hand-built algorithms/patterns
    that a worker cannot rebuild from a spec fall back to the serial
    in-process loop.
    """
    if base_config is None:
        base_config = SimulationConfig()
    pattern_name = getattr(pattern, "name", type(pattern).__name__)
    if runner is not None:
        specs = _specs_for(algorithm, pattern, loads, base_config)
        if specs is not None:
            results = runner.run_points(specs, progress=progress)
            return SweepSeries(
                algorithm=algorithm.name,
                pattern=pattern_name,
                results=results,
            )
    results = []
    for load in loads:
        sim = WormholeSimulator(algorithm, pattern, base_config.with_load(load))
        result = sim.run()
        results.append(result)
        if progress is not None:
            progress(result)
    return SweepSeries(
        algorithm=algorithm.name,
        pattern=pattern_name,
        results=results,
    )


def compare_algorithms(
    algorithms: Sequence[RoutingAlgorithm],
    pattern_factory: Callable[[object], object],
    loads: Sequence[float],
    base_config: Optional[SimulationConfig] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SweepSeries]:
    """One sweep per algorithm; ``pattern_factory(topology)`` builds the
    workload for each algorithm's topology (they normally share one).

    With a runner, the whole (algorithm x load) grid is submitted as a
    single batch so the pool stays saturated across series boundaries.
    """
    if base_config is None:
        base_config = SimulationConfig()
    if runner is not None:
        batched = _batched_comparison(
            algorithms, pattern_factory, loads, base_config, progress, runner
        )
        if batched is not None:
            return batched
    series = []
    for algorithm in algorithms:
        pattern = pattern_factory(algorithm.topology)
        series.append(
            run_sweep(algorithm, pattern, loads, base_config, progress)
        )
    return series


def _batched_comparison(
    algorithms: Sequence[RoutingAlgorithm],
    pattern_factory: Callable[[object], object],
    loads: Sequence[float],
    base_config: SimulationConfig,
    progress,
    runner: ParallelSweepRunner,
) -> Optional[List[SweepSeries]]:
    """All algorithms' points as one runner batch, or None if any
    algorithm/pattern is not spec-representable."""
    all_specs: List[PointSpec] = []
    spans = []  # (algorithm name, pattern name, offset)
    for algorithm in algorithms:
        pattern = pattern_factory(algorithm.topology)
        specs = _specs_for(algorithm, pattern, loads, base_config)
        if specs is None:
            return None
        spans.append(
            (
                algorithm.name,
                getattr(pattern, "name", type(pattern).__name__),
                len(all_specs),
            )
        )
        all_specs.extend(specs)
    results = runner.run_points(all_specs, progress=progress)
    n = len(loads)
    return [
        SweepSeries(
            algorithm=name, pattern=pat, results=results[off:off + n]
        )
        for name, pat, off in spans
    ]
