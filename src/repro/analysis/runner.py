"""Parallel experiment execution with on-disk result caching.

The paper's evaluation is a grid of *independent* operating points —
(algorithm x pattern x offered load) — so reproducing a figure is an
embarrassingly parallel job.  This module provides the execution layer
the sweep/saturation/figure harnesses route through:

* :class:`PointSpec` — a picklable description of one operating point
  (topology spec string, algorithm name, pattern name, and the full
  :class:`~repro.simulation.config.SimulationConfig`).  Workers rebuild
  the live topology/algorithm/pattern objects from the spec, so nothing
  unpicklable ever crosses a process boundary.
* :class:`ResultCache` — an on-disk store of finished
  :class:`~repro.simulation.metrics.SimulationResult` objects keyed by a
  deterministic content hash of the point spec plus the package version.
  Re-running a figure with an unchanged configuration is instant.
* :class:`ParallelSweepRunner` — fans a batch of specs out over a
  supervised worker pool (or runs them inline for ``jobs=1``), serves
  cache hits, records wall-clock/points-per-second statistics, and
  invokes a per-point progress callback as results arrive.

Batches execute under the supervision layer of
:mod:`repro.analysis.supervision` (docs/RESILIENCE.md): worker crashes,
hangs, and exceptions become structured :class:`~repro.analysis.
supervision.PointFailure` records instead of lost campaigns, failed
points retry with bounded backoff, ``keep_going`` mode delivers every
healthy point of a partially-failing batch, and an optional JSONL
:class:`~repro.analysis.supervision.CampaignJournal` checkpoints each
completed point so an interrupted campaign resumes where it stopped.

Because every point simulates with its own private RNG seeded from the
config, parallel execution is bit-identical to the serial path: the same
spec always produces the same :class:`SimulationResult`, regardless of
worker count, completion order, or how many times a point was retried.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .supervision import (
    BatchReport,
    CampaignJournal,
    PointExecutionError,
    PointFailure,
    SupervisedPool,
)

from ..routing.base import RoutingAlgorithm
from ..routing.registry import make_algorithm
from ..simulation.array_engine import BatchSimulator, make_simulator
from ..simulation.config import SimulationConfig
from ..simulation.metrics import SimulationResult
from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh, mesh
from ..topology.torus import KAryNCube
from ..traffic.patterns import (
    BitComplementPattern,
    HypercubeTransposePattern,
    MeshTransposePattern,
    ReverseFlipPattern,
    TrafficPattern,
    UniformPattern,
)

CACHE_SCHEMA = 4
"""Bumped whenever the cached payload layout changes; part of every key.

Schema 2: :class:`SimulationResult` grew the graceful-degradation fields
(drops by cause, kill/retry counts, max stall age) and
:class:`SimulationConfig` the fault-injection knobs — entries cached by
schema-1 code must not be silently reused (see docs/PERFORMANCE.md).

Schema 3: the observability collectors (docs/OBSERVABILITY.md) added
``channel_util_series``/``router_blocked_cycles``/``latency_histogram``
to :class:`SimulationResult` and the collector knobs to
:class:`SimulationConfig`; old entries lack those payload fields, so
they key out.

Schema 4: :class:`SimulationConfig` gained the ``backend`` engine
selector (docs/SIMULATOR.md).  The backends are proven bit-identical,
but the key must cover every config field uniformly, so entries keyed
by schema-3 code retire rather than aliasing."""

ProgressCallback = Callable[[SimulationResult], None]


def _code_version() -> str:
    """The installed package version (part of every cache key, so a new
    release never serves results simulated by old code)."""
    import repro

    return getattr(repro, "__version__", "unknown")


# ---------------------------------------------------------------------------
# Spec strings <-> live objects
# ---------------------------------------------------------------------------


def parse_topology_spec(spec: str) -> Topology:
    """Parse ``mesh:16x16`` / ``cube:8`` / ``torus:8x2`` into a topology.

    Raises :class:`ValueError` for malformed specs (the CLI wraps this
    into a usage error).
    """
    try:
        kind, _, shape = spec.partition(":")
        if kind == "mesh":
            dims = tuple(int(part) for part in shape.split("x"))
            return mesh(dims)
        if kind == "cube":
            return Hypercube(int(shape))
        if kind == "torus":
            k, n = (int(part) for part in shape.split("x"))
            return KAryNCube(k, n)
    except (ValueError, TypeError):
        pass
    raise ValueError(
        f"bad topology spec {spec!r}; expected mesh:AxB, cube:N, or torus:KxN"
    )


def topology_spec(topology: Topology) -> str:
    """Inverse of :func:`parse_topology_spec` for the built-in topologies.

    Raises :class:`ValueError` for topology classes without a spec form
    (callers fall back to in-process serial execution for those).
    """
    if isinstance(topology, KAryNCube):
        return f"torus:{topology.k}x{topology.n_dims}"
    if isinstance(topology, Hypercube):
        return f"cube:{topology.order}"
    if isinstance(topology, Mesh):
        return "mesh:" + "x".join(str(k) for k in topology.dims)
    raise ValueError(
        f"topology {type(topology).__name__} has no spec-string form"
    )


PATTERN_NAMES: Tuple[str, ...] = (
    "uniform",
    "transpose",
    "reverse-flip",
    "bit-complement",
)


def make_pattern(name: str, topology: Topology) -> TrafficPattern:
    """Build the named traffic pattern on ``topology``.

    ``transpose`` dispatches on the topology (the paper embeds the mesh
    transpose into the hypercube).  Raises :class:`ValueError` for
    unknown names.
    """
    if name == "uniform":
        return UniformPattern(topology)
    if name == "transpose":
        if isinstance(topology, Hypercube):
            return HypercubeTransposePattern(topology)
        return MeshTransposePattern(topology)
    if name == "reverse-flip":
        return ReverseFlipPattern(topology)
    if name == "bit-complement":
        return BitComplementPattern(topology)
    raise ValueError(
        f"unknown pattern {name!r}; choose from {PATTERN_NAMES}"
    )


# ---------------------------------------------------------------------------
# Point specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """One operating point, described entirely by picklable values."""

    topology: str
    """Topology spec string, e.g. ``"mesh:16x16"``."""

    algorithm: str
    """Routing-algorithm registry name, e.g. ``"west-first"``."""

    pattern: str
    """Traffic-pattern name, e.g. ``"uniform"``."""

    config: SimulationConfig
    """The full simulation configuration (includes the offered load)."""

    def build(self) -> Tuple[RoutingAlgorithm, TrafficPattern]:
        """Rebuild the live algorithm and pattern objects."""
        topo = parse_topology_spec(self.topology)
        algorithm = make_algorithm(self.algorithm, topo)
        pattern = make_pattern(self.pattern, topo)
        return algorithm, pattern

    def execute(self) -> SimulationResult:
        """Run the simulation for this point (in the calling process),
        on the engine backend named by ``config.backend``."""
        algorithm, pattern = self.build()
        return make_simulator(algorithm, pattern, self.config).run()

    def to_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "config": self.config.to_dict(),
        }

    def cache_key(self) -> str:
        """Deterministic content hash of this point.

        Covers the topology spec, algorithm name, pattern name, every
        :class:`SimulationConfig` field, the cache schema version, and
        the package version — changing any of them misses the cache.
        """
        payload = {
            "schema": CACHE_SCHEMA,
            "code": _code_version(),
            "point": self.to_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def point_spec(
    algorithm: RoutingAlgorithm,
    pattern: TrafficPattern,
    config: SimulationConfig,
) -> PointSpec:
    """Describe live objects as a :class:`PointSpec`, validating that a
    worker process can rebuild equivalent objects from it.

    Raises :class:`ValueError` when the algorithm or pattern is not
    registry-constructible (e.g. a custom turn model built by hand);
    callers then fall back to in-process serial execution.
    """
    topo_spec = topology_spec(algorithm.topology)
    rebuilt_topology = parse_topology_spec(topo_spec)
    try:
        rebuilt = make_algorithm(algorithm.name, rebuilt_topology)
    except (KeyError, ValueError) as exc:
        raise ValueError(
            f"algorithm {algorithm.name!r} is not registry-constructible: "
            f"{exc}"
        ) from exc
    if rebuilt.name != algorithm.name:
        raise ValueError(
            f"registry round-trip changed the algorithm name: "
            f"{algorithm.name!r} -> {rebuilt.name!r}"
        )
    pattern_name = getattr(pattern, "name", None)
    if not isinstance(pattern_name, str):
        raise ValueError(f"pattern {pattern!r} has no name")
    rebuilt_pattern = make_pattern(pattern_name, rebuilt_topology)
    if type(rebuilt_pattern) is not type(pattern):
        raise ValueError(
            f"pattern {pattern_name!r} rebuilds as "
            f"{type(rebuilt_pattern).__name__}, not {type(pattern).__name__}"
        )
    return PointSpec(
        topology=topo_spec,
        algorithm=algorithm.name,
        pattern=pattern_name,
        config=config,
    )


# ---------------------------------------------------------------------------
# Array-backend batching
# ---------------------------------------------------------------------------


def array_batch_indices(
    specs: Sequence[PointSpec], pending: Sequence[int]
) -> List[int]:
    """The subset of ``pending`` indices eligible for one batched
    array-engine pass.

    A point qualifies when its spec carries a real config with
    ``backend == "array"`` and can ``build()`` live objects; duck-typed
    specs (``execute()``/``cache_key()`` only — e.g. the chaos-test
    specs) always take the generic per-point paths.  Shared by the
    inline batching fast path and the supervised sharding path so the
    two can never disagree about membership.
    """
    return [
        i
        for i in pending
        if getattr(getattr(specs[i], "config", None), "backend", None)
        == "array"
        and hasattr(specs[i], "build")
    ]


@dataclass
class _ArrayShardSpec:
    """A picklable sub-batch of array-backend points for one supervised
    worker: ``execute()`` runs them as a single :class:`BatchSimulator`
    pass and returns their results in shard order."""

    indices: Tuple[int, ...]
    """Positions of the shard's points in the parent batch."""

    specs: Tuple[PointSpec, ...]
    """The point specs, parallel to ``indices``."""

    def execute(self) -> List[SimulationResult]:
        points = []
        for spec in self.specs:
            algorithm, pattern = spec.build()
            points.append((algorithm, pattern, spec.config))
        return BatchSimulator(points).run()


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Finished :class:`SimulationResult` objects, one pickle per point.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is
    :meth:`PointSpec.cache_key`.  Each entry stores the spec alongside
    the result and is validated on read, so a (vanishingly unlikely)
    hash collision or a corrupted file degrades to a cache miss, never
    to a wrong answer.  Writes are atomic (temp file + rename), so
    concurrent workers and concurrent runs can share one cache.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: PointSpec) -> Path:
        key = spec.cache_key()
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, spec: PointSpec) -> Optional[SimulationResult]:
        """The cached result for ``spec``, or None."""
        path = self.path_for(spec)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if entry.get("point") != spec.to_dict():
                raise ValueError("cache entry does not match its key")
            result = entry["result"]
        except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result: SimulationResult) -> Path:
        """Store ``result`` for ``spec`` (atomic, last writer wins)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"point": spec.to_dict(), "result": result}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also sweeps up orphaned ``*.tmp`` files left behind by writers
        that crashed between ``mkstemp`` and the atomic rename (they
        are invisible to :meth:`__len__` and would otherwise accumulate
        forever) and prunes shard directories the sweep left empty.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for orphan in self.root.glob("*/*.tmp"):
            try:
                orphan.unlink()
            except OSError:
                pass
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class RunnerStats:
    """Cumulative accounting across a runner's batches."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    wall_seconds: float = 0.0

    @property
    def points(self) -> int:
        return self.executed + self.cached

    @property
    def points_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.points / self.wall_seconds

    def summary(self) -> str:
        text = (
            f"{self.wall_seconds:.1f}s wall, {self.points} points "
            f"({self.executed} simulated, {self.cached} cached), "
            f"{self.points_per_second:.1f} points/s"
        )
        if self.failed or self.retried:
            text += (
                f", {self.failed} failed, {self.retried} retried attempt(s)"
            )
        return text


class ParallelSweepRunner:
    """Executes batches of :class:`PointSpec` with supervised workers
    and a cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means one per CPU, ``1`` runs every
        point inline in the calling process (no pool) unless a
        supervision knob below forces a worker anyway.
    cache:
        A :class:`ResultCache`, a directory path to open one at, or
        ``None`` to disable caching entirely.
    force:
        Ignore cached entries (results are still written back, so a
        forced run refreshes the cache).  Points a resumed journal
        marks done are exempt — resuming never redoes finished work.
    progress:
        Called with each :class:`SimulationResult` as it becomes
        available (cache hits included).  Runs in the parent process.
    point_timeout:
        Per-point wall-clock limit in seconds; a worker past it is
        killed and the point counts as a ``timeout`` attempt.  ``None``
        (the default) disables the watchdog.
    max_point_retries:
        Extra attempts granted to a crashed/hung/raising point before
        it becomes a permanent :class:`PointFailure` (default 0).
    keep_going:
        When True a permanently failed point yields ``None`` in the
        batch results (and a manifest entry in :attr:`failures`)
        instead of aborting the batch.  The default ``fail_fast``
        behaviour raises :class:`~repro.analysis.supervision.
        PointExecutionError` on the first permanent failure.
    retry_backoff_base / retry_backoff_cap:
        Bounded exponential backoff (seconds) between a point's
        attempts; see :class:`~repro.analysis.supervision.
        SupervisedPool`.
    journal:
        A :class:`~repro.analysis.supervision.CampaignJournal`, or a
        path to open one at, checkpointing each completed point's cache
        key (fsynced, SIGKILL-safe).  ``resume`` controls whether an
        existing file is continued or truncated.
    resume:
        With a journal: load previously completed points and serve them
        from the cache instead of re-executing (requires a cache).

    Any of ``point_timeout``/``max_point_retries``/``keep_going``/
    ``journal`` engages supervision; without them (and with the
    caller's historical ``jobs``/``cache`` usage) execution follows the
    original zero-overhead path and is bit-identical to it.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[object] = None,
        force: bool = False,
        progress: Optional[ProgressCallback] = None,
        point_timeout: Optional[float] = None,
        max_point_retries: int = 0,
        keep_going: bool = False,
        retry_backoff_base: float = 0.5,
        retry_backoff_cap: float = 30.0,
        journal: Optional[Union[CampaignJournal, os.PathLike, str]] = None,
        resume: bool = False,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if max_point_retries < 0:
            raise ValueError("max_point_retries must be non-negative")
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.force = force
        self.progress = progress
        self.point_timeout = point_timeout
        self.max_point_retries = max_point_retries
        self.keep_going = keep_going
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        if resume and journal is None:
            raise ValueError("resume requires a journal")
        if resume and cache is None:
            raise ValueError(
                "resume requires the result cache (journaled points are "
                "served from it)"
            )
        if journal is not None and not isinstance(journal, CampaignJournal):
            journal = CampaignJournal(journal, resume=resume)
        self.journal: Optional[CampaignJournal] = journal
        self.resume = resume
        self.stats = RunnerStats()
        self.failures: List[PointFailure] = []

    @property
    def supervised(self) -> bool:
        """Whether any supervision feature is engaged (timeout, retry,
        keep_going, or journal)."""
        return (
            self.point_timeout is not None
            or self.max_point_retries > 0
            or self.keep_going
            or self.journal is not None
        )

    def close(self) -> None:
        """Close the campaign journal, if any."""
        if self.journal is not None:
            self.journal.close()

    def run_point(
        self, spec: PointSpec, progress: Optional[ProgressCallback] = None
    ) -> SimulationResult:
        return self.run_points([spec], progress=progress)[0]

    def run_points(
        self,
        specs: Sequence[PointSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        """Run a batch, returning results in spec order.

        Under ``keep_going`` a permanently failed point leaves ``None``
        at its position (the downstream aggregators all tolerate the
        holes); otherwise a failure raises and no list is returned.
        Use :meth:`run_batch` to also get the failure manifest.
        """
        return self.run_batch(specs, progress=progress).results  # type: ignore[return-value]

    def run_batch(
        self,
        specs: Sequence[PointSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Run a batch, returning spec-ordered results plus the failure
        manifest.

        Cache hits (and, when resuming, journaled points) are served
        first; the rest fan out over the supervised worker pool (inline
        for ``jobs=1`` without supervision).  Results are bit-identical
        to running each spec serially because every simulation owns a
        private RNG seeded from its config.  Wall-clock and point
        accounting are committed even when the batch dies mid-flight.
        """
        report = progress if progress is not None else self.progress
        started = time.perf_counter()
        results: List[Optional[SimulationResult]] = [None] * len(specs)
        batch_failures: List[PointFailure] = []
        try:
            pending: List[int] = []
            for i, spec in enumerate(specs):
                hit = None
                if self.cache is not None:
                    journaled = (
                        self.resume
                        and self.journal is not None
                        and self.journal.done(spec.cache_key())
                    )
                    if journaled or not self.force:
                        hit = self.cache.get(spec)
                if hit is not None:
                    results[i] = hit
                    self.stats.cached += 1
                    if self.journal is not None:
                        self.journal.record_point(
                            spec.cache_key(), cached=True
                        )
                    if report is not None:
                        report(hit)
                else:
                    pending.append(i)

            if not pending:
                return BatchReport(results, batch_failures)

            # Array-backend points execute as batched engine passes:
            # stacking them is the entire point of the backend (numpy
            # kernels advance every member per cycle), and it beats
            # fanning them out one per worker process.  Results are
            # bit-identical to per-point runs (equivalence suite) and
            # are recorded per point, so cache/journal/progress behave
            # exactly as if each had run alone.  Unsupervised batches
            # run as ONE in-process pass; supervised campaigns shard
            # the set into per-worker sub-batches (crash isolation and
            # the wall-clock watchdog then apply per shard, with the
            # timeout scaled by shard size).
            abatch = array_batch_indices(specs, pending)
            if not self.supervised:
                if len(abatch) > 1:
                    points = []
                    for i in abatch:
                        algorithm, pattern = specs[i].build()
                        points.append((algorithm, pattern, specs[i].config))
                    for i, result in zip(
                        abatch, BatchSimulator(points).run()
                    ):
                        results[i] = result
                        self._record(specs[i], result, report)
                    done = set(abatch)
                    pending = [i for i in pending if i not in done]
                    if not pending:
                        return BatchReport(results, batch_failures)
            elif len(abatch) > 1:
                pending = self._run_supervised_shards(
                    specs, pending, abatch, results, batch_failures, report
                )
                if not pending:
                    return BatchReport(results, batch_failures)

            if not self.supervised and (self.jobs == 1 or len(pending) == 1):
                for i in pending:
                    results[i] = specs[i].execute()
                    self._record(specs[i], results[i], report)
                return BatchReport(results, batch_failures)

            pool = SupervisedPool(
                workers=min(self.jobs, len(pending)),
                point_timeout=self.point_timeout,
                max_retries=self.max_point_retries,
                retry_backoff_base=self.retry_backoff_base,
                retry_backoff_cap=self.retry_backoff_cap,
            )

            def on_point(index, result, attempts, duration):
                results[index] = result
                self._record(
                    specs[index],
                    result,
                    report,
                    attempts=attempts,
                    duration=duration,
                )

            def on_failure(failure):
                batch_failures.append(failure)
                self.failures.append(failure)
                self.stats.failed += 1
                if self.journal is not None:
                    self.journal.record_failure(failure)

            def on_retry(index, cause, attempt):
                self.stats.retried += 1

            pool.run(
                [(i, specs[i]) for i in pending],
                keep_going=self.keep_going,
                on_point=on_point,
                on_failure=on_failure,
                on_retry=on_retry,
            )
        finally:
            # Committed even when a worker/progress callback raises or
            # the batch is interrupted: completed points stay counted.
            self.stats.wall_seconds += time.perf_counter() - started
        batch_failures.sort(key=lambda f: f.index)
        return BatchReport(results, batch_failures)

    def _run_supervised_shards(
        self,
        specs: Sequence[PointSpec],
        pending: List[int],
        abatch: List[int],
        results: List[Optional[SimulationResult]],
        batch_failures: List[PointFailure],
        report: Optional[ProgressCallback],
    ) -> List[int]:
        """Run the batch's array-backend points as supervised per-worker
        sub-batches; returns the still-pending indices (the non-array
        remainder, for the per-point pool).

        Each shard is one :class:`_ArrayShardSpec` — a contiguous slice
        of the eligible points, at most one per worker — executed as a
        single batched engine pass inside a supervised worker.  Crash/
        timeout/retry semantics apply per shard: the wall-clock limit
        scales with the largest shard (a shard does up to that many
        points' work), and a permanently failed shard is expanded into
        one :class:`PointFailure` per member point so downstream
        manifest handling stays per-point.
        """
        workers = min(self.jobs, len(abatch))
        bound = -(-len(abatch) // workers)  # ceil: the largest shard
        shards = [
            _ArrayShardSpec(
                indices=tuple(abatch[lo : lo + bound]),
                specs=tuple(specs[i] for i in abatch[lo : lo + bound]),
            )
            for lo in range(0, len(abatch), bound)
        ]
        pool = SupervisedPool(
            workers=min(workers, len(shards)),
            point_timeout=(
                None
                if self.point_timeout is None
                else self.point_timeout * bound
            ),
            max_retries=self.max_point_retries,
            retry_backoff_base=self.retry_backoff_base,
            retry_backoff_cap=self.retry_backoff_cap,
        )

        def on_point(shard_index, shard_results, attempts, duration):
            shard = shards[shard_index]
            # Duration amortises over the shard: the per-point journal
            # numbers stay comparable with per-point execution.
            per_point = duration / max(len(shard.indices), 1)
            for i, result in zip(shard.indices, shard_results):
                results[i] = result
                self._record(
                    specs[i],
                    result,
                    report,
                    attempts=attempts,
                    duration=per_point,
                )

        def expand_failure(failure: PointFailure) -> List[PointFailure]:
            shard = shards[failure.index]
            return [
                PointFailure(
                    index=i,
                    spec=specs[i],
                    cause=failure.cause,
                    attempts=failure.attempts,
                    duration=failure.duration / max(len(shard.indices), 1),
                    message=failure.message,
                    traceback=failure.traceback,
                )
                for i in shard.indices
            ]

        def on_failure(failure):
            for point_failure in expand_failure(failure):
                batch_failures.append(point_failure)
                self.failures.append(point_failure)
                self.stats.failed += 1
                if self.journal is not None:
                    self.journal.record_failure(point_failure)

        def on_retry(shard_index, cause, attempt):
            self.stats.retried += 1

        try:
            pool.run(
                [(k, shard) for k, shard in enumerate(shards)],
                keep_going=self.keep_going,
                on_point=on_point,
                on_failure=on_failure,
                on_retry=on_retry,
            )
        except PointExecutionError as exc:
            # Fail-fast: surface the first member point, not the shard.
            raise PointExecutionError(expand_failure(exc.failure)[0]) from exc
        done = set(abatch)
        return [i for i in pending if i not in done]

    def _record(
        self,
        spec: PointSpec,
        result: SimulationResult,
        report: Optional[ProgressCallback],
        attempts: int = 1,
        duration: float = 0.0,
    ) -> None:
        # Accounting, cache, and journal all commit before the progress
        # callback runs: a raising callback can abort the batch, but it
        # can never lose a completed point.
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(spec, result)
        if self.journal is not None:
            self.journal.record_point(
                spec.cache_key(), attempts=attempts, duration=duration
            )
        if report is not None:
            report(result)
