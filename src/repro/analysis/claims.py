"""Section 6's headline claims, as computable quantities.

The paper's prose makes five quantitative claims about its figures:

1. uniform traffic: nonadaptive >= partially adaptive at high load;
2. matrix transpose (mesh and cube): adaptive sustainable throughput is
   about twice the nonadaptive one;
3. reverse flip (cube): adaptive is about four times e-cube;
4. the cube's best operating point (adaptive + reverse-flip) beats the
   runner-up (e-cube + uniform) by ~50%;
5. the throughput gains are *not* explained by path length — transpose
   and reverse-flip paths are longer on average (11.34 vs 10.61 mesh
   hops; 4.27 vs 4.01 cube hops).

Claim 5 is a property of the workloads, not the simulator, and this
module reproduces the paper's numbers exactly; claims 1-4 are ratios of
measured saturation points, computed from sweep results.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence

from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D
from ..traffic.patterns import (
    HypercubeTransposePattern,
    MeshTransposePattern,
    ReverseFlipPattern,
    uniform_average_hops,
)
from .sweep import SweepSeries


@dataclass
class ThroughputRatio:
    """Adaptive-over-nonadaptive sustainable-throughput comparison."""

    pattern: str
    nonadaptive: str
    nonadaptive_throughput: float
    best_adaptive: str
    best_adaptive_throughput: float

    @property
    def ratio(self) -> Optional[float]:
        if self.nonadaptive_throughput <= 0:
            return None
        return self.best_adaptive_throughput / self.nonadaptive_throughput


def adaptive_vs_nonadaptive(
    series: Sequence[SweepSeries],
    nonadaptive_names: Sequence[str] = ("xy", "e-cube"),
) -> ThroughputRatio:
    """Compare the best adaptive series against the nonadaptive baseline
    within one figure's sweeps."""
    baseline = None
    adaptive = []
    for s in series:
        if s.algorithm in nonadaptive_names:
            baseline = s
        else:
            adaptive.append(s)
    if baseline is None or not adaptive:
        raise ValueError(
            "need one nonadaptive and at least one adaptive series"
        )
    best = max(adaptive, key=lambda s: s.max_sustainable_throughput())
    return ThroughputRatio(
        pattern=baseline.pattern,
        nonadaptive=baseline.algorithm,
        nonadaptive_throughput=baseline.max_sustainable_throughput(),
        best_adaptive=best.algorithm,
        best_adaptive_throughput=best.max_sustainable_throughput(),
    )


def paper_hop_counts() -> Dict[str, Fraction]:
    """Claim 5's exact average path lengths on the paper's topologies.

    Returns the four quantities the paper quotes: mesh uniform (10.61 in
    the paper; the exact all-pairs mean is 10 2/3), mesh transpose
    (11.34), cube uniform (4.01), cube reverse-flip (4.27).
    """
    mesh = Mesh2D(16, 16)
    cube = Hypercube(8)
    return {
        "mesh-uniform": uniform_average_hops(mesh),
        "mesh-transpose": MeshTransposePattern(mesh).average_hops(),
        "cube-uniform": uniform_average_hops(cube),
        "cube-reverse-flip": ReverseFlipPattern(cube).average_hops(),
        "cube-transpose": HypercubeTransposePattern(cube).average_hops(),
    }


def uniform_nonadaptive_wins(series: Sequence[SweepSeries]) -> bool:
    """Claim 1: under uniform traffic the nonadaptive algorithm's best
    sustainable throughput is at least that of every adaptive one
    (within 5% tolerance for simulation noise)."""
    baseline = None
    rest = []
    for s in series:
        if s.algorithm in ("xy", "e-cube"):
            baseline = s
        else:
            rest.append(s)
    if baseline is None:
        raise ValueError("no nonadaptive series present")
    base = baseline.max_sustainable_throughput()
    return all(
        s.max_sustainable_throughput() <= base * 1.05 for s in rest
    )
