"""Deterministic chaos harness for the supervised execution layer.

The engine's fault tolerance is proven by *injecting* faults
(:mod:`repro.faults`); the harness's fault tolerance is proven the same
way.  :class:`ChaosPointSpec` is a :class:`~repro.analysis.runner.
PointSpec` whose **worker-side execution misbehaves on purpose** — it
crashes the worker process outright (``os._exit``, simulating an OOM
kill), hangs (simulating a wedged point), raises, or runs the real
simulation — with the behaviour chosen *deterministically* from a chaos
seed and the point's identity.  Re-running the same chaos campaign
reproduces exactly the same failure pattern, which is what lets the
test suite and the CI ``chaos`` job assert hard guarantees:

* every healthy point of a chaos campaign is bit-identical to a clean
  serial run of the underlying specs;
* every unhealthy point is accounted for in the failure manifest with
  the right cause;
* a campaign killed mid-flight and resumed from its journal re-executes
  only the points not yet journaled.

A misbehaving point stops misbehaving after ``fail_attempts`` attempts,
so retry coverage can distinguish "transiently sick" (recovered by the
supervisor's retry) from "permanently broken" (exhausts attempts and
lands in the manifest).  When it does succeed, it returns the *same*
:class:`~repro.simulation.metrics.SimulationResult` the plain spec
would — chaos perturbs the execution harness, never the simulation.

See docs/RESILIENCE.md for the harness's role in the chaos CI job.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..simulation.metrics import SimulationResult
from .runner import PointSpec

CHAOS_MODES = ("crash", "hang", "exception")


class ChaosError(RuntimeError):
    """The deliberate exception a chaos point raises."""


@dataclass(frozen=True)
class ChaosPointSpec(PointSpec):
    """A :class:`PointSpec` that misbehaves deterministically.

    The misbehaviour (or lack of it) is a pure function of
    ``chaos_seed`` and the point's identity, so a chaos campaign is as
    reproducible as a clean one.  Attempts numbered above
    ``fail_attempts`` run the real simulation, letting retry tests
    exercise recovery; ``fail_attempts`` of ``10**9`` (effectively
    infinite) makes the point permanently sick.
    """

    chaos_seed: int = 0
    """Campaign-level seed the per-point behaviour derives from."""

    failure_rate: float = 0.1
    """Fraction of points that misbehave (approximately; per-point
    Bernoulli on the derived RNG)."""

    fail_attempts: int = 1
    """Attempts 1..fail_attempts misbehave; later attempts succeed."""

    hang_seconds: float = 3600.0
    """How long a ``hang`` point sleeps (far above any sane
    point-timeout; the supervisor is expected to kill it)."""

    def chaos_mode(self) -> Optional[str]:
        """The deterministic behaviour of this point: ``None`` (run the
        real simulation) or one of :data:`CHAOS_MODES`."""
        rng = random.Random(
            f"{self.chaos_seed}:{self.topology}:{self.algorithm}:"
            f"{self.pattern}:{self.config.stable_hash()}"
        )
        if rng.random() >= self.failure_rate:
            return None
        return rng.choice(CHAOS_MODES)

    def execute_attempt(self, attempt: int) -> SimulationResult:
        """Worker entry point: misbehave if this point and attempt are
        chosen, else run the real simulation."""
        mode = self.chaos_mode()
        if mode is not None and attempt <= self.fail_attempts:
            if mode == "crash":
                # Simulates an OOM kill: the process vanishes without
                # unwinding, flushing, or reporting anything.
                os._exit(13)
            if mode == "hang":
                deadline = time.monotonic() + self.hang_seconds
                while time.monotonic() < deadline:
                    time.sleep(min(1.0, deadline - time.monotonic()))
                # Fall through if somehow never killed: still succeed.
            else:
                raise ChaosError(
                    f"injected failure (seed {self.chaos_seed}) for "
                    f"{self.algorithm}/{self.pattern}@"
                    f"{self.config.offered_load:g}"
                )
        return PointSpec.execute(self)

    def execute(self) -> SimulationResult:
        return self.execute_attempt(1)

    def clean(self) -> PointSpec:
        """The underlying well-behaved spec (same simulation)."""
        return PointSpec(
            topology=self.topology,
            algorithm=self.algorithm,
            pattern=self.pattern,
            config=self.config,
        )

    def to_dict(self):
        # The chaos knobs enter the spec dict — and therefore the
        # result-cache key and journal identity — so a chaos campaign
        # can never be served results cached under a different chaos
        # configuration, and vice versa.
        payload = super().to_dict()
        payload["chaos"] = {
            "seed": self.chaos_seed,
            "failure_rate": self.failure_rate,
            "fail_attempts": self.fail_attempts,
        }
        return payload


def chaos_batch(
    specs: Sequence[PointSpec],
    chaos_seed: int = 0,
    failure_rate: float = 0.1,
    fail_attempts: int = 1,
    hang_seconds: float = 3600.0,
) -> List[ChaosPointSpec]:
    """Wrap a batch of plain specs in chaos harnesses."""
    return [
        ChaosPointSpec(
            topology=spec.topology,
            algorithm=spec.algorithm,
            pattern=spec.pattern,
            config=spec.config,
            chaos_seed=chaos_seed,
            failure_rate=failure_rate,
            fail_attempts=fail_attempts,
            hang_seconds=hang_seconds,
        )
        for spec in specs
    ]
