"""Maximum sustainable throughput estimation.

The paper defines throughput as *sustainable* "when the number of packets
queued at their source processors is small and bounded".  This module
finds each (algorithm, pattern) pair's maximum sustainable operating
point by bisecting on offered load with that test.

Bisection is inherently sequential per pair — each probe depends on the
last — but a *campaign* over many pairs is not: :func:`find_saturation_many`
advances every pair's bisection in lock-step, submitting each level's
midpoint probes as one batch to a
:class:`~repro.analysis.runner.ParallelSweepRunner`, so a fleet of
saturation searches runs in the wall-clock time of one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..routing.base import RoutingAlgorithm
from ..simulation.config import SimulationConfig
from ..simulation.engine import WormholeSimulator
from ..simulation.metrics import SimulationResult
from .runner import ParallelSweepRunner, PointSpec, point_spec


@dataclass
class SaturationPoint:
    """Estimated saturation of one (algorithm, pattern) pair."""

    algorithm: str
    pattern: str
    max_sustainable_load: float  # flits/us/node offered
    throughput_flits_per_us: float  # delivered at that load, aggregate
    latency_us: Optional[float]
    probes: int


def _sustainable(result: Optional[SimulationResult]) -> bool:
    # A probe lost to a worker failure under keep_going counts as
    # unsustainable: the bisection stays conservative (docs/RESILIENCE.md).
    return result is not None and result.sustainable


class _Search:
    """Mutable bisection state for one (algorithm, pattern) pair."""

    def __init__(self, algorithm, pattern, low: float, high: float) -> None:
        self.algorithm = algorithm
        self.pattern = pattern
        self.low = low
        self.high = high
        self.probes = 0
        self.best: Optional[SimulationResult] = None
        self.done: Optional[SaturationPoint] = None

    def finish(
        self, load: float, result: Optional[SimulationResult]
    ) -> SaturationPoint:
        self.done = SaturationPoint(
            algorithm=self.algorithm.name,
            pattern=getattr(
                self.pattern, "name", type(self.pattern).__name__
            ),
            max_sustainable_load=load,
            throughput_flits_per_us=(
                result.throughput_flits_per_us if result is not None else 0.0
            ),
            latency_us=result.avg_latency_us if result is not None else None,
            probes=self.probes,
        )
        return self.done


def _run_probe_batch(
    probes: Sequence[Tuple[_Search, float]],
    base_config: SimulationConfig,
    runner: Optional[ParallelSweepRunner],
) -> List[SimulationResult]:
    """One simulation per (search, load) item, in item order.

    Spec-representable probes go through the runner (pool + cache); the
    rest run inline.  Without a runner everything runs inline, which is
    byte-for-byte the historical serial behaviour.
    """
    results: List[Optional[SimulationResult]] = [None] * len(probes)
    batch: List[PointSpec] = []
    batch_indices: List[int] = []
    for i, (search, load) in enumerate(probes):
        config = base_config.with_load(load)
        if runner is not None:
            try:
                spec = point_spec(search.algorithm, search.pattern, config)
            except ValueError:
                pass
            else:
                batch.append(spec)
                batch_indices.append(i)
                continue
        results[i] = WormholeSimulator(
            search.algorithm, search.pattern, config
        ).run()
    if batch:
        for i, result in zip(batch_indices, runner.run_points(batch)):
            results[i] = result
    return results  # type: ignore[return-value]


def find_saturation_many(
    pairs: Sequence[Tuple[RoutingAlgorithm, object]],
    base_config: Optional[SimulationConfig] = None,
    low: float = 0.0,
    high: float = 8.0,
    iterations: int = 6,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SaturationPoint]:
    """Saturation search over many (algorithm, pattern) pairs at once.

    Each pair bisects offered load exactly as :func:`find_saturation`
    does, but the searches advance level-synchronously: every round's
    probes are submitted as one batch, so with a parallel runner ``P``
    pairs need the wall-clock of a single search.  Results are identical
    to running :func:`find_saturation` on each pair.
    """
    if base_config is None:
        base_config = SimulationConfig()
    searches = [_Search(a, p, low, high) for a, p in pairs]

    # Ceiling probes: ``high`` must be unsustainable (raised once if not).
    top = _run_probe_batch(
        [(s, s.high) for s in searches], base_config, runner
    )
    doubled: List[_Search] = []
    for search, result in zip(searches, top):
        search.probes += 1
        if _sustainable(result):
            search.high *= 2
            doubled.append(search)
    if doubled:
        retop = _run_probe_batch(
            [(s, s.high) for s in doubled], base_config, runner
        )
        for search, result in zip(doubled, retop):
            search.probes += 1
            if _sustainable(result):
                # Treat the probed ceiling as the answer rather than
                # searching an unbounded range.
                search.finish(search.high, result)

    for _ in range(iterations):
        active = [s for s in searches if s.done is None]
        if not active:
            break
        mids = [(s.low + s.high) / 2 for s in active]
        results = _run_probe_batch(
            list(zip(active, mids)), base_config, runner
        )
        for search, mid, result in zip(active, mids, results):
            search.probes += 1
            if _sustainable(result):
                search.low = mid
                search.best = result
            else:
                search.high = mid

    return [
        s.done if s.done is not None else s.finish(s.low, s.best)
        for s in searches
    ]


def find_saturation(
    algorithm: RoutingAlgorithm,
    pattern,
    base_config: Optional[SimulationConfig] = None,
    low: float = 0.0,
    high: float = 8.0,
    iterations: int = 6,
    runner: Optional[ParallelSweepRunner] = None,
) -> SaturationPoint:
    """Bisect offered load between ``low`` (sustainable) and ``high``.

    ``high`` must be unsustainable (it is probed and raised once if not).
    Each probe is a full simulation at the midpoint load; ``iterations``
    probes give a load resolution of ``(high - low) / 2**iterations``.
    A runner parallelises nothing here (probes are sequential) but its
    result cache makes repeated searches instant.
    """
    return find_saturation_many(
        [(algorithm, pattern)],
        base_config=base_config,
        low=low,
        high=high,
        iterations=iterations,
        runner=runner,
    )[0]
