"""Maximum sustainable throughput estimation.

The paper defines throughput as *sustainable* "when the number of packets
queued at their source processors is small and bounded".  This module
finds each (algorithm, pattern) pair's maximum sustainable operating
point by bisecting on offered load with that test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..routing.base import RoutingAlgorithm
from ..simulation.config import SimulationConfig
from ..simulation.engine import WormholeSimulator
from ..simulation.metrics import SimulationResult


@dataclass
class SaturationPoint:
    """Estimated saturation of one (algorithm, pattern) pair."""

    algorithm: str
    pattern: str
    max_sustainable_load: float  # flits/us/node offered
    throughput_flits_per_us: float  # delivered at that load, aggregate
    latency_us: Optional[float]
    probes: int


def _sustainable(result: SimulationResult) -> bool:
    return result.sustainable


def find_saturation(
    algorithm: RoutingAlgorithm,
    pattern,
    base_config: Optional[SimulationConfig] = None,
    low: float = 0.0,
    high: float = 8.0,
    iterations: int = 6,
) -> SaturationPoint:
    """Bisect offered load between ``low`` (sustainable) and ``high``.

    ``high`` must be unsustainable (it is probed and raised once if not).
    Each probe is a full simulation at the midpoint load; ``iterations``
    probes give a load resolution of ``(high - low) / 2**iterations``.
    """
    if base_config is None:
        base_config = SimulationConfig()

    def probe(load: float) -> SimulationResult:
        sim = WormholeSimulator(algorithm, pattern, base_config.with_load(load))
        return sim.run()

    probes = 0
    best: Optional[SimulationResult] = None

    top = probe(high)
    probes += 1
    if _sustainable(top):
        high *= 2
        top = probe(high)
        probes += 1
        if _sustainable(top):
            # Treat the probed ceiling as the answer rather than searching
            # an unbounded range.
            return SaturationPoint(
                algorithm=algorithm.name,
                pattern=getattr(pattern, "name", type(pattern).__name__),
                max_sustainable_load=high,
                throughput_flits_per_us=top.throughput_flits_per_us,
                latency_us=top.avg_latency_us,
                probes=probes,
            )

    for _ in range(iterations):
        mid = (low + high) / 2
        result = probe(mid)
        probes += 1
        if _sustainable(result):
            low = mid
            best = result
        else:
            high = mid

    return SaturationPoint(
        algorithm=algorithm.name,
        pattern=getattr(pattern, "name", type(pattern).__name__),
        max_sustainable_load=low,
        throughput_flits_per_us=(
            best.throughput_flits_per_us if best is not None else 0.0
        ),
        latency_us=best.avg_latency_us if best is not None else None,
        probes=probes,
    )
