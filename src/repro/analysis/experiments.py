"""One entry point per paper artifact (the per-experiment index of
DESIGN.md).

Each ``figure*``/``table*``/``section*`` function regenerates the rows or
series behind that artifact.  Two presets control cost:

* ``FAST`` — reduced topology-faithful runs (same 256-node networks,
  shorter windows, fewer load points); minutes on a laptop.  Used by the
  benchmark suite.
* ``FULL`` — longer windows and denser load grids for smoother curves.

Absolute numbers are properties of our simulator, not of the authors'
hardware testbed; the *shape* comparisons (who wins, by what factor) are
what EXPERIMENTS.md tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.adaptiveness import pcube_choice_table
from ..routing.registry import hypercube_algorithms, mesh_algorithms
from ..simulation.config import SimulationConfig
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D
from ..traffic.patterns import (
    HypercubeTransposePattern,
    MeshTransposePattern,
    ReverseFlipPattern,
    UniformPattern,
)
from .runner import ParallelSweepRunner
from .sweep import SweepSeries, compare_algorithms


@dataclass(frozen=True)
class ExperimentPreset:
    """Run-cost knobs shared by every figure harness."""

    warmup_cycles: int
    measure_cycles: int
    mesh_loads: Sequence[float]
    cube_loads: Sequence[float]
    seed: int = 7

    # Robustness knobs (threaded through from the ``figure`` CLI; the
    # defaults reproduce the paper's fault-free runs).
    deadlock_threshold: int = 5_000
    packet_timeout: int = 0
    max_retries: int = 0

    # Output selection (threaded through from ``figure --selection``;
    # the default reproduces the paper's xy rule — docs/SELECTION.md).
    output_selection: str = "xy"
    selection_threshold: int = 2

    # Engine backend (threaded through from ``figure --backend``; the
    # backends are bit-identical, so this is purely a speed knob).
    backend: str = "event"

    def config(self) -> SimulationConfig:
        return SimulationConfig(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=self.seed,
            deadlock_threshold=self.deadlock_threshold,
            packet_timeout=self.packet_timeout,
            max_retries=self.max_retries,
            output_selection=self.output_selection,
            selection_threshold=self.selection_threshold,
            backend=self.backend,
        )


FAST = ExperimentPreset(
    warmup_cycles=1_500,
    measure_cycles=4_000,
    mesh_loads=(0.5, 1.0, 1.5, 2.0),
    cube_loads=(1.0, 2.0, 3.0, 4.0),
)

FULL = ExperimentPreset(
    warmup_cycles=4_000,
    measure_cycles=12_000,
    mesh_loads=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5),
    cube_loads=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0),
)


def _mesh(preset: ExperimentPreset):
    return Mesh2D(16, 16)


def _cube(preset: ExperimentPreset):
    return Hypercube(8)


def figure13_mesh_uniform(
    preset: ExperimentPreset = FAST,
    progress: Optional[Callable] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SweepSeries]:
    """Figure 13: xy / WF / NL / NF under uniform traffic, 16x16 mesh."""
    mesh = _mesh(preset)
    return compare_algorithms(
        mesh_algorithms(mesh),
        lambda topo: UniformPattern(topo),
        preset.mesh_loads,
        preset.config(),
        progress,
        runner=runner,
    )


def figure14_mesh_transpose(
    preset: ExperimentPreset = FAST,
    progress: Optional[Callable] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SweepSeries]:
    """Figure 14: the same four algorithms under matrix-transpose."""
    mesh = _mesh(preset)
    return compare_algorithms(
        mesh_algorithms(mesh),
        lambda topo: MeshTransposePattern(topo),
        preset.mesh_loads,
        preset.config(),
        progress,
        runner=runner,
    )


def figure15_cube_transpose(
    preset: ExperimentPreset = FAST,
    progress: Optional[Callable] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SweepSeries]:
    """Figure 15: e-cube / ABONF / ABOPL / p-cube under the embedded
    matrix transpose, binary 8-cube."""
    cube = _cube(preset)
    return compare_algorithms(
        hypercube_algorithms(cube),
        lambda topo: HypercubeTransposePattern(topo),
        preset.cube_loads,
        preset.config(),
        progress,
        runner=runner,
    )


def figure16_cube_reverse_flip(
    preset: ExperimentPreset = FAST,
    progress: Optional[Callable] = None,
    runner: Optional[ParallelSweepRunner] = None,
) -> List[SweepSeries]:
    """Figure 16: the same four algorithms under reverse-flip."""
    cube = _cube(preset)
    return compare_algorithms(
        hypercube_algorithms(cube),
        lambda topo: ReverseFlipPattern(topo),
        preset.cube_loads,
        preset.config(),
        progress,
        runner=runner,
    )


def section5_pcube_table() -> List:
    """The Section 5 walkthrough: p-cube choice counts on a 10-cube path
    from 1011010100 to 0010111001 via dimensions 2, 9, 6, 5, 0, 3."""
    cube = Hypercube(10)
    src = cube.node_from_address_str("1011010100")
    dst = cube.node_from_address_str("0010111001")
    return pcube_choice_table(cube, src, dst, [2, 9, 6, 5, 0, 3])


FIGURE_HARNESSES: Dict[str, Callable] = {
    "fig13": figure13_mesh_uniform,
    "fig14": figure14_mesh_transpose,
    "fig15": figure15_cube_transpose,
    "fig16": figure16_cube_reverse_flip,
}
