"""Engine benchmark harness: the measured perf trajectory of the repo.

Runs a canonical set of operating points through the wormhole engine,
timing the wall clock and reporting two throughput figures per point:

* **cycles/s** — simulated cycles per wall-clock second, the headline
  hot-path metric (how fast the interpreter grinds through simulator
  cycles at this operating point);
* **flit-hops/s** — an estimate of flit-channel traversals simulated per
  wall-clock second (``delivered_flits * avg_hops / wall``), the "useful
  physics" rate.  It is an estimate because per-packet ``length x hops``
  products are not tracked individually; it is computed from the same
  deterministic result either way, so it is comparable run to run.

Every point runs with a fixed seed, so alongside the timing each point
records the run's **fingerprint** — the nine counters the golden
bit-identity tests pin (see ``tests/faults/test_fault_injection.py``).
Comparing a fresh report against a committed one therefore checks two
things at once: that the engine did not get slower, and that it still
computes *exactly* the same simulation (fingerprints are
machine-independent; cycles/s are not).

The canonical points cover the paper's fabrics (8x8 and 16x16 meshes,
the binary 8-cube) below and near saturation, plus the 16x16
near-saturation point with observability collectors on and with a
fault plan + watchdog + retries active — the operating regimes the
event-driven engine optimisations (routing-table precomputation,
arrival calendar, channel-free wakeups) target.

Entry points: ``repro bench`` (CLI) and ``scripts/bench_engine.py``
(CI), both thin wrappers over :func:`run_bench` /
:func:`compare_reports`.  The committed trajectory lives in
``BENCH_engine.json`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..routing.registry import make_algorithm
from ..simulation.config import SimulationConfig
from ..simulation.engine import WormholeSimulator
from .runner import make_pattern, parse_topology_spec

BENCH_SCHEMA = 1

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)
"""The nine counters the golden bit-identity tests pin; recorded per
point so perf reports double as cross-machine equivalence checks."""


@dataclass(frozen=True)
class BenchPoint:
    """One benchmarked operating point (fully deterministic)."""

    id: str
    topology: str
    algorithm: str
    pattern: str
    offered_load: float
    warmup_cycles: int
    measure_cycles: int
    seed: int = 0
    quick: bool = False
    """Included in the CI ``--quick`` subset."""

    observability: bool = False
    """Switch on all three metrics collectors for this point."""

    fault_links: int = 0
    """Fail this many links (seeded) mid-run, with the per-packet
    watchdog and retries active — exercises the fault-hook hot path."""

    drain_cycles: int = 0

    def config(self) -> SimulationConfig:
        kwargs: Dict[str, object] = dict(
            offered_load=self.offered_load,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=self.seed,
            drain_cycles=self.drain_cycles,
        )
        if self.fault_links:
            topology = parse_topology_spec(self.topology)
            kwargs["fault_plan"] = FaultPlan.random_links(
                topology, self.fault_links, seed=self.seed + 1,
                start=self.warmup_cycles // 2,
            )
            kwargs["packet_timeout"] = 800
            kwargs["max_retries"] = 2
        config = SimulationConfig(**kwargs)  # type: ignore[arg-type]
        if self.observability:
            config = config.with_observability()
        return config

    def spec_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "observability": self.observability,
            "fault_links": self.fault_links,
            "drain_cycles": self.drain_cycles,
        }


# The canonical trajectory points.  Ids are stable across PRs: reports
# are compared point-id by point-id, so renaming one orphans its
# history.  Loads: the "low" points sit comfortably inside the
# sustainable region; the "sat" points sit at/above saturation, where
# most headers are blocked and the arbitration hot path dominates.
CANONICAL_POINTS: Tuple[BenchPoint, ...] = (
    BenchPoint(
        id="mesh8-uniform-low", topology="mesh:8x8", algorithm="west-first",
        pattern="uniform", offered_load=0.6, warmup_cycles=500,
        measure_cycles=2_500, seed=3, quick=True,
    ),
    BenchPoint(
        id="mesh8-uniform-sat", topology="mesh:8x8", algorithm="west-first",
        pattern="uniform", offered_load=1.5, warmup_cycles=500,
        measure_cycles=2_500, seed=3, quick=True,
    ),
    BenchPoint(
        id="mesh16-uniform-low", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=0.5,
        warmup_cycles=1_000, measure_cycles=4_000, seed=7,
    ),
    BenchPoint(
        id="mesh16-uniform-sat", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=1_000, measure_cycles=4_000, seed=7,
    ),
    BenchPoint(
        id="mesh16-sat-quick", topology="mesh:16x16", algorithm="west-first",
        pattern="uniform", offered_load=2.0, warmup_cycles=300,
        measure_cycles=1_200, seed=7, quick=True,
    ),
    BenchPoint(
        id="cube8-uniform-low", topology="cube:8", algorithm="p-cube",
        pattern="uniform", offered_load=1.0, warmup_cycles=400,
        measure_cycles=1_600, seed=5,
    ),
    BenchPoint(
        id="cube8-uniform-sat", topology="cube:8", algorithm="p-cube",
        pattern="uniform", offered_load=3.0, warmup_cycles=400,
        measure_cycles=1_600, seed=5,
    ),
    BenchPoint(
        id="mesh16-sat-observability", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=500, measure_cycles=2_000, seed=7,
        observability=True,
    ),
    BenchPoint(
        id="mesh16-sat-faults", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=500, measure_cycles=2_000, seed=7,
        fault_links=4, drain_cycles=500,
    ),
)


def bench_points(quick: bool = False) -> List[BenchPoint]:
    """The canonical point list (the ``--quick`` CI subset when asked)."""
    if quick:
        return [p for p in CANONICAL_POINTS if p.quick]
    return list(CANONICAL_POINTS)


@dataclass
class PointMeasurement:
    """Timing + equivalence record of one benchmarked point."""

    point: BenchPoint
    wall_s: float
    simulated_cycles: int
    fingerprint: Tuple[int, ...]
    delivered_flits: int
    avg_hops: Optional[float]
    repeats: int = 1
    baseline: Optional[Dict[str, object]] = None

    @property
    def cycles_per_s(self) -> float:
        return self.simulated_cycles / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def flit_hops_per_s(self) -> float:
        if self.wall_s <= 0 or self.avg_hops is None:
            return 0.0
        return self.delivered_flits * self.avg_hops / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "spec": self.point.spec_dict(),
            "wall_s": round(self.wall_s, 6),
            "repeats": self.repeats,
            "simulated_cycles": self.simulated_cycles,
            "cycles_per_s": round(self.cycles_per_s, 1),
            "flit_hops_per_s": round(self.flit_hops_per_s, 1),
            "fingerprint": list(self.fingerprint),
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline
            base_rate = self.baseline.get("cycles_per_s")
            if isinstance(base_rate, (int, float)) and base_rate > 0:
                out["speedup"] = round(self.cycles_per_s / base_rate, 2)
        return out


def run_point(point: BenchPoint, repeats: int = 1) -> PointMeasurement:
    """Run one point ``repeats`` times; keep the best (minimum) wall.

    Every repeat is the same deterministic simulation — the minimum wall
    time is the least-noisy estimate of the engine's true cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    config = point.config()
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        topology = parse_topology_spec(point.topology)
        sim = WormholeSimulator(
            make_algorithm(point.algorithm, topology),
            make_pattern(point.pattern, topology),
            config,
        )
        started = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
    assert result is not None
    simulated = (
        result.deadlock_cycle + 1
        if result.deadlock and result.deadlock_cycle is not None
        else config.total_cycles
    )
    return PointMeasurement(
        point=point,
        wall_s=best_wall,
        simulated_cycles=simulated,
        fingerprint=tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        ),
        delivered_flits=result.delivered_flits,
        avg_hops=result.avg_hops,
        repeats=repeats,
    )


@dataclass
class BenchReport:
    """A full benchmark run, serializable to ``BENCH_engine.json``."""

    measurements: List[PointMeasurement] = field(default_factory=list)
    label: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "label": self.label,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "points": {
                m.point.id: m.to_dict() for m in self.measurements
            },
        }

    def render(self) -> str:
        lines = [
            f"{'point':26s} {'cycles/s':>12s} {'flit-hops/s':>13s} "
            f"{'wall':>8s}  speedup"
        ]
        for m in self.measurements:
            speedup = ""
            if m.baseline is not None:
                base_rate = m.baseline.get("cycles_per_s")
                if isinstance(base_rate, (int, float)) and base_rate > 0:
                    speedup = f"{m.cycles_per_s / base_rate:7.2f}x"
            lines.append(
                f"{m.point.id:26s} {m.cycles_per_s:12.0f} "
                f"{m.flit_hops_per_s:13.0f} {m.wall_s:7.3f}s {speedup}"
            )
        return "\n".join(lines)


def run_bench(
    points: Sequence[BenchPoint],
    repeats: int = 1,
    baseline: Optional[Dict[str, object]] = None,
    label: str = "",
    progress=None,
) -> BenchReport:
    """Measure every point; fold per-point baseline numbers in when a
    prior report dict (see :func:`load_report`) is supplied."""
    report = BenchReport(label=label)
    base_points = (baseline or {}).get("points", {})
    for point in points:
        measurement = run_point(point, repeats=repeats)
        prior = base_points.get(point.id) if isinstance(base_points, dict) else None
        if isinstance(prior, dict):
            measurement.baseline = {
                "cycles_per_s": prior.get("cycles_per_s"),
                "flit_hops_per_s": prior.get("flit_hops_per_s"),
                "wall_s": prior.get("wall_s"),
                "label": (baseline or {}).get("label", ""),
            }
        report.measurements.append(measurement)
        if progress is not None:
            progress(measurement)
    return report


def load_report(path: str) -> Dict[str, object]:
    """Read a previously-written report (``BENCH_engine.json``)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "points" not in data:
        raise ValueError(f"{path} is not a bench report (no 'points' key)")
    return data


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare_reports(
    current: BenchReport,
    committed: Dict[str, object],
    fail_threshold: float = 0.30,
) -> List[str]:
    """CI regression gate: problems comparing a fresh run against the
    committed trajectory.

    Two checks per shared point id:

    * **fingerprint** — must match exactly (machine-independent; a
      mismatch means the engine changed the simulation, not just its
      speed);
    * **cycles/s** — must not fall more than ``fail_threshold`` below
      the committed number (machine-dependent; the threshold absorbs
      runner variance).

    Returns a list of human-readable problems (empty = pass).
    """
    problems: List[str] = []
    committed_points = committed.get("points", {})
    if not isinstance(committed_points, dict):
        return [f"committed report has malformed 'points': {committed_points!r}"]
    for m in current.measurements:
        prior = committed_points.get(m.point.id)
        if not isinstance(prior, dict):
            continue  # new point: no history yet
        expected = prior.get("fingerprint")
        if expected is not None and list(m.fingerprint) != list(expected):
            problems.append(
                f"{m.point.id}: fingerprint changed "
                f"{list(expected)} -> {list(m.fingerprint)} "
                f"(the engine no longer computes the same simulation)"
            )
        base_rate = prior.get("cycles_per_s")
        if isinstance(base_rate, (int, float)) and base_rate > 0:
            floor = (1.0 - fail_threshold) * base_rate
            if m.cycles_per_s < floor:
                problems.append(
                    f"{m.point.id}: cycles/s regressed "
                    f"{base_rate:.0f} -> {m.cycles_per_s:.0f} "
                    f"(> {fail_threshold:.0%} below the committed baseline)"
                )
    return problems
