"""Engine benchmark harness: the measured perf trajectory of the repo.

Runs a canonical set of operating points through the wormhole engine,
timing the wall clock and reporting two throughput figures per point:

* **cycles/s** — simulated cycles per wall-clock second, the headline
  hot-path metric (how fast the interpreter grinds through simulator
  cycles at this operating point);
* **flit-hops/s** — an estimate of flit-channel traversals simulated per
  wall-clock second (``delivered_flits * avg_hops / wall``), the "useful
  physics" rate.  It is an estimate because per-packet ``length x hops``
  products are not tracked individually; it is computed from the same
  deterministic result either way, so it is comparable run to run.

Every point runs with a fixed seed, so alongside the timing each point
records the run's **fingerprint** — the nine counters the golden
bit-identity tests pin (see ``tests/faults/test_fault_injection.py``).
Comparing a fresh report against a committed one therefore checks two
things at once: that the engine did not get slower, and that it still
computes *exactly* the same simulation (fingerprints are
machine-independent; cycles/s are not).

The canonical points cover the paper's fabrics (8x8 and 16x16 meshes,
the binary 8-cube) below and near saturation, plus the 16x16
near-saturation point with observability collectors on and with a
fault plan + watchdog + retries active — the operating regimes the
event-driven engine optimisations (routing-table precomputation,
arrival calendar, channel-free wakeups) target.

Entry points: ``repro bench`` (CLI) and ``scripts/bench_engine.py``
(CI), both thin wrappers over :func:`run_bench` /
:func:`compare_reports`.  The committed trajectory lives in
``BENCH_engine.json`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..routing.registry import make_algorithm
from ..simulation.array_engine import BatchSimulator, make_simulator
from ..simulation.config import SimulationConfig
from .runner import make_pattern, parse_topology_spec

BENCH_SCHEMA = 2
"""Schema 2 added per-backend point labels (``<id>@array``), the
``backend`` spec field, and the ``batch_points`` section recording
batched-sweep points-per-second (docs/PERFORMANCE.md)."""

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)
"""The nine counters the golden bit-identity tests pin; recorded per
point so perf reports double as cross-machine equivalence checks."""


@dataclass(frozen=True)
class BenchPoint:
    """One benchmarked operating point (fully deterministic)."""

    id: str
    topology: str
    algorithm: str
    pattern: str
    offered_load: float
    warmup_cycles: int
    measure_cycles: int
    seed: int = 0
    quick: bool = False
    """Included in the CI ``--quick`` subset."""

    observability: bool = False
    """Switch on all three metrics collectors for this point."""

    fault_links: int = 0
    """Fail this many links (seeded) mid-run, with the per-packet
    watchdog and retries active — exercises the fault-hook hot path."""

    drain_cycles: int = 0

    backend: str = "event"
    """Engine backend (``SimulationConfig.backend``) this point runs
    on.  Per-backend points carry distinct ids (``<id>@array``) so each
    backend accumulates its own trajectory in the committed report."""

    def config(self) -> SimulationConfig:
        kwargs: Dict[str, object] = dict(
            offered_load=self.offered_load,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=self.seed,
            drain_cycles=self.drain_cycles,
            backend=self.backend,
        )
        if self.fault_links:
            topology = parse_topology_spec(self.topology)
            kwargs["fault_plan"] = FaultPlan.random_links(
                topology, self.fault_links, seed=self.seed + 1,
                start=self.warmup_cycles // 2,
            )
            kwargs["packet_timeout"] = 800
            kwargs["max_retries"] = 2
        config = SimulationConfig(**kwargs)  # type: ignore[arg-type]
        if self.observability:
            config = config.with_observability()
        return config

    def spec_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "seed": self.seed,
            "observability": self.observability,
            "fault_links": self.fault_links,
            "drain_cycles": self.drain_cycles,
            "backend": self.backend,
        }


# The canonical trajectory points.  Ids are stable across PRs: reports
# are compared point-id by point-id, so renaming one orphans its
# history.  Loads: the "low" points sit comfortably inside the
# sustainable region; the "sat" points sit at/above saturation, where
# most headers are blocked and the arbitration hot path dominates.
CANONICAL_POINTS: Tuple[BenchPoint, ...] = (
    BenchPoint(
        id="mesh8-uniform-low", topology="mesh:8x8", algorithm="west-first",
        pattern="uniform", offered_load=0.6, warmup_cycles=500,
        measure_cycles=2_500, seed=3, quick=True,
    ),
    BenchPoint(
        id="mesh8-uniform-sat", topology="mesh:8x8", algorithm="west-first",
        pattern="uniform", offered_load=1.5, warmup_cycles=500,
        measure_cycles=2_500, seed=3, quick=True,
    ),
    BenchPoint(
        id="mesh16-uniform-low", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=0.5,
        warmup_cycles=1_000, measure_cycles=4_000, seed=7,
    ),
    BenchPoint(
        id="mesh16-uniform-sat", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=1_000, measure_cycles=4_000, seed=7,
    ),
    BenchPoint(
        id="mesh16-sat-quick", topology="mesh:16x16", algorithm="west-first",
        pattern="uniform", offered_load=2.0, warmup_cycles=300,
        measure_cycles=1_200, seed=7, quick=True,
    ),
    BenchPoint(
        id="cube8-uniform-low", topology="cube:8", algorithm="p-cube",
        pattern="uniform", offered_load=1.0, warmup_cycles=400,
        measure_cycles=1_600, seed=5,
    ),
    BenchPoint(
        id="cube8-uniform-sat", topology="cube:8", algorithm="p-cube",
        pattern="uniform", offered_load=3.0, warmup_cycles=400,
        measure_cycles=1_600, seed=5,
    ),
    BenchPoint(
        id="mesh16-sat-observability", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=500, measure_cycles=2_000, seed=7,
        observability=True,
    ),
    BenchPoint(
        id="mesh16-sat-faults", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        warmup_cycles=500, measure_cycles=2_000, seed=7,
        fault_links=4, drain_cycles=500,
    ),
)


def bench_points(
    quick: bool = False, backend: str = "event"
) -> List[BenchPoint]:
    """The canonical point list (the ``--quick`` CI subset when asked).

    ``backend="array"`` returns the same operating points re-labelled
    ``<id>@array`` and pinned to the array engine, so the committed
    report keeps one trajectory per backend.  (Since the envelope
    widening, the observability, fault, and multi-VC points run on the
    vectorized kernels too — only the legacy random/zigzag selection
    policies, trace sinks, and over-cap LUTs still exercise the
    cycle-locked scalar fallback.)
    """
    points = [p for p in CANONICAL_POINTS if p.quick] if quick else list(
        CANONICAL_POINTS
    )
    if backend != "event":
        points = [
            replace(p, id=f"{p.id}@{backend}", backend=backend)
            for p in points
        ]
    return points


@dataclass(frozen=True)
class BatchBenchPoint:
    """One batched-sweep benchmark: ``batch_size`` seeds of a single
    operating point, run as one :class:`BatchSimulator` pass versus
    point-by-point on the event engine.

    The headline metric is **points-per-second** — completed operating
    points per wall-clock second — because batching amortises the
    per-cycle numpy kernel cost across the whole batch; per-point
    cycles/s is meaningless for a shared arena.
    """

    id: str
    topology: str
    algorithm: str
    pattern: str
    offered_load: float
    batch_size: int
    warmup_cycles: int
    measure_cycles: int
    buffer_depth: int = 1
    track_channel_load: bool = False
    base_seed: int = 100
    quick: bool = False
    event_sample: int = 0
    """How many of the batch's points the event-engine reference times
    (0 = all of them).  The quick CI point samples a handful to keep the
    job short; the committed full point times every one."""

    fault_links: int = 0
    """Fail this many links mid-run in every member (each member's plan
    seeded from its own simulation seed, so the batch is a paired fault
    campaign: same trial shape as ``repro faults``)."""

    packet_timeout: int = 0
    max_retries: int = 0
    drain_cycles: int = 0
    selection: str = "xy"
    """Output-selection policy for every member (the congestion-aware
    policies exercise the vectorized occupancy/credit reads)."""

    selection_threshold: int = 2

    virtual_channels: int = 1
    """VC count for every member (multi-VC exercises the runtime-
    channel arena, the per-VC-class LUTs, and the physical-link
    arbitration kernels)."""

    def config(self, seed: int, backend: str) -> SimulationConfig:
        kwargs: Dict[str, object] = dict(
            offered_load=self.offered_load,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            seed=seed,
            buffer_depth=self.buffer_depth,
            track_channel_load=self.track_channel_load,
            drain_cycles=self.drain_cycles,
            output_selection=self.selection,
            selection_threshold=self.selection_threshold,
            virtual_channels=self.virtual_channels,
            backend=backend,
        )
        if self.fault_links:
            topology = parse_topology_spec(self.topology)
            kwargs["fault_plan"] = FaultPlan.random_links(
                topology, self.fault_links, seed=seed + 1,
                start=self.warmup_cycles // 2,
            )
            kwargs["packet_timeout"] = self.packet_timeout
            kwargs["max_retries"] = self.max_retries
        elif self.packet_timeout:
            kwargs["packet_timeout"] = self.packet_timeout
            kwargs["max_retries"] = self.max_retries
        return SimulationConfig(**kwargs)  # type: ignore[arg-type]

    def build(self, backend: str) -> List[tuple]:
        """(algorithm, pattern, config) triples for the whole batch —
        one fresh topology/algorithm/pattern per point, exactly as a
        sweep runner would construct them."""
        out = []
        for i in range(self.batch_size):
            topology = parse_topology_spec(self.topology)
            out.append((
                make_algorithm(self.algorithm, topology),
                make_pattern(self.pattern, topology),
                self.config(self.base_seed + i, backend),
            ))
        return out

    def spec_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "offered_load": self.offered_load,
            "batch_size": self.batch_size,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "buffer_depth": self.buffer_depth,
            "track_channel_load": self.track_channel_load,
            "base_seed": self.base_seed,
            "event_sample": self.event_sample,
            "fault_links": self.fault_links,
            "packet_timeout": self.packet_timeout,
            "max_retries": self.max_retries,
            "drain_cycles": self.drain_cycles,
            "selection": self.selection,
            "selection_threshold": self.selection_threshold,
            "virtual_channels": self.virtual_channels,
        }


# The committed full point is the seed sweep PERFORMANCE.md documents:
# deep buffers (depth 4) near saturation, where the event engine slows
# down (more flits in flight per cycle) while the array engine's
# capacity-doubling kernel gets cheaper — the regime batching targets.
BATCH_POINTS: Tuple[BatchBenchPoint, ...] = (
    BatchBenchPoint(
        id="mesh16-d4-seedsweep", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.4,
        batch_size=320, warmup_cycles=200, measure_cycles=1_000,
        buffer_depth=4, track_channel_load=True,
    ),
    BatchBenchPoint(
        id="mesh8-d4-seedsweep-quick", topology="mesh:8x8",
        algorithm="west-first", pattern="uniform", offered_load=1.5,
        batch_size=48, warmup_cycles=150, measure_cycles=600,
        buffer_depth=4, quick=True, event_sample=12,
    ),
    # The widened-envelope workloads (see docs/PERFORMANCE.md): a paired
    # fault campaign in the PR 2 shape — every member fails seeded links
    # mid-run with the watchdog + bounded retries active — and a
    # credit-steered selection sweep in the PR 6 comparison-grid shape.
    # Both ran 100% on the scalar fallback before the envelope widening.
    BatchBenchPoint(
        id="mesh16-faultsweep", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=1.2,
        batch_size=256, warmup_cycles=500, measure_cycles=2_000,
        fault_links=4, packet_timeout=800, max_retries=2,
        drain_cycles=500, event_sample=16,
    ),
    BatchBenchPoint(
        id="mesh16-mc-selsweep", topology="mesh:16x16",
        algorithm="west-first", pattern="uniform", offered_load=2.0,
        batch_size=160, warmup_cycles=500, measure_cycles=1_500,
        selection="max-credits", event_sample=16,
    ),
    BatchBenchPoint(
        id="mesh8-faultsweep-quick", topology="mesh:8x8",
        algorithm="west-first", pattern="uniform", offered_load=0.5,
        batch_size=48, warmup_cycles=150, measure_cycles=600,
        fault_links=3, packet_timeout=400, max_retries=2,
        drain_cycles=200, quick=True, event_sample=12,
    ),
    # The multi-VC workloads (the paper's torus/hypercube figure
    # shapes): a dateline seed-sweep on the 16x16 wraparound torus
    # (``torus:16x2`` = radix 16, 2 dims) and an escape-VC adaptive
    # mesh sweep.  Both ran 100% on the scalar fallback before the VC
    # envelope widening.
    BatchBenchPoint(
        id="torus16-dateline-seedsweep", topology="torus:16x2",
        algorithm="dateline-dimension-order", pattern="uniform",
        offered_load=1.2, batch_size=192, warmup_cycles=300,
        measure_cycles=1_200, virtual_channels=2, buffer_depth=4,
        event_sample=16,
    ),
    BatchBenchPoint(
        id="mesh16-escape-vc-sweep", topology="mesh:16x16",
        algorithm="escape-vc-adaptive", pattern="uniform",
        offered_load=1.2, batch_size=160, warmup_cycles=300,
        measure_cycles=1_200, virtual_channels=2, buffer_depth=4,
        event_sample=16,
    ),
    BatchBenchPoint(
        id="torus8-dateline-seedsweep-quick", topology="torus:8x2",
        algorithm="dateline-dimension-order", pattern="uniform",
        offered_load=1.2, batch_size=96, warmup_cycles=150,
        measure_cycles=600, virtual_channels=2, buffer_depth=4,
        quick=True, event_sample=12,
    ),
)


def batch_bench_points(quick: bool = False) -> List[BatchBenchPoint]:
    """The canonical batched-sweep points (quick CI subset when asked)."""
    if quick:
        return [p for p in BATCH_POINTS if p.quick]
    return list(BATCH_POINTS)


@dataclass
class PointMeasurement:
    """Timing + equivalence record of one benchmarked point."""

    point: BenchPoint
    wall_s: float
    simulated_cycles: int
    fingerprint: Tuple[int, ...]
    delivered_flits: int
    avg_hops: Optional[float]
    repeats: int = 1
    baseline: Optional[Dict[str, object]] = None

    @property
    def cycles_per_s(self) -> float:
        return self.simulated_cycles / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def flit_hops_per_s(self) -> float:
        if self.wall_s <= 0 or self.avg_hops is None:
            return 0.0
        return self.delivered_flits * self.avg_hops / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "spec": self.point.spec_dict(),
            "wall_s": round(self.wall_s, 6),
            "repeats": self.repeats,
            "simulated_cycles": self.simulated_cycles,
            "cycles_per_s": round(self.cycles_per_s, 1),
            "flit_hops_per_s": round(self.flit_hops_per_s, 1),
            "fingerprint": list(self.fingerprint),
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline
            base_rate = self.baseline.get("cycles_per_s")
            if isinstance(base_rate, (int, float)) and base_rate > 0:
                out["speedup"] = round(self.cycles_per_s / base_rate, 2)
        return out


def run_point(point: BenchPoint, repeats: int = 1) -> PointMeasurement:
    """Run one point ``repeats`` times; keep the best (minimum) wall.

    Every repeat is the same deterministic simulation — the minimum wall
    time is the least-noisy estimate of the engine's true cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    config = point.config()
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        topology = parse_topology_spec(point.topology)
        sim = make_simulator(
            make_algorithm(point.algorithm, topology),
            make_pattern(point.pattern, topology),
            config,
        )
        started = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
    assert result is not None
    simulated = (
        result.deadlock_cycle + 1
        if result.deadlock and result.deadlock_cycle is not None
        else config.total_cycles
    )
    return PointMeasurement(
        point=point,
        wall_s=best_wall,
        simulated_cycles=simulated,
        fingerprint=tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        ),
        delivered_flits=result.delivered_flits,
        avg_hops=result.avg_hops,
        repeats=repeats,
    )


@dataclass
class BatchMeasurement:
    """Timing + equivalence record of one batched-sweep point."""

    point: BatchBenchPoint
    batch_wall_s: float
    event_wall_s: float
    event_sampled: int
    fingerprint: Tuple[int, ...]
    bit_identical: bool
    repeats: int = 1

    @property
    def points_per_s(self) -> float:
        if self.batch_wall_s <= 0:
            return 0.0
        return self.point.batch_size / self.batch_wall_s

    @property
    def event_points_per_s(self) -> float:
        if self.event_wall_s <= 0 or self.event_sampled <= 0:
            return 0.0
        return self.event_sampled / self.event_wall_s

    @property
    def speedup(self) -> float:
        event_rate = self.event_points_per_s
        return self.points_per_s / event_rate if event_rate > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.point.spec_dict(),
            "batch_wall_s": round(self.batch_wall_s, 6),
            "event_wall_s": round(self.event_wall_s, 6),
            "repeats": self.repeats,
            "points_per_s": round(self.points_per_s, 2),
            "event_points_per_s": round(self.event_points_per_s, 2),
            "speedup": round(self.speedup, 2),
            "fingerprint": list(self.fingerprint),
            "bit_identical": self.bit_identical,
        }


def run_batch_point(
    point: BatchBenchPoint, repeats: int = 1
) -> BatchMeasurement:
    """Time one batched-sweep point on both backends, interleaved.

    An untimed array pass runs first (paying the one-off LUT build the
    module-level cache amortises across a real campaign), then
    ``max(repeats, 2)`` rounds alternate an event-engine chunk —
    ``event_sample`` of the batch's points (or all of them) split
    across the rounds, one simulator each, exactly as a sequential
    sweep would run them — with a full timed :class:`BatchSimulator`
    pass.  Interleaving means machine-speed drift hits both backends
    alike, so the ratio is stable run to run; the recorded array wall
    is the **median** timed pass and the event wall is the total over
    all chunks.

    The recorded fingerprint is the element-wise sum of the nine golden
    counters over every point's *array* result — machine-independent —
    and ``bit_identical`` confirms the sampled event results matched
    their array counterparts exactly.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    rounds = max(repeats, 2)
    sample = point.event_sample or point.batch_size
    event_points = point.build("event")[:sample]
    chunk = (sample + rounds - 1) // rounds

    batch_results = BatchSimulator(point.build("array")).run()  # untimed

    event_results = []
    event_wall = 0.0
    walls = []
    for r in range(rounds):
        for algorithm, pattern, config in event_points[
            r * chunk : (r + 1) * chunk
        ]:
            sim = make_simulator(algorithm, pattern, config)
            started = time.perf_counter()
            event_results.append(sim.run())
            event_wall += time.perf_counter() - started
        sims = BatchSimulator(point.build("array"))
        started = time.perf_counter()
        batch_results = sims.run()
        walls.append(time.perf_counter() - started)
    walls.sort()
    mid = len(walls) // 2
    median_wall = (
        walls[mid]
        if len(walls) % 2
        else (walls[mid - 1] + walls[mid]) / 2.0
    )

    def _fp(result) -> Tuple[int, ...]:
        return tuple(getattr(result, name) for name in FINGERPRINT_FIELDS)

    fingerprint = tuple(
        sum(vals) for vals in zip(*(_fp(r) for r in batch_results))
    )
    bit_identical = all(
        _fp(e) == _fp(a) for e, a in zip(event_results, batch_results)
    )
    return BatchMeasurement(
        point=point,
        batch_wall_s=median_wall,
        event_wall_s=event_wall,
        event_sampled=sample,
        fingerprint=fingerprint,
        bit_identical=bit_identical,
        repeats=rounds,
    )


@dataclass
class BenchReport:
    """A full benchmark run, serializable to ``BENCH_engine.json``."""

    measurements: List[PointMeasurement] = field(default_factory=list)
    batch_measurements: List[BatchMeasurement] = field(default_factory=list)
    label: str = ""

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": BENCH_SCHEMA,
            "label": self.label,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "points": {
                m.point.id: m.to_dict() for m in self.measurements
            },
        }
        if self.batch_measurements:
            out["batch_points"] = {
                m.point.id: m.to_dict() for m in self.batch_measurements
            }
        return out

    def render(self) -> str:
        lines = [
            f"{'point':30s} {'cycles/s':>12s} {'flit-hops/s':>13s} "
            f"{'wall':>8s}  speedup"
        ]
        for m in self.measurements:
            speedup = ""
            if m.baseline is not None:
                base_rate = m.baseline.get("cycles_per_s")
                if isinstance(base_rate, (int, float)) and base_rate > 0:
                    speedup = f"{m.cycles_per_s / base_rate:7.2f}x"
            lines.append(
                f"{m.point.id:30s} {m.cycles_per_s:12.0f} "
                f"{m.flit_hops_per_s:13.0f} {m.wall_s:7.3f}s {speedup}"
            )
        if self.batch_measurements:
            lines.append("")
            lines.append(
                f"{'batch point':30s} {'array pts/s':>12s} "
                f"{'event pts/s':>13s} {'wall':>8s}  speedup"
            )
            for bm in self.batch_measurements:
                lines.append(
                    f"{bm.point.id:30s} {bm.points_per_s:12.2f} "
                    f"{bm.event_points_per_s:13.2f} "
                    f"{bm.batch_wall_s:7.3f}s {bm.speedup:7.2f}x"
                )
        return "\n".join(lines)


def run_bench(
    points: Sequence[BenchPoint],
    repeats: int = 1,
    baseline: Optional[Dict[str, object]] = None,
    label: str = "",
    progress=None,
    batch_points: Sequence[BatchBenchPoint] = (),
    batch_progress=None,
) -> BenchReport:
    """Measure every point; fold per-point baseline numbers in when a
    prior report dict (see :func:`load_report`) is supplied.  Any
    ``batch_points`` are timed after the per-point set (they need the
    array backend, hence numpy)."""
    report = BenchReport(label=label)
    base_points = (baseline or {}).get("points", {})
    for point in points:
        measurement = run_point(point, repeats=repeats)
        prior = base_points.get(point.id) if isinstance(base_points, dict) else None
        if isinstance(prior, dict):
            measurement.baseline = {
                "cycles_per_s": prior.get("cycles_per_s"),
                "flit_hops_per_s": prior.get("flit_hops_per_s"),
                "wall_s": prior.get("wall_s"),
                "label": (baseline or {}).get("label", ""),
            }
        report.measurements.append(measurement)
        if progress is not None:
            progress(measurement)
    for batch_point in batch_points:
        batch_measurement = run_batch_point(
            batch_point, repeats=max(repeats, 2)
        )
        report.batch_measurements.append(batch_measurement)
        if batch_progress is not None:
            batch_progress(batch_measurement)
    return report


def load_report(path: str) -> Dict[str, object]:
    """Read a previously-written report (``BENCH_engine.json``)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "points" not in data:
        raise ValueError(f"{path} is not a bench report (no 'points' key)")
    return data


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare_reports(
    current: BenchReport,
    committed: Dict[str, object],
    fail_threshold: float = 0.30,
) -> List[str]:
    """CI regression gate: problems comparing a fresh run against the
    committed trajectory.

    Two checks per shared point id:

    * **fingerprint** — must match exactly (machine-independent; a
      mismatch means the engine changed the simulation, not just its
      speed);
    * **cycles/s** — must not fall more than ``fail_threshold`` below
      the committed number (machine-dependent; the threshold absorbs
      runner variance).

    Returns a list of human-readable problems (empty = pass).
    """
    problems: List[str] = []
    committed_points = committed.get("points", {})
    if not isinstance(committed_points, dict):
        return [f"committed report has malformed 'points': {committed_points!r}"]
    for m in current.measurements:
        prior = committed_points.get(m.point.id)
        if not isinstance(prior, dict):
            continue  # new point: no history yet
        expected = prior.get("fingerprint")
        if expected is not None and list(m.fingerprint) != list(expected):
            problems.append(
                f"{m.point.id}: fingerprint changed "
                f"{list(expected)} -> {list(m.fingerprint)} "
                f"(the engine no longer computes the same simulation)"
            )
        base_rate = prior.get("cycles_per_s")
        if isinstance(base_rate, (int, float)) and base_rate > 0:
            floor = (1.0 - fail_threshold) * base_rate
            if m.cycles_per_s < floor:
                problems.append(
                    f"{m.point.id}: cycles/s regressed "
                    f"{base_rate:.0f} -> {m.cycles_per_s:.0f} "
                    f"(> {fail_threshold:.0%} below the committed baseline)"
                )
    committed_batch = committed.get("batch_points", {})
    if not isinstance(committed_batch, dict):
        return problems + [
            f"committed report has malformed 'batch_points': "
            f"{committed_batch!r}"
        ]
    for bm in current.batch_measurements:
        if not bm.bit_identical:
            problems.append(
                f"{bm.point.id}: sampled event-engine results no longer "
                f"match the array batch bit-for-bit"
            )
        prior = committed_batch.get(bm.point.id)
        if not isinstance(prior, dict):
            continue  # new batch point: no history yet
        expected = prior.get("fingerprint")
        if expected is not None and list(bm.fingerprint) != list(expected):
            problems.append(
                f"{bm.point.id}: batch fingerprint changed "
                f"{list(expected)} -> {list(bm.fingerprint)} "
                f"(the engine no longer computes the same simulations)"
            )
        base_rate = prior.get("points_per_s")
        if isinstance(base_rate, (int, float)) and base_rate > 0:
            floor = (1.0 - fail_threshold) * base_rate
            if bm.points_per_s < floor:
                problems.append(
                    f"{bm.point.id}: batched points/s regressed "
                    f"{base_rate:.2f} -> {bm.points_per_s:.2f} "
                    f"(> {fail_threshold:.0%} below the committed baseline)"
                )
    return problems
