"""Experiment harness: sweeps, saturation search, figure regeneration."""

from .claims import (
    ThroughputRatio,
    adaptive_vs_nonadaptive,
    paper_hop_counts,
    uniform_nonadaptive_wins,
)
from .experiments import (
    FAST,
    FIGURE_HARNESSES,
    FULL,
    ExperimentPreset,
    figure13_mesh_uniform,
    figure14_mesh_transpose,
    figure15_cube_transpose,
    figure16_cube_reverse_flip,
    section5_pcube_table,
)
from .runner import (
    CACHE_SCHEMA,
    ParallelSweepRunner,
    PointSpec,
    ResultCache,
    RunnerStats,
    default_cache_dir,
    make_pattern,
    parse_topology_spec,
    point_spec,
    topology_spec,
)
from .faultsweep import (
    FaultCampaign,
    FaultCell,
    campaign_config,
    run_fault_campaign,
)
from .saturation import SaturationPoint, find_saturation, find_saturation_many
from .series import (
    format_figure,
    format_saturation_points,
    format_saturation_summary,
    render_latency_chart,
)
from .sweep import SweepSeries, compare_algorithms, run_sweep

__all__ = [
    "CACHE_SCHEMA",
    "ExperimentPreset",
    "FAST",
    "FIGURE_HARNESSES",
    "FULL",
    "FaultCampaign",
    "FaultCell",
    "ParallelSweepRunner",
    "PointSpec",
    "ResultCache",
    "RunnerStats",
    "SaturationPoint",
    "SweepSeries",
    "ThroughputRatio",
    "adaptive_vs_nonadaptive",
    "campaign_config",
    "compare_algorithms",
    "default_cache_dir",
    "figure13_mesh_uniform",
    "figure14_mesh_transpose",
    "figure15_cube_transpose",
    "figure16_cube_reverse_flip",
    "find_saturation",
    "find_saturation_many",
    "format_figure",
    "format_saturation_points",
    "format_saturation_summary",
    "make_pattern",
    "paper_hop_counts",
    "parse_topology_spec",
    "point_spec",
    "render_latency_chart",
    "run_fault_campaign",
    "run_sweep",
    "section5_pcube_table",
    "topology_spec",
    "uniform_nonadaptive_wins",
]
