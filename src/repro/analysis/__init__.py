"""Experiment harness: sweeps, saturation search, figure regeneration."""

from .claims import (
    ThroughputRatio,
    adaptive_vs_nonadaptive,
    paper_hop_counts,
    uniform_nonadaptive_wins,
)
from .experiments import (
    FAST,
    FIGURE_HARNESSES,
    FULL,
    ExperimentPreset,
    figure13_mesh_uniform,
    figure14_mesh_transpose,
    figure15_cube_transpose,
    figure16_cube_reverse_flip,
    section5_pcube_table,
)
from .saturation import SaturationPoint, find_saturation
from .series import (
    format_figure,
    format_saturation_points,
    format_saturation_summary,
    render_latency_chart,
)
from .sweep import SweepSeries, compare_algorithms, run_sweep

__all__ = [
    "ExperimentPreset",
    "FAST",
    "FIGURE_HARNESSES",
    "FULL",
    "SaturationPoint",
    "SweepSeries",
    "ThroughputRatio",
    "adaptive_vs_nonadaptive",
    "compare_algorithms",
    "figure13_mesh_uniform",
    "figure14_mesh_transpose",
    "figure15_cube_transpose",
    "figure16_cube_reverse_flip",
    "find_saturation",
    "format_figure",
    "format_saturation_points",
    "format_saturation_summary",
    "paper_hop_counts",
    "render_latency_chart",
    "run_sweep",
    "section5_pcube_table",
    "uniform_nonadaptive_wins",
]
