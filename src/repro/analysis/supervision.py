"""Supervised, crash-tolerant execution of experiment batches.

PR 2 made the *simulated network* fault tolerant; this module does the
same for the harness that runs it.  A bare ``multiprocessing.Pool``
dies with its worst worker: one OOM-killed process, one hung point, or
one raising simulation aborts a multi-hour campaign and discards every
completed result.  The supervised pool here treats worker failures the
way the engine treats link failures — detect, diagnose, retry, and
account, without losing the healthy work:

* :class:`SupervisedPool` — a pool of single-task worker processes the
  parent actively supervises.  Each worker gets one point at a time
  over its own pipe, so the parent always knows *which* point a dead or
  hung worker was running.  It enforces a per-point wall-clock timeout
  (kill + respawn), detects crashes (worker exits without reporting),
  converts worker exceptions into structured records, and retries
  failed points with bounded exponential backoff.
* :class:`PointFailure` — the structured post-mortem of one point that
  exhausted its attempts: cause (``crash``/``timeout``/``exception``),
  attempt count, traceback text, and the final attempt's duration.
* :class:`BatchReport` — what a supervised batch returns: spec-ordered
  results (``None`` where a point permanently failed) plus the failure
  manifest.  ``keep_going`` mode delivers every healthy point;
  ``fail_fast`` (the default) aborts on the first permanent failure
  like the historical pool did.
* :class:`CampaignJournal` — an append-only JSONL checkpoint of
  completed points (by result-cache key).  Each record is flushed and
  fsynced before the campaign moves on, so a SIGKILL loses nothing
  already journaled; rerunning with ``resume`` skips every journaled
  point whose result the cache still holds.

SIGINT drains gracefully: the first Ctrl-C stops dispatching new
points and lets in-flight ones finish (and be journaled); a second
Ctrl-C kills the workers and aborts immediately.

The pool is deliberately generic: a "spec" is anything picklable with
an ``execute()`` method (optionally ``execute_attempt(attempt)`` — the
chaos harness in :mod:`repro.analysis.chaos` uses it to misbehave on
early attempts).  Results never depend on which worker ran a point or
in what order, so supervised execution is bit-identical to a clean
serial run.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

FAILURE_CAUSES = ("crash", "timeout", "exception")

JOURNAL_SCHEMA = 1
"""Version stamped into every journal header record."""

#: How long (seconds) the parent waits on worker pipes per supervision
#: loop iteration when nothing earlier (deadline, retry) is due.
_POLL_INTERVAL = 0.25

#: Grace period for joining a worker we just killed or asked to exit.
_JOIN_TIMEOUT = 5.0


class PointExecutionError(RuntimeError):
    """A point permanently failed under ``fail_fast``.

    Carries the :class:`PointFailure` post-mortem as ``.failure``.
    """

    def __init__(self, failure: "PointFailure") -> None:
        super().__init__(failure.describe())
        self.failure = failure


@dataclass
class PointFailure:
    """One point that exhausted its attempts, diagnosed."""

    index: int
    """Position of the point in its batch (spec order)."""

    spec: object
    """The spec that failed (a :class:`~repro.analysis.runner.PointSpec`
    for runner batches)."""

    cause: str
    """``crash`` (worker exited without reporting), ``timeout`` (point
    exceeded the wall-clock limit and the worker was killed), or
    ``exception`` (the point raised; see ``traceback``)."""

    attempts: int
    """Total attempts made (1 = no retries)."""

    duration: float
    """Wall-clock seconds spent on the final attempt."""

    message: str = ""
    """One-line diagnosis (exception repr, exit code, timeout limit)."""

    traceback: str = ""
    """Full worker-side traceback for ``exception`` failures."""

    def describe(self) -> str:
        return (
            f"point #{self.index} failed ({self.cause}) after "
            f"{self.attempts} attempt(s), {self.duration:.2f}s on the "
            f"last: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        spec_dict = self.spec
        to_dict = getattr(self.spec, "to_dict", None)
        if callable(to_dict):
            spec_dict = to_dict()
        return {
            "index": self.index,
            "spec": spec_dict,
            "cause": self.cause,
            "attempts": self.attempts,
            "duration": self.duration,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class BatchReport:
    """Outcome of one supervised batch, in spec order.

    ``results[i]`` is the i-th spec's result, or ``None`` when that
    point permanently failed (possible only under ``keep_going``);
    ``failures`` is the manifest of those permanent failures, ordered
    by spec index.
    """

    results: List[Optional[object]]
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r is not None)

    def require_complete(self) -> List[object]:
        """The results list, raising if any point failed."""
        if self.failures:
            raise PointExecutionError(self.failures[0])
        return self.results

    def manifest_lines(self) -> List[str]:
        """The failure manifest as JSONL lines (one per failure)."""
        return [
            json.dumps(f.to_dict(), sort_keys=True, default=str)
            for f in self.failures
        ]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _run_spec(spec, attempt: int):
    """Execute a spec, preferring the attempt-aware entry point (the
    chaos harness keys its misbehaviour on the attempt number)."""
    execute_attempt = getattr(spec, "execute_attempt", None)
    if callable(execute_attempt):
        return execute_attempt(attempt)
    return spec.execute()


def _worker_loop(conn, parent_conn=None) -> None:
    """Body of one supervised worker process.

    Receives ``(index, spec, attempt)`` tasks one at a time, replies
    ``("ok", index, result, duration)`` or ``("exception", index,
    message, traceback, duration)``.  A ``None`` task is the shutdown
    sentinel.  SIGINT is ignored so a Ctrl-C in the parent drains
    cleanly instead of killing every in-flight point.
    """
    if parent_conn is not None:
        # Under fork the child inherits a copy of its own pipe's parent
        # end; holding it open would keep ``recv`` from ever raising
        # EOFError after the parent dies (e.g. SIGKILL), orphaning the
        # worker forever.  Close it so parent death unblocks us.
        parent_conn.close()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, spec, attempt = task
        started = time.perf_counter()
        try:
            result = _run_spec(spec, attempt)
        except BaseException as exc:  # noqa: BLE001 — post-mortem, not flow
            conn.send(
                (
                    "exception",
                    index,
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                    time.perf_counter() - started,
                )
            )
        else:
            conn.send(("ok", index, result, time.perf_counter() - started))


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class _Task:
    index: int
    spec: object
    attempt: int = 1

    def __lt__(self, other: "_Task") -> bool:  # heapq tie-breaker
        return self.index < other.index


class _Worker:
    """One supervised worker process and its task pipe."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_loop, args=(child_conn, self.conn), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.started = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(self, task: _Task, timeout: Optional[float]) -> None:
        self.task = task
        self.started = time.monotonic()
        self.deadline = (
            self.started + timeout if timeout is not None else None
        )
        self.conn.send((task.index, task.spec, task.attempt))

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def shutdown(self) -> None:
        """Ask the worker to exit and reap it."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.conn.close()
        self.proc.join(timeout=_JOIN_TIMEOUT)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=_JOIN_TIMEOUT)
        self.proc.close()

    def kill(self) -> Optional[int]:
        """SIGKILL the worker (hung or already dead), reap it, and
        return its exit code (negative = killed by that signal)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=_JOIN_TIMEOUT)
        exitcode = self.proc.exitcode
        try:
            self.proc.close()
        except ValueError:
            pass
        return exitcode


#: ``on_point(index, result, attempts, duration)`` — a point completed.
PointCallback = Callable[[int, object, int, float], None]
#: ``on_failure(failure)`` — a point permanently failed (keep_going).
FailureCallback = Callable[[PointFailure], None]
#: ``on_retry(task_index, cause, attempt)`` — an attempt failed and the
#: point will be retried.
RetryCallback = Callable[[int, str, int], None]


class SupervisedPool:
    """A worker pool that survives crashes, hangs, and exceptions.

    Parameters
    ----------
    workers:
        Worker processes to run (each executes one point at a time).
    point_timeout:
        Per-point wall-clock limit in seconds; a worker past it is
        SIGKILLed and respawned, and the point counts as a ``timeout``
        attempt.  ``None`` disables the watchdog.
    max_retries:
        Extra attempts granted to a failed point before it becomes a
        :class:`PointFailure` (0 = first failure is final).
    retry_backoff_base / retry_backoff_cap:
        A point's n-th retry is delayed ``min(cap, base * 2**(n-1))``
        seconds — bounded exponential backoff, so a transiently sick
        machine (OOM pressure, a filling disk) gets time to recover.
    """

    def __init__(
        self,
        workers: int,
        point_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff_base: float = 0.5,
        retry_backoff_cap: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff_base <= 0 or retry_backoff_cap <= 0:
            raise ValueError("retry backoff values must be positive")
        self.workers = workers
        self.point_timeout = point_timeout
        self.max_retries = max_retries
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self._ctx = multiprocessing.get_context()

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt - 1`` (attempt >= 2)."""
        return min(
            self.retry_backoff_cap,
            self.retry_backoff_base * 2 ** max(0, attempt - 2),
        )

    def run(
        self,
        items: Sequence[Tuple[int, object]],
        keep_going: bool = False,
        on_point: Optional[PointCallback] = None,
        on_failure: Optional[FailureCallback] = None,
        on_retry: Optional[RetryCallback] = None,
    ) -> List[PointFailure]:
        """Execute ``(index, spec)`` items, invoking ``on_point`` as
        each completes (in completion order, in the parent process).

        Returns the permanent-failure manifest, ordered by index.
        Under ``fail_fast`` (the default) the first permanent failure
        kills the remaining work and raises
        :class:`PointExecutionError`; under ``keep_going`` every other
        point still runs and the failures are returned/streamed.

        The first KeyboardInterrupt drains in-flight points (no new
        dispatch) and then re-raises; a second aborts immediately.
        """
        pending: deque = deque(_Task(i, spec) for i, spec in items)
        retry_heap: List[Tuple[float, _Task]] = []
        failures: List[PointFailure] = []
        fleet: List[_Worker] = []
        draining = False
        interrupted = False
        abort: Optional[PointExecutionError] = None

        def _attempt_failed(
            worker: Optional[_Worker],
            task: _Task,
            cause: str,
            duration: float,
            message: str,
            tb: str = "",
        ) -> None:
            nonlocal abort
            if task.attempt <= self.max_retries and not draining:
                if on_retry is not None:
                    on_retry(task.index, cause, task.attempt)
                delay = self.backoff(task.attempt + 1)
                task.attempt += 1
                heapq.heappush(
                    retry_heap, (time.monotonic() + delay, task)
                )
                return
            failure = PointFailure(
                index=task.index,
                spec=task.spec,
                cause=cause,
                attempts=task.attempt,
                duration=duration,
                message=message,
                traceback=tb,
            )
            failures.append(failure)
            if on_failure is not None:
                on_failure(failure)
            if not keep_going and abort is None:
                abort = PointExecutionError(failure)

        try:
            while True:
                try:
                    now = time.monotonic()
                    while retry_heap and retry_heap[0][0] <= now:
                        pending.append(heapq.heappop(retry_heap)[1])

                    busy = [w for w in fleet if w.busy]
                    if abort is not None or (draining and not busy):
                        break
                    if not pending and not retry_heap and not busy:
                        break

                    if not draining:
                        idle = [w for w in fleet if not w.busy]
                        while pending and idle:
                            idle.pop().dispatch(
                                pending.popleft(), self.point_timeout
                            )
                        while pending and len(fleet) < self.workers:
                            worker = _Worker(self._ctx)
                            fleet.append(worker)
                            worker.dispatch(
                                pending.popleft(), self.point_timeout
                            )
                        busy = [w for w in fleet if w.busy]

                    timeout = _POLL_INTERVAL
                    for worker in busy:
                        if worker.deadline is not None:
                            timeout = min(timeout, worker.deadline - now)
                    if retry_heap:
                        timeout = min(timeout, retry_heap[0][0] - now)
                    timeout = max(0.0, timeout)

                    if busy:
                        ready = _connection_wait(
                            [w.conn for w in busy], timeout=timeout
                        )
                    else:
                        if timeout:
                            time.sleep(timeout)
                        ready = []

                    for worker in [w for w in busy if w.conn in ready]:
                        task = worker.task
                        assert task is not None
                        try:
                            reply = worker.conn.recv()
                        except (EOFError, OSError):
                            # The worker died without reporting: crash.
                            duration = worker.elapsed()
                            exitcode = self._reap(fleet, worker)
                            _attempt_failed(
                                worker,
                                task,
                                "crash",
                                duration,
                                f"worker exited with code {exitcode} "
                                f"mid-point",
                            )
                            continue
                        worker.task = None
                        worker.deadline = None
                        if reply[0] == "ok":
                            _, index, result, duration = reply
                            if on_point is not None:
                                on_point(
                                    index, result, task.attempt, duration
                                )
                        else:
                            _, index, message, tb, duration = reply
                            _attempt_failed(
                                worker,
                                task,
                                "exception",
                                duration,
                                message,
                                tb,
                            )

                    now = time.monotonic()
                    for worker in [w for w in fleet if w.busy]:
                        if (
                            worker.deadline is not None
                            and now >= worker.deadline
                        ):
                            task = worker.task
                            assert task is not None
                            duration = worker.elapsed()
                            self._reap(fleet, worker, hard=True)
                            _attempt_failed(
                                worker,
                                task,
                                "timeout",
                                duration,
                                f"point exceeded the "
                                f"{self.point_timeout:.3g}s wall-clock "
                                f"limit; worker killed",
                            )
                except KeyboardInterrupt:
                    if draining:
                        raise
                    draining = True
                    interrupted = True
                    pending.clear()
                    retry_heap.clear()
        finally:
            for worker in list(fleet):
                if worker.busy:
                    worker.kill()
                else:
                    worker.shutdown()

        if abort is not None:
            raise abort
        if interrupted:
            raise KeyboardInterrupt
        failures.sort(key=lambda f: f.index)
        return failures

    @staticmethod
    def _reap(
        fleet: List[_Worker], worker: _Worker, hard: bool = False
    ) -> Optional[int]:
        """Remove a dead/hung worker from the fleet, returning its exit
        code (``hard`` kills it first — the timeout path)."""
        exitcode = worker.kill()
        fleet.remove(worker)
        return exitcode


# ---------------------------------------------------------------------------
# The campaign journal
# ---------------------------------------------------------------------------


class CampaignJournal:
    """Append-only JSONL checkpoint of a campaign's completed points.

    Line 1 is a header record (``kind: "campaign"``, schema version,
    creation time).  Every completed point appends a ``kind: "point"``
    record carrying its result-cache key, attempts, duration, and
    whether it was served from cache; permanent failures append
    ``kind: "failure"`` records with the full post-mortem.  Each append
    is flushed and fsynced before the campaign proceeds, so a SIGKILL
    at any moment loses at most the point currently in flight — never
    one already journaled.

    Opened with ``resume=True`` the journal loads the set of completed
    keys (tolerating a torn final line from a previous hard kill) and
    appends to the same file; without ``resume`` an existing file is
    truncated and the campaign starts clean.
    """

    def __init__(self, path: os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self._done: Set[str] = set()
        self.torn_lines = 0
        if resume and self.path.exists():
            self._load()
            self._fh = open(self.path, "a", encoding="utf-8")
            # A hard kill can leave a torn, newline-less final line;
            # terminate it so appended records start on a fresh line
            # instead of gluing onto the fragment (losing both).
            if self.path.stat().st_size and not self._ends_with_newline():
                self._fh.write("\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._append(
                {
                    "kind": "campaign",
                    "schema": JOURNAL_SCHEMA,
                    "created": time.time(),
                }
            )

    def _ends_with_newline(self) -> bool:
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) == b"\n"

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A SIGKILL can tear the final line mid-write; the
                    # point it described was not durably completed.
                    self.torn_lines += 1
                    continue
                if record.get("kind") == "point":
                    key = record.get("key")
                    if isinstance(key, str):
                        self._done.add(key)

    def _append(self, record: Dict[str, object]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def done(self, key: str) -> bool:
        return key in self._done

    @property
    def done_keys(self) -> Set[str]:
        return set(self._done)

    def __len__(self) -> int:
        return len(self._done)

    def record_point(
        self,
        key: str,
        attempts: int = 1,
        duration: float = 0.0,
        cached: bool = False,
    ) -> None:
        """Checkpoint a completed point (idempotent per key)."""
        if key in self._done:
            return
        self._done.add(key)
        self._append(
            {
                "kind": "point",
                "key": key,
                "attempts": attempts,
                "duration": duration,
                "cached": cached,
            }
        )

    def record_failure(self, failure: PointFailure) -> None:
        record = failure.to_dict()
        record["kind"] = "failure"
        self._append(record)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def read(path: os.PathLike) -> Iterator[Dict[str, object]]:
        """Yield every intact record in a journal file."""
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
