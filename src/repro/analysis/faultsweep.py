"""Seeded fault-injection campaigns: graceful degradation, quantified.

The paper's fault-tolerance motivation — adaptive algorithms give packets
"alternative paths ... around congested or faulty hardware" — is checked
statically by :mod:`repro.verification.faults`; this module exercises it
*dynamically*.  A campaign sweeps the number of failed links: for each
fault count it draws ``trials`` deterministic
:class:`~repro.faults.plan.FaultPlan` schedules (seed-derived, identical
across algorithms, so every algorithm faces exactly the same broken
hardware), runs the fault-injected wormhole simulator per algorithm, and
aggregates delivery ratio, latency of what was delivered, drops by
cause, retries, and kill counts.

Campaign points route through the ordinary
:class:`~repro.analysis.runner.ParallelSweepRunner`/:class:`~repro.
analysis.runner.ResultCache` machinery — a fault plan is part of
:class:`~repro.simulation.config.SimulationConfig`, so cache keys cover
the full schedule.  The ``repro faults`` CLI subcommand fronts
:func:`run_fault_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..faults.plan import FaultPlan
from ..simulation.config import SimulationConfig
from ..simulation.metrics import SimulationResult
from .runner import ParallelSweepRunner, PointSpec, parse_topology_spec

DEFAULT_ALGORITHMS = ("xy", "west-first", "north-last", "negative-first")
DEFAULT_FAULT_COUNTS = (1, 2, 4, 8)


def campaign_config(
    offered_load: float = 0.5,
    warmup_cycles: int = 500,
    measure_cycles: int = 4_000,
    seed: int = 1,
    packet_timeout: int = 800,
    max_retries: int = 2,
    drain_cycles: int = 3_000,
    **overrides,
) -> SimulationConfig:
    """The default operating point for fault campaigns: light load (so
    losses measure *faults*, not congestion), a per-packet watchdog well
    above the largest message's drain time, a couple of retries, and a
    drain window so every measured packet resolves to delivered or
    dropped instead of "out of simulated time"."""
    return SimulationConfig(
        offered_load=offered_load,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        packet_timeout=packet_timeout,
        max_retries=max_retries,
        drain_cycles=drain_cycles,
        **overrides,
    )


def plan_seed(campaign_seed: int, num_faults: int, trial: int) -> int:
    """Deterministic per-(count, trial) fault-plan seed."""
    return campaign_seed * 1_000_003 + num_faults * 10_007 + trial


@dataclass
class FaultCell:
    """One (algorithm, fault count) cell: its trials' results.

    Under the runner's ``keep_going`` mode a trial lost to a worker
    failure leaves ``None`` in :attr:`results`; the aggregates below
    skip the holes (the cell then summarises the trials that completed,
    and :attr:`lost_trials` says how many did not)."""

    algorithm: str
    num_faults: int
    results: List[Optional[SimulationResult]]

    def completed(self) -> List[SimulationResult]:
        return [r for r in self.results if r is not None]

    @property
    def lost_trials(self) -> int:
        """Trials whose worker permanently failed (keep_going holes)."""
        return sum(1 for r in self.results if r is None)

    @property
    def generated(self) -> int:
        return sum(r.generated_packets for r in self.completed())

    @property
    def delivered(self) -> int:
        return sum(r.delivered_packets for r in self.completed())

    @property
    def delivery_ratio(self) -> float:
        generated = self.generated
        return self.delivered / generated if generated else 1.0

    @property
    def avg_latency_us(self) -> Optional[float]:
        delivered = self.delivered
        if delivered == 0:
            return None
        completed = self.completed()
        cycles = sum(r.total_latency_cycles for r in completed)
        return cycles / delivered * completed[0].cycle_time_us

    @property
    def dropped(self) -> int:
        return sum(r.dropped_packets for r in self.completed())

    @property
    def killed(self) -> int:
        return sum(r.killed_packets for r in self.completed())

    @property
    def retried(self) -> int:
        return sum(r.retried_packets for r in self.completed())

    @property
    def drops_by_cause(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for r in self.completed():
            for cause, count in r.drops_by_cause.items():
                merged[cause] = merged.get(cause, 0) + count
        return {cause: merged[cause] for cause in sorted(merged)}

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "num_faults": self.num_faults,
            "generated": self.generated,
            "delivered": self.delivered,
            "delivery_ratio": self.delivery_ratio,
            "avg_latency_us": self.avg_latency_us,
            "dropped": self.dropped,
            "killed": self.killed,
            "retried": self.retried,
            "drops_by_cause": self.drops_by_cause,
            "lost_trials": self.lost_trials,
        }


@dataclass
class FaultCampaign:
    """A full campaign: cells over (algorithm x fault count)."""

    topology: str
    pattern: str
    trials: int
    seed: int
    cells: List[FaultCell]

    def cell(self, algorithm: str, num_faults: int) -> FaultCell:
        for cell in self.cells:
            if cell.algorithm == algorithm and cell.num_faults == num_faults:
                return cell
        raise KeyError((algorithm, num_faults))

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.algorithm)
        return list(seen)

    def fault_counts(self) -> List[int]:
        return sorted({cell.num_faults for cell in self.cells})

    def overall_delivery_ratio(self, algorithm: str) -> float:
        """Aggregate delivery ratio across every fault count."""
        generated = delivered = 0
        for cell in self.cells:
            if cell.algorithm == algorithm:
                generated += cell.generated
                delivered += cell.delivered
        return delivered / generated if generated else 1.0

    def rows(self) -> List[str]:
        """Text report: one row per (algorithm, fault count) plus an
        aggregate row per algorithm."""
        lines = [
            f"# fault campaign: {self.topology} / {self.pattern}, "
            f"{self.trials} trial(s) per point, seed {self.seed}",
            f"# {'algorithm':<16s} {'links':>5s} {'ratio':>7s} "
            f"{'latency(us)':>11s} {'lost':>5s} {'killed':>6s} "
            f"{'retries':>7s}  drops by cause",
        ]
        for algorithm in self.algorithms():
            for count in self.fault_counts():
                cell = self.cell(algorithm, count)
                latency = cell.avg_latency_us
                lat = f"{latency:11.2f}" if latency is not None else "        n/a"
                causes = ",".join(
                    f"{cause}={n}" for cause, n in cell.drops_by_cause.items()
                ) or "-"
                lines.append(
                    f"  {algorithm:<16s} {count:5d} {cell.delivery_ratio:7.4f} "
                    f"{lat} {cell.dropped:5d} {cell.killed:6d} "
                    f"{cell.retried:7d}  {causes}"
                )
            lines.append(
                f"  {algorithm:<16s} {'all':>5s} "
                f"{self.overall_delivery_ratio(algorithm):7.4f}"
            )
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "trials": self.trials,
            "seed": self.seed,
            "cells": [cell.to_dict() for cell in self.cells],
            "overall": {
                algorithm: self.overall_delivery_ratio(algorithm)
                for algorithm in sorted(self.algorithms())
            },
        }


def run_fault_campaign(
    topology: str = "mesh:16x16",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    pattern: str = "uniform",
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    trials: int = 3,
    base_config: Optional[SimulationConfig] = None,
    seed: int = 0,
    fault_start: int = 0,
    runner: Optional[ParallelSweepRunner] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> FaultCampaign:
    """Run the campaign grid and aggregate it into a
    :class:`FaultCampaign`.

    Fault plans are permanent link failures appearing at cycle
    ``fault_start`` (0 = present from the beginning; a mid-run start
    additionally kills in-flight worms), drawn per (fault count, trial)
    from :func:`plan_seed` — *not* per algorithm, so the comparison
    across algorithms is paired.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    if any(count < 0 for count in fault_counts):
        raise ValueError("fault counts must be non-negative")
    if fault_start < 0:
        raise ValueError("fault_start must be non-negative")
    algorithms = list(dict.fromkeys(algorithms))
    fault_counts = list(dict.fromkeys(fault_counts))
    topo = parse_topology_spec(topology)
    if base_config is None:
        base_config = campaign_config()
    specs: List[PointSpec] = []
    index = []  # (algorithm, num_faults) per spec
    for count in fault_counts:
        for trial in range(trials):
            plan = FaultPlan.random_links(
                topo, count, seed=plan_seed(seed, count, trial),
                start=fault_start,
            )
            config = replace(
                base_config,
                fault_plan=plan,
                seed=base_config.seed + 7_919 * trial,
            )
            for algorithm in algorithms:
                specs.append(PointSpec(topology, algorithm, pattern, config))
                index.append((algorithm, count))
    if runner is not None:
        results = runner.run_points(specs, progress=progress)
    else:
        results = []
        for spec in specs:
            result = spec.execute()
            results.append(result)
            if progress is not None:
                progress(result)
    cells: Dict[tuple, FaultCell] = {}
    for (algorithm, count), result in zip(index, results):
        key = (algorithm, count)
        if key not in cells:
            cells[key] = FaultCell(algorithm, count, [])
        cells[key].results.append(result)
    ordered = [
        cells[(algorithm, count)]
        for algorithm in dict.fromkeys(algorithms)
        for count in fault_counts
    ]
    return FaultCampaign(
        topology=topology,
        pattern=pattern,
        trials=trials,
        seed=seed,
        cells=ordered,
    )
