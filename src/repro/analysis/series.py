"""Paper-style text output for sweeps and saturation summaries.

The paper's figures are latency-vs-throughput curves; these helpers print
them as aligned text tables (one series per algorithm) so a benchmark run
reproduces the figure as rows rather than pixels.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .saturation import SaturationPoint
from .sweep import SweepSeries


def format_figure(
    title: str,
    series: Sequence[SweepSeries],
    note: Optional[str] = None,
    chart: bool = True,
) -> str:
    """Render one figure's series as a text block (tables + ASCII chart)."""
    lines: List[str] = [f"== {title} =="]
    if note:
        lines.append(f"   {note}")
    for s in series:
        lines.append("")
        lines.extend(s.rows())
    lines.append("")
    if chart:
        lines.append(render_latency_chart(series))
        lines.append("")
    lines.append(format_saturation_summary(series))
    return "\n".join(lines)


def format_saturation_summary(series: Sequence[SweepSeries]) -> str:
    """The per-algorithm maximum sustainable throughput table."""
    lines = ["-- max sustainable throughput (flits/us, from sweep) --"]
    baseline = None
    for s in series:
        best = s.max_sustainable_throughput()
        if baseline is None:
            baseline = best
        ratio = f"  ({best / baseline:4.2f}x vs {series[0].algorithm})" if baseline else ""
        lines.append(f"{s.algorithm:18s} {best:8.1f}{ratio}")
    return "\n".join(lines)


def render_latency_chart(
    series: Sequence[SweepSeries],
    width: int = 64,
    height: int = 18,
    max_latency: Optional[float] = None,
) -> str:
    """ASCII latency-vs-throughput scatter, one marker per algorithm.

    The visual analogue of Figures 13-16: x is delivered throughput
    (flits/us), y is average latency (us).  Each series gets the marker
    shown in the legend; overlapping points show the later series'
    marker.
    """
    markers = "xo*+#@%&"
    points = []
    for index, s in enumerate(series):
        marker = markers[index % len(markers)]
        for result in s.results:
            latency = result.avg_latency_us
            if latency is not None:
                points.append(
                    (result.throughput_flits_per_us, latency, marker)
                )
    if not points:
        return "(no delivered traffic to chart)"
    max_thr = max(p[0] for p in points) or 1.0
    if max_latency is None:
        max_latency = max(p[1] for p in points)
    max_latency = max(max_latency, 1e-9)
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for thr, lat, marker in points:
        col = min(width, int(round(thr / max_thr * width)))
        row = min(height, int(round(min(lat, max_latency) / max_latency * height)))
        grid[height - row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{max_latency:7.1f}us "
        elif i == height:
            label = f"{0.0:7.1f}us "
        else:
            label = " " * 10
        lines.append(label + "|" + "".join(row).rstrip())
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"0 .. {max_thr:.0f} flits/us delivered"
    )
    legend = "   legend: " + "  ".join(
        f"{markers[i % len(markers)]}={s.algorithm}"
        for i, s in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def format_saturation_points(points: Iterable[SaturationPoint]) -> str:
    lines = [
        "algorithm          pattern            load(fl/us/node)  "
        "throughput(fl/us)  latency(us)"
    ]
    for p in points:
        lat = f"{p.latency_us:10.2f}" if p.latency_us is not None else "       n/a"
        lines.append(
            f"{p.algorithm:18s} {p.pattern:18s} {p.max_sustainable_load:16.3f}  "
            f"{p.throughput_flits_per_us:17.1f}  {lat}"
        )
    return "\n".join(lines)
