"""Output-selection policy comparison sweeps (docs/SELECTION.md).

The paper fixes output selection to the xy rule; :mod:`repro.routing.
selection` makes it pluggable.  This module measures what that buys: a
comparison grid over (policy x algorithm x traffic pattern x fault
plan), each cell a small load sweep, reporting saturation throughput,
low-load latency, and delivery ratio — plus deltas against the ``xy``
baseline policy, which is the results axis the paper never had.

Points route through the ordinary :class:`~repro.analysis.runner.
ParallelSweepRunner`/:class:`~repro.analysis.runner.ResultCache`
machinery — the selection policy and its threshold are
:class:`~repro.simulation.config.SimulationConfig` fields, so cache
keys cover them.  Fault plans are drawn once per comparison and shared
by every policy and algorithm, so the faulted halves are paired.  The
``repro selection`` CLI subcommand and ``scripts/compare_selection.py``
(which produces the committed ``docs/data/selection_compare.json``
artifact) front :func:`run_selection_comparison`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..simulation.config import SimulationConfig
from ..simulation.metrics import SimulationResult
from ..simulation.selection import output_policy_names
from .runner import ParallelSweepRunner, PointSpec, parse_topology_spec

BASELINE_POLICY = "xy"
DEFAULT_POLICIES = ("xy", "round-robin", "max-credits", "threshold")
# Adaptive algorithms only: xy routing offers one candidate per hop, so
# every selection policy degenerates to it (a valid control, but not a
# default worth simulating).
DEFAULT_COMPARE_ALGORITHMS = ("west-first", "negative-first")
DEFAULT_COMPARE_PATTERNS = ("uniform", "transpose")
DEFAULT_COMPARE_LOADS = (0.6, 1.2, 2.0)


def comparison_config(
    offered_load: float = 1.0,
    warmup_cycles: int = 800,
    measure_cycles: int = 3_000,
    seed: int = 1,
    **overrides,
) -> SimulationConfig:
    """The default operating point for policy comparisons: windows long
    enough for saturation behaviour to separate the policies, short
    enough that the full grid runs in minutes on one core."""
    return SimulationConfig(
        offered_load=offered_load,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        seed=seed,
        **overrides,
    )


@dataclass
class SelectionSeries:
    """One (policy, algorithm, pattern, fault count) load sweep.

    Under the runner's ``keep_going`` mode a load point lost to a
    worker failure leaves ``None`` in :attr:`results`; the aggregates
    below skip the holes (docs/RESILIENCE.md)."""

    policy: str
    algorithm: str
    pattern: str
    num_faults: int
    loads: List[float]
    results: List[Optional[SimulationResult]]

    def completed(self) -> List[SimulationResult]:
        return [r for r in self.results if r is not None]

    @property
    def saturation_throughput(self) -> float:
        """Delivered throughput (flits/us) at the highest offered load
        — the classic saturation comparison point."""
        for r in reversed(self.results):
            if r is not None:
                return r.throughput_flits_per_us
        return 0.0

    @property
    def max_sustainable_throughput(self) -> float:
        sustainable = [r for r in self.completed() if r.sustainable]
        return max(
            (r.throughput_flits_per_us for r in sustainable), default=0.0
        )

    @property
    def low_load_latency_us(self) -> Optional[float]:
        """Average latency at the lowest offered load."""
        if not self.results or self.results[0] is None:
            return None
        return self.results[0].avg_latency_us

    @property
    def delivery_ratio(self) -> float:
        generated = sum(r.generated_packets for r in self.completed())
        delivered = sum(r.delivered_packets for r in self.completed())
        return delivered / generated if generated else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "num_faults": self.num_faults,
            "saturation_throughput_flits_per_us": self.saturation_throughput,
            "max_sustainable_throughput_flits_per_us": (
                self.max_sustainable_throughput
            ),
            "low_load_latency_us": self.low_load_latency_us,
            "delivery_ratio": self.delivery_ratio,
            "per_load": [
                {"failed": True}
                if r is None
                else {
                    "offered_load": r.offered_load,
                    "throughput_flits_per_us": r.throughput_flits_per_us,
                    "avg_latency_us": r.avg_latency_us,
                    "sustainable": r.sustainable,
                    "generated": r.generated_packets,
                    "delivered": r.delivered_packets,
                    "dropped": r.dropped_packets,
                }
                for r in self.results
            ],
        }


@dataclass
class SelectionComparison:
    """A full comparison: series over (policy x algorithm x pattern x
    fault plan), with deltas against the xy baseline policy."""

    topology: str
    loads: List[float]
    seed: int
    fault_links: int
    selection_threshold: int
    series: List[SelectionSeries]

    def groups(self) -> List[Tuple[str, str, int]]:
        """Ordered unique (algorithm, pattern, num_faults) groups."""
        seen: Dict[Tuple[str, str, int], None] = {}
        for s in self.series:
            seen.setdefault((s.algorithm, s.pattern, s.num_faults))
        return list(seen)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.series:
            seen.setdefault(s.policy)
        return list(seen)

    def cell(
        self, policy: str, algorithm: str, pattern: str, num_faults: int
    ) -> SelectionSeries:
        for s in self.series:
            if (
                s.policy == policy
                and s.algorithm == algorithm
                and s.pattern == pattern
                and s.num_faults == num_faults
            ):
                return s
        raise KeyError((policy, algorithm, pattern, num_faults))

    def deltas(self) -> List[Dict[str, object]]:
        """Per (group, non-baseline policy): deltas vs the xy cell."""
        out: List[Dict[str, object]] = []
        for algorithm, pattern, num_faults in self.groups():
            try:
                base = self.cell(BASELINE_POLICY, algorithm, pattern, num_faults)
            except KeyError:
                continue  # comparison run without the baseline policy
            for policy in self.policies():
                if policy == BASELINE_POLICY:
                    continue
                s = self.cell(policy, algorithm, pattern, num_faults)
                base_sat = base.saturation_throughput
                sat_delta_pct = (
                    (s.saturation_throughput - base_sat) / base_sat * 100.0
                    if base_sat
                    else None
                )
                lat_delta_pct = None
                if (
                    s.low_load_latency_us is not None
                    and base.low_load_latency_us
                ):
                    lat_delta_pct = (
                        (s.low_load_latency_us - base.low_load_latency_us)
                        / base.low_load_latency_us
                        * 100.0
                    )
                out.append(
                    {
                        "policy": policy,
                        "algorithm": algorithm,
                        "pattern": pattern,
                        "num_faults": num_faults,
                        "saturation_delta_pct": sat_delta_pct,
                        "low_load_latency_delta_pct": lat_delta_pct,
                        "delivery_ratio_delta": (
                            s.delivery_ratio - base.delivery_ratio
                        ),
                    }
                )
        return out

    def rows(self) -> List[str]:
        """Text report: one row per series, grouped, with deltas vs xy."""
        lines = [
            f"# selection-policy comparison: {self.topology}, "
            f"loads {','.join(f'{ld:g}' for ld in self.loads)}, "
            f"seed {self.seed}, fault plan: "
            + (f"{self.fault_links} link(s)" if self.fault_links else "none"),
            f"# {'policy':<12s} {'sat(fl/us)':>10s} {'sust(fl/us)':>11s} "
            f"{'latency(us)':>11s} {'ratio':>7s} {'vs xy':>8s}",
        ]
        for algorithm, pattern, num_faults in self.groups():
            faults = f", {num_faults} dead link(s)" if num_faults else ""
            lines.append(f"-- {algorithm} / {pattern}{faults}")
            base_sat = None
            try:
                base_sat = self.cell(
                    BASELINE_POLICY, algorithm, pattern, num_faults
                ).saturation_throughput
            except KeyError:
                pass
            for policy in self.policies():
                s = self.cell(policy, algorithm, pattern, num_faults)
                latency = s.low_load_latency_us
                lat = f"{latency:11.2f}" if latency is not None else "        n/a"
                if policy == BASELINE_POLICY or not base_sat:
                    vs = "       -"
                else:
                    pct = (s.saturation_throughput - base_sat) / base_sat * 100
                    vs = f"{pct:+7.1f}%"
                lines.append(
                    f"  {policy:<12s} {s.saturation_throughput:10.1f} "
                    f"{s.max_sustainable_throughput:11.1f} {lat} "
                    f"{s.delivery_ratio:7.4f} {vs}"
                )
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "loads": list(self.loads),
            "seed": self.seed,
            "fault_links": self.fault_links,
            "selection_threshold": self.selection_threshold,
            "series": [s.to_dict() for s in self.series],
            "deltas_vs_xy": self.deltas(),
        }


def run_selection_comparison(
    topology: str = "mesh:16x16",
    algorithms: Sequence[str] = DEFAULT_COMPARE_ALGORITHMS,
    patterns: Sequence[str] = DEFAULT_COMPARE_PATTERNS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    loads: Sequence[float] = DEFAULT_COMPARE_LOADS,
    base_config: Optional[SimulationConfig] = None,
    fault_links: int = 4,
    fault_seed: int = 0,
    fault_start: int = 0,
    selection_threshold: int = 2,
    runner: Optional[ParallelSweepRunner] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> SelectionComparison:
    """Run the comparison grid and aggregate it.

    Every policy faces the same traffic, seeds, and (when
    ``fault_links > 0``) the same single fault plan — the comparison is
    fully paired, so differences are attributable to selection alone.
    The faulted half gets watchdog/retry/drain knobs (unless the base
    config already sets them) so losses resolve instead of timing out.
    """
    policies = list(dict.fromkeys(policies))
    known = output_policy_names()
    unknown = sorted(set(policies) - set(known))
    if unknown:
        raise ValueError(
            f"unknown selection policies {unknown}; known: {known}"
        )
    if not policies:
        raise ValueError("policies must name at least one policy")
    if fault_links < 0:
        raise ValueError("fault_links must be non-negative")
    algorithms = list(dict.fromkeys(algorithms))
    patterns = list(dict.fromkeys(patterns))
    loads = list(loads)
    topo = parse_topology_spec(topology)
    if base_config is None:
        base_config = comparison_config()
    variants: List[Tuple[int, SimulationConfig]] = [(0, base_config)]
    if fault_links > 0:
        plan = FaultPlan.random_links(
            topo, fault_links, seed=fault_seed, start=fault_start
        )
        faulted = replace(
            base_config,
            fault_plan=plan,
            packet_timeout=base_config.packet_timeout or 800,
            max_retries=base_config.max_retries or 2,
            drain_cycles=base_config.drain_cycles or 2_000,
        )
        variants.append((fault_links, faulted))
    specs: List[PointSpec] = []
    index: List[Tuple[str, str, str, int]] = []
    for policy in policies:
        for algorithm in algorithms:
            for pattern in patterns:
                for num_faults, variant in variants:
                    config = variant.with_selection(
                        policy, selection_threshold
                    )
                    for load in loads:
                        specs.append(
                            PointSpec(
                                topology,
                                algorithm,
                                pattern,
                                config.with_load(load),
                            )
                        )
                        index.append((policy, algorithm, pattern, num_faults))
    if runner is not None:
        results = runner.run_points(specs, progress=progress)
    else:
        results = []
        for spec in specs:
            result = spec.execute()
            results.append(result)
            if progress is not None:
                progress(result)
    cells: Dict[Tuple[str, str, str, int], SelectionSeries] = {}
    for key, result in zip(index, results):
        series = cells.get(key)
        if series is None:
            policy, algorithm, pattern, num_faults = key
            series = cells[key] = SelectionSeries(
                policy=policy,
                algorithm=algorithm,
                pattern=pattern,
                num_faults=num_faults,
                loads=loads,
                results=[],
            )
        series.results.append(result)
    return SelectionComparison(
        topology=topology,
        loads=loads,
        seed=base_config.seed,
        fault_links=fault_links,
        selection_threshold=selection_threshold,
        series=list(cells.values()),
    )
