"""Executable channel numberings — the paper's deadlock-freedom proofs.

Dally and Seitz showed that a routing algorithm is deadlock free if the
network's channels can be numbered so that every packet is routed along
channels with strictly decreasing (or increasing) numbers.  Theorems 2, 3,
and 5 of the paper exhibit such numberings for west-first, north-last, and
negative-first.  This module constructs those numberings as concrete
``channel -> number`` maps so that the proofs become machine-checkable:
property tests walk every legal path and assert strict monotonicity.

The west-first scheme follows the recipe under Theorem 2 ("assign lower
numbers to westward channels the farther west they are, and still lower
numbers to eastward, northward, and southward channels the farther east
they are"), realised as two-digit numbers ``(a, b)`` in a base wide enough
for both digits, exactly as in Figures 6 and 7.  The negative-first scheme
is Theorem 5 verbatim.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from ..topology.base import Channel
from ..topology.mesh import Mesh, Mesh2D

ChannelNumbering = Dict[Channel, int]


def west_first_numbering(mesh: Mesh2D) -> ChannelNumbering:
    """Numbers that strictly *decrease* along every legal west-first path.

    Scheme (``m`` columns, ``n`` rows, digits combined as ``a * r + b``):

    * westward from ``(x, y)``: ``a = 2m - 2 + x`` — above every other
      channel, and lower the farther west;
    * eastward from ``(x, y)``: ``a = 2(m - 1 - x) - 1``;
    * north/south at column ``x``: ``a = 2(m - 1 - x)``, with ``b``
      decreasing along the direction of travel (``n - 1 - y`` going north,
      ``y`` going south).

    Each eastward hop therefore drops below everything in its source
    column, and the vertical channels of a column sit between the east
    channel entering it and the east channel leaving it.
    """
    m, n = mesh.m, mesh.n
    r = max(3 * m, n, 2)
    numbers: ChannelNumbering = {}
    for channel in mesh.channels():
        x, y = mesh.coords(channel.src)
        d = channel.direction
        if d.dim == 0 and d.is_negative:  # west
            a, b = 2 * m - 2 + x, 0
        elif d.dim == 0:  # east
            a, b = 2 * (m - 1 - x) - 1, 0
        elif d.is_positive:  # north
            a, b = 2 * (m - 1 - x), n - 1 - y
        else:  # south
            a, b = 2 * (m - 1 - x), y
        numbers[channel] = a * r + b
    return numbers


def north_last_numbering(mesh: Mesh2D) -> ChannelNumbering:
    """Numbers that strictly *decrease* along every legal north-last path.

    (Theorem 3 obtains this by rotating the west-first numbering; we state
    the rotated scheme directly.)  Phase-1 channels (west, south, east) are
    numbered by row so that each southward hop drops below everything in
    its source row; northward channels sit below all of phase 1 and
    decrease going north.
    """
    m, n = mesh.m, mesh.n
    r = max(m, n, 2)
    numbers: ChannelNumbering = {}
    for channel in mesh.channels():
        x, y = mesh.coords(channel.src)
        d = channel.direction
        if d.dim == 1 and d.is_positive:  # north: the last phase
            a, b = 0, n - 1 - y
        elif d.dim == 1:  # south
            a, b = 2 * y + 1, 0
        elif d.is_negative:  # west
            a, b = 2 * y + 2, x
        else:  # east
            a, b = 2 * y + 2, m - 1 - x
        numbers[channel] = a * r + b
    return numbers


def negative_first_numbering(mesh: Mesh) -> ChannelNumbering:
    """Theorem 5's numbering: strictly *increasing* along negative-first
    paths in any n-dimensional mesh.

    With ``K`` the sum of the ``k_i`` and ``X`` the coordinate sum of the
    node a channel leaves, positive channels are numbered ``K - n + X``
    and negative channels ``K - n - X``.
    """
    big_k = sum(mesh.dims)
    n = mesh.n_dims
    numbers: ChannelNumbering = {}
    for channel in mesh.channels():
        x_sum = sum(mesh.coords(channel.src))
        if channel.direction.is_positive:
            numbers[channel] = big_k - n + x_sum
        else:
            numbers[channel] = big_k - n - x_sum
    return numbers


def dimension_order_numbering(mesh: Mesh) -> ChannelNumbering:
    """Strictly decreasing numbering for dimension-order (xy / e-cube).

    Channels of dimension ``d`` occupy band ``n_dims - 1 - d``; within a
    band, numbers decrease along the direction of travel.
    """
    n_dims = mesh.n_dims
    r = max(max(mesh.dims), 2)
    numbers: ChannelNumbering = {}
    for channel in mesh.channels():
        coords = mesh.coords(channel.src)
        d = channel.direction
        a = n_dims - 1 - d.dim
        k = mesh.dims[d.dim]
        b = (k - 1 - coords[d.dim]) if d.is_positive else coords[d.dim]
        numbers[channel] = a * r + b
    return numbers


def is_strictly_monotone(
    numbering: ChannelNumbering,
    path: Sequence[Channel],
    decreasing: bool = True,
) -> bool:
    """Check Dally-Seitz monotonicity along one concrete channel path."""
    values = [numbering[c] for c in path]
    pairs = zip(values, values[1:])
    if decreasing:
        return all(a > b for a, b in pairs)
    return all(a < b for a, b in pairs)


def monotonicity_violations(
    numbering: ChannelNumbering,
    paths: Iterable[Sequence[Channel]],
    decreasing: bool = True,
) -> list:
    """All (path, position) pairs where a path breaks monotonicity."""
    violations = []
    for path in paths:
        values = [numbering[c] for c in path]
        for i, (a, b) in enumerate(zip(values, values[1:])):
            bad = (a <= b) if decreasing else (a >= b)
            if bad:
                violations.append((tuple(path), i))
    return violations


NUMBERING_BUILDERS: Dict[str, Callable] = {
    "west-first": west_first_numbering,
    "north-last": north_last_numbering,
    "negative-first": negative_first_numbering,
    "xy": dimension_order_numbering,
}
