"""The turn model itself (Section 2, Steps 1-6).

A :class:`TurnModel` is a set of *prohibited* 90-degree turns for an
n-dimensional mesh (optionally with 180-degree turn and wraparound rules).
It knows how to check the paper's structural claims about itself —
whether it breaks every abstract cycle (necessary for deadlock freedom),
and whether it prohibits exactly the minimum ``n(n-1)`` turns (maximal
adaptiveness, Theorems 1 and 6).

Factories build the prohibition sets behind each algorithm in the paper:

* :func:`TurnModel.xy` / dimension-order — prohibits every turn from a
  higher dimension to a lower one (half of all turns; Figure 3).
* :func:`TurnModel.west_first` — prohibits the two turns *to* ``-d0``
  (Figure 5a) and, in n dimensions, every turn from outside into a
  negative direction of dimensions ``0..n-2`` (all-but-one-negative-first).
* :func:`TurnModel.north_last` — prohibits the two turns *from* ``+d1``
  (Figure 9a) and, in n dimensions, every turn out of a positive direction
  of dimensions ``1..n-1`` except into that same set's ordering
  (all-but-one-positive-last).
* :func:`TurnModel.negative_first` — prohibits every turn from a positive
  direction to a negative direction (Figure 10a).

The concrete deadlock-freedom verdict for an arbitrary prohibition set is
delivered by the channel-dependency-graph check in
:mod:`repro.verification.cdg`; the turn model's structural checks here are
the necessary conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional

from ..topology.base import Direction, NEGATIVE, POSITIVE, all_directions
from .cycles import breaks_all_abstract_cycles, minimum_prohibited_turns, unbroken_cycles
from .turns import Turn, TurnKind, ninety_degree_turns


@dataclass(frozen=True)
class TurnModel:
    """A named set of prohibited turns for an n-dimensional mesh.

    ``allow_180`` lists the reversal turns incorporated by Step 6 (the
    west-first proof's Figure 8c admits one such turn for nonminimal
    routing); by default no reversals are allowed.
    """

    name: str
    n_dims: int
    prohibited: FrozenSet[Turn]
    allow_180: FrozenSet[Turn] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for turn in self.prohibited:
            if turn.kind is not TurnKind.NINETY:
                raise ValueError(
                    f"prohibition sets contain 90-degree turns only, got {turn!r}"
                )
            if max(turn.frm.dim, turn.to.dim) >= self.n_dims:
                raise ValueError(f"{turn!r} out of range for {self.n_dims} dims")
        for turn in self.allow_180:
            if turn.kind is not TurnKind.ONE_EIGHTY:
                raise ValueError(
                    f"allow_180 contains 180-degree turns only, got {turn!r}"
                )

    # -- queries -----------------------------------------------------------

    def is_allowed(self, frm: Direction, to: Direction) -> bool:
        """Whether a packet travelling in ``frm`` may next travel in ``to``."""
        turn = Turn(frm, to)
        kind = turn.kind
        if kind is TurnKind.STRAIGHT:
            return True
        if kind is TurnKind.ONE_EIGHTY:
            return turn in self.allow_180
        return turn not in self.prohibited

    def allowed_turns(self) -> List[Turn]:
        """The permitted 90-degree turns, in canonical order."""
        return [
            t for t in ninety_degree_turns(self.n_dims)
            if t not in self.prohibited
        ]

    def allowed_next_directions(self, frm: Optional[Direction]) -> List[Direction]:
        """Directions reachable from heading ``frm`` (all, when injecting)."""
        dirs = all_directions(self.n_dims)
        if frm is None:
            return dirs
        return [d for d in dirs if self.is_allowed(frm, d)]

    # -- structural checks (the paper's theorems) ---------------------------

    def breaks_all_cycles(self) -> bool:
        """Necessary condition: one prohibited turn per abstract cycle."""
        return breaks_all_abstract_cycles(self.n_dims, self.prohibited)

    def intact_cycles(self):
        return unbroken_cycles(self.n_dims, self.prohibited)

    def is_minimal_prohibition(self) -> bool:
        """Whether exactly ``n(n-1)`` turns are prohibited (Theorems 1/6)."""
        return len(self.prohibited) == minimum_prohibited_turns(self.n_dims)

    def prohibited_fraction(self) -> float:
        """Fraction of the ``4n(n-1)`` turns prohibited (1/4 when maximal)."""
        total = len(ninety_degree_turns(self.n_dims))
        return len(self.prohibited) / total

    # -- factories for the paper's prohibition sets --------------------------

    @staticmethod
    def from_prohibited(
        name: str,
        n_dims: int,
        prohibited: Iterable[Turn],
        allow_180: Iterable[Turn] = (),
    ) -> "TurnModel":
        return TurnModel(
            name=name,
            n_dims=n_dims,
            prohibited=frozenset(prohibited),
            allow_180=frozenset(allow_180),
        )

    @staticmethod
    def xy(n_dims: int = 2) -> "TurnModel":
        """Dimension-order routing: no turns from a higher to a lower dim.

        For 2D this is the xy algorithm's four-turn prohibition
        (Figure 3); for hypercubes it corresponds to e-cube.
        """
        prohibited = {
            t for t in ninety_degree_turns(n_dims) if t.frm.dim > t.to.dim
        }
        name = "xy" if n_dims == 2 else f"dimension-order-{n_dims}d"
        return TurnModel.from_prohibited(name, n_dims, prohibited)

    @staticmethod
    def west_first(n_dims: int = 2) -> "TurnModel":
        """West-first / all-but-one-negative-first prohibition set.

        Phase 1 travels the negative directions of dimensions ``0..n-2``;
        no turn may *enter* one of those directions, so every
        ``Turn(frm, to)`` with ``to`` negative and ``to.dim != n-1`` is
        prohibited — except turns from another phase-1 direction, which
        keep phase 1 adaptive.  For ``n == 2`` this is exactly Figure 5a:
        the two turns into west are prohibited.
        """
        first_phase = {
            Direction(dim, NEGATIVE) for dim in range(n_dims - 1)
        }
        prohibited = {
            t
            for t in ninety_degree_turns(n_dims)
            if t.to in first_phase and t.frm not in first_phase
        }
        name = "west-first" if n_dims == 2 else f"abonf-{n_dims}d"
        return TurnModel.from_prohibited(name, n_dims, prohibited)

    @staticmethod
    def north_last(n_dims: int = 2) -> "TurnModel":
        """North-last / all-but-one-positive-last prohibition set.

        Phase 2 travels the positive directions of dimensions ``1..n-1``;
        no turn may *leave* one of those directions back into phase 1, so
        every ``Turn(frm, to)`` with ``frm`` in phase 2 and ``to`` outside
        it is prohibited.  For ``n == 2`` this is exactly Figure 9a: the
        two turns out of north are prohibited.
        """
        last_phase = {
            Direction(dim, POSITIVE) for dim in range(1, n_dims)
        }
        prohibited = {
            t
            for t in ninety_degree_turns(n_dims)
            if t.frm in last_phase and t.to not in last_phase
        }
        name = "north-last" if n_dims == 2 else f"abopl-{n_dims}d"
        return TurnModel.from_prohibited(name, n_dims, prohibited)

    @staticmethod
    def negative_first(n_dims: int = 2) -> "TurnModel":
        """Negative-first prohibition set: no positive-to-negative turns
        (Figure 10a in 2D; Section 4.1 in n dimensions)."""
        prohibited = {
            t
            for t in ninety_degree_turns(n_dims)
            if t.frm.is_positive and t.to.is_negative
        }
        return TurnModel.from_prohibited(
            "negative-first" if n_dims == 2 else f"negative-first-{n_dims}d",
            n_dims,
            prohibited,
        )

    def __repr__(self) -> str:
        return (
            f"TurnModel({self.name!r}, n_dims={self.n_dims}, "
            f"prohibits {len(self.prohibited)}/{len(ninety_degree_turns(self.n_dims))} turns)"
        )


PAPER_TURN_MODELS_2D = (
    TurnModel.xy(),
    TurnModel.west_first(),
    TurnModel.north_last(),
    TurnModel.negative_first(),
)
