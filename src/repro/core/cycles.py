"""Abstract turn cycles (Step 3 of the turn model).

In each of the ``n(n-1)/2`` planes of an n-dimensional mesh the eight
90-degree turns form exactly two *abstract cycles* of four turns — one
turning consistently counterclockwise and one clockwise (Figure 2 of the
paper).  Breaking every abstract cycle by prohibiting at least one of its
four turns is *necessary* for deadlock freedom (Theorem 1); it is not by
itself *sufficient* (Figure 4), which is why
:mod:`repro.verification.cdg` provides the concrete-network check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from ..topology.base import Direction, NEGATIVE, POSITIVE
from .turns import Turn


@dataclass(frozen=True)
class AbstractCycle:
    """One of the two four-turn cycles in a plane of the mesh.

    ``turns`` are listed in travel order: taking them in sequence returns a
    packet to its original heading after a closed loop.
    """

    plane: Tuple[int, int]
    clockwise: bool
    turns: Tuple[Turn, Turn, Turn, Turn]

    def __contains__(self, turn: Turn) -> bool:
        return turn in self.turns

    def is_broken_by(self, prohibited: Iterable[Turn]) -> bool:
        """True when at least one of this cycle's turns is prohibited."""
        prohibited = set(prohibited)
        return any(t in prohibited for t in self.turns)


def plane_cycles(dim_a: int, dim_b: int) -> Tuple[AbstractCycle, AbstractCycle]:
    """The counterclockwise and clockwise abstract cycles of one plane.

    With dimension ``a`` drawn horizontally and ``b`` vertically, the
    counterclockwise cycle is ``+a -> +b -> -a -> -b -> +a`` (all left
    turns) and the clockwise cycle is ``+a -> -b -> -a -> +b -> +a`` (all
    right turns), matching Figure 2.
    """
    a, b = sorted((dim_a, dim_b))
    if a == b:
        raise ValueError("a plane needs two distinct dimensions")
    pa, na = Direction(a, POSITIVE), Direction(a, NEGATIVE)
    pb, nb = Direction(b, POSITIVE), Direction(b, NEGATIVE)
    ccw = AbstractCycle(
        plane=(a, b),
        clockwise=False,
        turns=(Turn(pa, pb), Turn(pb, na), Turn(na, nb), Turn(nb, pa)),
    )
    cw = AbstractCycle(
        plane=(a, b),
        clockwise=True,
        turns=(Turn(pa, nb), Turn(nb, na), Turn(na, pb), Turn(pb, pa)),
    )
    return ccw, cw


def abstract_cycles(n_dims: int) -> List[AbstractCycle]:
    """All ``n(n-1)`` abstract cycles of an n-dimensional mesh."""
    cycles: List[AbstractCycle] = []
    for a, b in itertools.combinations(range(n_dims), 2):
        cycles.extend(plane_cycles(a, b))
    return cycles


def count_abstract_cycles(n_dims: int) -> int:
    """Closed form ``n(n-1)`` from Section 2."""
    return n_dims * (n_dims - 1)


def unbroken_cycles(
    n_dims: int, prohibited: Iterable[Turn]
) -> List[AbstractCycle]:
    """Abstract cycles left intact by a prohibition set (empty is necessary
    for deadlock freedom)."""
    prohibited = set(prohibited)
    return [
        c for c in abstract_cycles(n_dims) if not c.is_broken_by(prohibited)
    ]


def breaks_all_abstract_cycles(
    n_dims: int, prohibited: Iterable[Turn]
) -> bool:
    """Necessary condition from Theorem 1: one prohibited turn per cycle."""
    return not unbroken_cycles(n_dims, prohibited)


def minimum_prohibited_turns(n_dims: int) -> int:
    """Theorem 1: at least ``n(n-1)`` turns (a quarter) must be prohibited."""
    return n_dims * (n_dims - 1)


def two_turn_prohibitions_2d() -> List[Set[Turn]]:
    """The 16 ways to prohibit one turn from each 2D abstract cycle.

    Section 3 states that 12 of these prevent deadlock and, of those 12,
    three are unique up to symmetry (west-first, north-last,
    negative-first).  The concrete deadlock check lives in
    :func:`repro.verification.cdg.turn_set_is_deadlock_free`.
    """
    ccw, cw = plane_cycles(0, 1)
    return [
        {t_ccw, t_cw}
        for t_ccw in ccw.turns
        for t_cw in cw.turns
    ]
