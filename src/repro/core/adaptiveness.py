"""Degree of adaptiveness (Sections 3.4 and 5).

``S_algorithm`` counts the shortest paths an algorithm permits between a
source and a destination.  The paper gives closed forms for the fully
adaptive count, the three 2D partially adaptive algorithms, and p-cube;
this module implements them together with exhaustive path counters that
cross-check the formulas on concrete topologies, and the Section 5
choice-count walkthrough for the binary 10-cube.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..topology.base import Direction, Topology
from ..topology.hypercube import Hypercube


def multinomial(parts: Iterable[int]) -> int:
    """Number of ways to interleave moves: ``(sum parts)! / prod(part!)``."""
    parts = [int(p) for p in parts]
    if any(p < 0 for p in parts):
        raise ValueError(f"parts must be non-negative, got {parts}")
    total = math.factorial(sum(parts))
    for p in parts:
        total //= math.factorial(p)
    return total


def s_fully_adaptive(topology: Topology, src: int, dst: int) -> int:
    """``S_f``: shortest paths available to a fully adaptive algorithm."""
    deltas = [
        abs(topology.offset(src, dst, dim)) for dim in range(topology.n_dims)
    ]
    return multinomial(deltas)


def s_west_first(topology: Topology, src: int, dst: int) -> int:
    """Section 3.4: fully adaptive when the destination is not to the west."""
    _require_2d(topology)
    if topology.offset(src, dst, 0) >= 0:
        return s_fully_adaptive(topology, src, dst)
    return 1


def s_north_last(topology: Topology, src: int, dst: int) -> int:
    """Section 3.4: fully adaptive when the destination is not to the north."""
    _require_2d(topology)
    if topology.offset(src, dst, 1) <= 0:
        return s_fully_adaptive(topology, src, dst)
    return 1


def s_negative_first(topology: Topology, src: int, dst: int) -> int:
    """Section 3.4: fully adaptive when both offsets share a sign."""
    _require_2d(topology)
    dx = topology.offset(src, dst, 0)
    dy = topology.offset(src, dst, 1)
    if (dx <= 0 and dy <= 0) or (dx >= 0 and dy >= 0):
        return s_fully_adaptive(topology, src, dst)
    return 1


def s_negative_first_ndim(topology: Topology, src: int, dst: int) -> int:
    """n-dimensional negative-first: the negative moves interleave freely,
    then the positive moves interleave freely."""
    neg = [
        -topology.offset(src, dst, dim)
        for dim in range(topology.n_dims)
        if topology.offset(src, dst, dim) < 0
    ]
    pos = [
        topology.offset(src, dst, dim)
        for dim in range(topology.n_dims)
        if topology.offset(src, dst, dim) > 0
    ]
    return multinomial(neg) * multinomial(pos)


def s_pcube(cube: Hypercube, src: int, dst: int) -> int:
    """Section 5: ``S_pcube = h1! * h0!`` with ``h1 = |S & ~D|``,
    ``h0 = |~S & D|``."""
    h1 = bin(src & ~dst & ((1 << cube.order) - 1)).count("1")
    h0 = bin(~src & dst & ((1 << cube.order) - 1)).count("1")
    return math.factorial(h1) * math.factorial(h0)


def s_ecube(topology: Topology, src: int, dst: int) -> int:
    """Any deterministic dimension-order algorithm offers exactly one path."""
    return 0 if src == dst else 1


def pcube_ratio(cube: Hypercube, src: int, dst: int) -> Fraction:
    """``S_pcube / S_f = 1 / C(h, h1)`` (Section 5)."""
    h = cube.hamming(src, dst)
    if h == 0:
        return Fraction(1)
    return Fraction(s_pcube(cube, src, dst), math.factorial(h))


def average_adaptiveness_ratio(
    topology: Topology,
    s_partial: Callable[[Topology, int, int], int],
) -> Fraction:
    """Mean of ``S_p / S_f`` over all ordered source-destination pairs.

    Section 3.4 claims this exceeds 1/2 for the three 2D algorithms; the
    generalisation in Section 4.1 claims it exceeds ``1 / 2**(n-1)``.
    """
    total = Fraction(0)
    pairs = 0
    for src in topology.nodes():
        for dst in topology.nodes():
            if src == dst:
                continue
            sf = s_fully_adaptive(topology, src, dst)
            total += Fraction(s_partial(topology, src, dst), sf)
            pairs += 1
    return total / pairs


def count_shortest_paths(
    candidates: Callable[[int, int], Sequence[Direction]],
    topology: Topology,
    src: int,
    dst: int,
) -> int:
    """Exhaustively count the minimal paths an algorithm permits.

    ``candidates(node, dst)`` must return the output directions the
    algorithm allows at ``node``; only distance-reducing moves are
    followed, so this counts shortest paths even for algorithms whose
    candidate sets include nonminimal options.
    """
    memo: Dict[int, int] = {}

    def paths_from(node: int) -> int:
        if node == dst:
            return 1
        if node in memo:
            return memo[node]
        here = topology.distance(node, dst)
        total = 0
        for direction in candidates(node, dst):
            nbr = topology.neighbor(node, direction)
            if nbr is None:
                continue
            if topology.distance(nbr, dst) == here - 1:
                total += paths_from(nbr)
        memo[node] = total
        return total

    return paths_from(src)


@dataclass(frozen=True)
class ChoiceRow:
    """One row of the Section 5 walkthrough table."""

    address: str
    minimal_choices: int
    nonminimal_extra: int
    dimension_taken: Optional[int]
    phase: str


def pcube_choice_table(
    cube: Hypercube, src: int, dst: int, dimensions_taken: Sequence[int]
) -> List[ChoiceRow]:
    """Reproduce the Section 5 table: per-hop routing choices under p-cube.

    At each node ``C`` on the way to ``D``, phase 1 offers the dimensions
    with ``c_i = 1, d_i = 0`` (plus, nonminimally, those with
    ``c_i = 1, d_i = 1``); once phase 1 is exhausted, phase 2 offers the
    dimensions with ``c_i = 0, d_i = 1``.
    """
    mask = (1 << cube.order) - 1
    rows: List[ChoiceRow] = []
    current = src
    steps: List[Optional[int]] = list(dimensions_taken) + [None]
    for dim in steps:
        phase1 = current & ~dst & mask
        phase2 = ~current & dst & mask
        ones_shared = current & dst & mask
        if current == dst:
            rows.append(ChoiceRow(cube.address_str(current), 0, 0, None, "destination"))
            break
        if phase1:
            minimal = bin(phase1).count("1")
            extra = bin(ones_shared).count("1")
            phase = "phase 1" if current != src else "source"
        else:
            minimal = bin(phase2).count("1")
            extra = 0
            phase = "phase 2"
        rows.append(
            ChoiceRow(cube.address_str(current), minimal, extra, dim, phase)
        )
        if dim is None:
            raise ValueError(
                f"path ended at {cube.address_str(current)} before reaching "
                f"the destination {cube.address_str(dst)}"
            )
        if not ((phase1 >> dim) & 1 or (phase2 >> dim) & 1 or (ones_shared >> dim) & 1):
            raise ValueError(
                f"dimension {dim} is not a legal p-cube move at "
                f"{cube.address_str(current)}"
            )
        current ^= 1 << dim
    return rows


def _require_2d(topology: Topology) -> None:
    if topology.n_dims != 2:
        raise ValueError(
            f"this formula is for 2D meshes; topology has {topology.n_dims} dims"
        )
