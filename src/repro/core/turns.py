"""Turns: the atomic objects the turn model reasons about.

A *turn* is a change of travel direction at a router.  In an n-dimensional
mesh each of the 2n directions offers ``2n - 2`` 90-degree turns (to any
direction in a different dimension), for ``4n(n-1)`` turns total
(Section 2).  180-degree turns (reversals) and 0-degree turns (transitions
between virtual channels in the same physical direction) are handled
separately by Steps 2 and 6 of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from ..topology.base import Direction, all_directions


class TurnKind(Enum):
    """Classification of a direction change (Step 2 of the model)."""

    STRAIGHT = "straight"  # no direction change (not a turn)
    NINETY = "90-degree"  # change to a different dimension
    ONE_EIGHTY = "180-degree"  # reversal within a dimension


@dataclass(frozen=True, order=True)
class Turn:
    """A transition from travelling in ``frm`` to travelling in ``to``."""

    frm: Direction
    to: Direction

    @property
    def kind(self) -> TurnKind:
        if self.frm == self.to:
            return TurnKind.STRAIGHT
        if self.frm.dim == self.to.dim:
            return TurnKind.ONE_EIGHTY
        return TurnKind.NINETY

    @property
    def plane(self) -> tuple:
        """The (lower dim, higher dim) plane this turn lies in."""
        return tuple(sorted((self.frm.dim, self.to.dim)))

    def __repr__(self) -> str:
        return f"Turn({self.frm!r}->{self.to!r})"


def ninety_degree_turns(n_dims: int) -> List[Turn]:
    """All ``4n(n-1)`` 90-degree turns of an n-dimensional mesh."""
    dirs = all_directions(n_dims)
    return [
        Turn(frm, to)
        for frm in dirs
        for to in dirs
        if frm.dim != to.dim
    ]


def one_eighty_degree_turns(n_dims: int) -> List[Turn]:
    """All ``2n`` reversal turns of an n-dimensional mesh."""
    return [Turn(d, d.opposite) for d in all_directions(n_dims)]


def turns_in_plane(n_dims: int, dim_a: int, dim_b: int) -> List[Turn]:
    """The eight 90-degree turns within one plane of the mesh."""
    if dim_a == dim_b:
        raise ValueError("a plane needs two distinct dimensions")
    plane = tuple(sorted((dim_a, dim_b)))
    return [t for t in ninety_degree_turns(n_dims) if t.plane == plane]


def count_ninety_degree_turns(n_dims: int) -> int:
    """Closed form ``4n(n-1)`` from Section 2."""
    return 4 * n_dims * (n_dims - 1)
