"""Core abstractions shared by every network topology.

The turn model reasons about *directions* (a signed dimension, e.g. ``-x``)
and *channels* (unidirectional links between neighbouring routers).  This
module defines both, plus the :class:`Topology` base class that meshes,
tori (k-ary n-cubes), and hypercubes implement.

Nodes are identified by dense integer ids.  A topology provides the
bijection between ids and coordinate tuples, neighbour lookup per
direction, and enumeration of all channels.  Everything downstream — the
turn model, the routing algorithms, the channel-dependency-graph verifier,
and the wormhole simulator — is written against this interface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

NEGATIVE = -1
POSITIVE = +1


@dataclass(frozen=True, order=True)
class Direction:
    """A signed dimension: the direction a channel routes packets.

    ``Direction(0, -1)`` is ``-x`` (*west* in the paper's 2D terminology),
    ``Direction(1, +1)`` is ``+y`` (*north*), and so on.  Directions are
    ordered by ``(dim, sign)`` so that sorting a set of candidate output
    directions yields the paper's *xy* output-selection order (lowest
    dimension first).
    """

    dim: int
    sign: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise ValueError(f"dimension must be non-negative, got {self.dim}")
        if self.sign not in (NEGATIVE, POSITIVE):
            raise ValueError(f"sign must be -1 or +1, got {self.sign}")

    @property
    def opposite(self) -> "Direction":
        """The 180-degree reverse of this direction."""
        return Direction(self.dim, -self.sign)

    @property
    def is_negative(self) -> bool:
        return self.sign == NEGATIVE

    @property
    def is_positive(self) -> bool:
        return self.sign == POSITIVE

    def __repr__(self) -> str:
        return f"{'+' if self.sign > 0 else '-'}d{self.dim}"


# The paper's 2D compass names (dimension 0 is x, dimension 1 is y).
WEST = Direction(0, NEGATIVE)
EAST = Direction(0, POSITIVE)
SOUTH = Direction(1, NEGATIVE)
NORTH = Direction(1, POSITIVE)

COMPASS_NAMES: Dict[Direction, str] = {
    WEST: "west",
    EAST: "east",
    SOUTH: "south",
    NORTH: "north",
}


def all_directions(n_dims: int) -> List[Direction]:
    """All 2n directions of an n-dimensional mesh/torus, in (dim, sign) order."""
    return [
        Direction(dim, sign)
        for dim in range(n_dims)
        for sign in (NEGATIVE, POSITIVE)
    ]


@dataclass(frozen=True, order=True)
class Channel:
    """A unidirectional physical channel between two neighbouring routers.

    ``wraparound`` marks torus channels that cross the edge of the radix
    (the turn model's Step 1 puts those in a separate set, incorporated in
    Step 5).
    """

    src: int
    dst: int
    direction: Direction
    wraparound: bool = False

    def __repr__(self) -> str:
        wrap = "~" if self.wraparound else ""
        return f"Ch({self.src}{wrap}->{self.dst} {self.direction!r})"


class Topology:
    """Base class for direct-network topologies.

    Subclasses provide the shape (``dims``), neighbour arithmetic, and
    whether moves wrap around.  Node ids are the mixed-radix encoding of
    coordinates with dimension 0 varying fastest, so a 2D mesh node
    ``(x, y)`` has id ``x + y * k0``.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims:
            raise ValueError("topology needs at least one dimension")
        if any(k < 2 for k in dims):
            raise ValueError(f"every dimension must have at least 2 nodes, got {dims}")
        self._dims = dims
        self._strides = tuple(
            int(_product(dims[:i])) for i in range(len(dims))
        )
        self._num_nodes = int(_product(dims))
        self._channels: Optional[Tuple[Channel, ...]] = None
        self._channel_by_src_dir: Optional[Dict[Tuple[int, Direction], Channel]] = None

    # -- shape ---------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, ...]:
        """The radix of each dimension, ``(k0, k1, ..., k_{n-1})``."""
        return self._dims

    @property
    def n_dims(self) -> int:
        return len(self._dims)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def directions(self) -> List[Direction]:
        """All directions a packet can travel in this topology."""
        return all_directions(self.n_dims)

    # -- coordinates -----------------------------------------------------

    def coords(self, node: int) -> Tuple[int, ...]:
        """Coordinate tuple of a node id."""
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        out = []
        for k in self._dims:
            out.append(node % k)
            node //= k
        return tuple(out)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node id of a coordinate tuple."""
        if len(coords) != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} coordinates, got {len(coords)}"
            )
        node = 0
        for c, k, stride in zip(coords, self._dims, self._strides):
            if not 0 <= c < k:
                raise ValueError(f"coordinate {c} out of range [0, {k})")
            node += c * stride
        return node

    def nodes(self) -> range:
        return range(self._num_nodes)

    def all_coords(self) -> Iterator[Tuple[int, ...]]:
        """Iterate the coordinates of every node in id order."""
        for node in self.nodes():
            yield self.coords(node)

    # -- neighbours and channels ------------------------------------------

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbour of ``node`` in ``direction``, or None at a mesh edge."""
        raise NotImplementedError

    def is_wraparound(self, node: int, direction: Direction) -> bool:
        """Whether moving from ``node`` in ``direction`` crosses the edge."""
        coord = self.coords(node)[direction.dim]
        k = self._dims[direction.dim]
        return (coord == 0 and direction.is_negative) or (
            coord == k - 1 and direction.is_positive
        )

    def channels(self) -> Tuple[Channel, ...]:
        """Every unidirectional channel, cached after the first call."""
        if self._channels is None:
            chans = []
            for node in self.nodes():
                for direction in self.directions():
                    nbr = self.neighbor(node, direction)
                    if nbr is not None:
                        chans.append(
                            Channel(
                                src=node,
                                dst=nbr,
                                direction=direction,
                                wraparound=self.is_wraparound(node, direction),
                            )
                        )
            self._channels = tuple(chans)
        return self._channels

    def channel(self, src: int, direction: Direction) -> Optional[Channel]:
        """The channel leaving ``src`` in ``direction``, or None."""
        if self._channel_by_src_dir is None:
            self._channel_by_src_dir = {
                (c.src, c.direction): c for c in self.channels()
            }
        return self._channel_by_src_dir.get((src, direction))

    def num_channels(self) -> int:
        return len(self.channels())

    # -- distances ---------------------------------------------------------

    def offset(self, src: int, dst: int, dim: int) -> int:
        """Signed coordinate difference ``dst - src`` along ``dim``.

        Subclasses with wraparound override this to return the shorter
        (possibly wrapping) signed offset.
        """
        return self.coords(dst)[dim] - self.coords(src)[dim]

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        return sum(
            abs(self.offset(src, dst, dim)) for dim in range(self.n_dims)
        )

    def productive_directions(self, src: int, dst: int) -> List[Direction]:
        """Directions that reduce the distance from ``src`` to ``dst``."""
        out = []
        for dim in range(self.n_dims):
            delta = self.offset(src, dst, dim)
            if delta < 0:
                out.append(Direction(dim, NEGATIVE))
            elif delta > 0:
                out.append(Direction(dim, POSITIVE))
        return out

    def __repr__(self) -> str:
        shape = "x".join(str(k) for k in self._dims)
        return f"{type(self).__name__}({shape})"


def _product(values: Sequence[int]) -> int:
    result = 1
    for v in values:
        result *= v
    return result


def pairwise_neighbors(topology: Topology) -> Iterator[Tuple[int, int]]:
    """Yield each (src, dst) neighbour pair once per channel."""
    for channel in topology.channels():
        yield channel.src, channel.dst


def enumerate_node_pairs(topology: Topology) -> Iterator[Tuple[int, int]]:
    """All ordered (src, dst) pairs with src != dst."""
    for src, dst in itertools.permutations(topology.nodes(), 2):
        yield src, dst
