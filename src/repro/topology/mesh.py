"""n-dimensional mesh topology.

An n-dimensional mesh has ``k0 x k1 x ... x k_{n-1}`` nodes.  Two nodes
are neighbours when their coordinates agree in every dimension except one,
where they differ by exactly 1 (no wraparound).  This is the topology of
the Intel Touchstone DELTA / Paragon (2D) and the MIT J-machine (3D) that
the paper cites, and the substrate of Sections 2-4.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Direction, Topology


class Mesh(Topology):
    """An n-dimensional mesh without wraparound channels."""

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if direction.dim >= self.n_dims:
            raise ValueError(
                f"direction {direction!r} out of range for {self.n_dims}D mesh"
            )
        coord = self.coords(node)[direction.dim]
        k = self.dims[direction.dim]
        new = coord + direction.sign
        if not 0 <= new < k:
            return None
        return node + direction.sign * self._strides[direction.dim]

    def is_wraparound(self, node: int, direction: Direction) -> bool:
        return False


class Mesh2D(Mesh):
    """A 2D mesh with the paper's ``m x n`` naming (m columns, n rows).

    Dimension 0 is *x* (west/east), dimension 1 is *y* (south/north); node
    ``(x, y)`` has id ``x + y * m``.
    """

    def __init__(self, m: int, n: Optional[int] = None) -> None:
        if n is None:
            n = m
        super().__init__((m, n))

    @property
    def m(self) -> int:
        """Width: number of columns (the x dimension length)."""
        return self.dims[0]

    @property
    def n(self) -> int:
        """Height: number of rows (the y dimension length)."""
        return self.dims[1]

    def xy(self, node: int) -> tuple:
        """(x, y) coordinates of a node."""
        return self.coords(node)

    def node_xy(self, x: int, y: int) -> int:
        return self.node_at((x, y))


def mesh(dims: Sequence[int]) -> Mesh:
    """Build a mesh; returns the 2D-specialised class when ``len(dims) == 2``."""
    dims = tuple(dims)
    if len(dims) == 2:
        return Mesh2D(dims[0], dims[1])
    return Mesh(dims)
