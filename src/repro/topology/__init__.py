"""Network topologies: n-dimensional meshes, k-ary n-cubes, hypercubes."""

from .base import (
    COMPASS_NAMES,
    Channel,
    Direction,
    EAST,
    NEGATIVE,
    NORTH,
    POSITIVE,
    SOUTH,
    Topology,
    WEST,
    all_directions,
    enumerate_node_pairs,
)
from .hypercube import Hypercube
from .mesh import Mesh, Mesh2D, mesh
from .torus import KAryNCube

__all__ = [
    "COMPASS_NAMES",
    "Channel",
    "Direction",
    "EAST",
    "Hypercube",
    "KAryNCube",
    "Mesh",
    "Mesh2D",
    "NEGATIVE",
    "NORTH",
    "POSITIVE",
    "SOUTH",
    "Topology",
    "WEST",
    "all_directions",
    "enumerate_node_pairs",
    "mesh",
]
