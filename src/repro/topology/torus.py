"""k-ary n-cube (torus) topology.

A k-ary n-cube is an n-dimensional mesh in which every ``k_i = k`` and
neighbour arithmetic is modular, which adds wraparound channels and makes
the network symmetric (Section 1 of the paper).  The turn model's Step 1
places wraparound channels in their own set; Section 4.2 extends the mesh
routing algorithms to use them.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Channel, Direction, Topology


class KAryNCube(Topology):
    """A k-ary n-cube: n dimensions of radix k with wraparound channels."""

    def __init__(self, k: int, n: int) -> None:
        if n < 1:
            raise ValueError(f"need at least one dimension, got n={n}")
        if k < 2:
            raise ValueError(f"radix must be at least 2, got k={k}")
        super().__init__((k,) * n)
        self._k = k

    @property
    def k(self) -> int:
        """The radix (every dimension has length k)."""
        return self._k

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if direction.dim >= self.n_dims:
            raise ValueError(
                f"direction {direction!r} out of range for {self.n_dims} dims"
            )
        # Radix 2 has a single neighbour per dimension; the -1 and +1 moves
        # coincide, and we expose that one channel only as the move away
        # from the current coordinate (0 -> 1 is positive, 1 -> 0 negative),
        # matching the hypercube's n-neighbour degree from the paper.
        coord = self.coords(node)[direction.dim]
        k = self._k
        if k == 2:
            new = 1 - coord
            expected_sign = +1 if coord == 0 else -1
            if direction.sign != expected_sign:
                return None
        else:
            new = (coord + direction.sign) % k
        return node + (new - coord) * self._strides[direction.dim]

    def is_wraparound(self, node: int, direction: Direction) -> bool:
        if self._k == 2:
            return False
        return super().is_wraparound(node, direction)

    def offset(self, src: int, dst: int, dim: int) -> int:
        """Shortest signed offset along ``dim``, using wraparound when shorter.

        Ties (``|delta| == k/2`` for even k) resolve to the positive
        direction, so minimal routing is well defined.
        """
        k = self._k
        if k == 2:
            # Radix 2 has no distinct wraparound; the plain difference is
            # the direction of the single channel (see ``neighbor``).
            return self.coords(dst)[dim] - self.coords(src)[dim]
        delta = (self.coords(dst)[dim] - self.coords(src)[dim]) % k
        if 2 * delta > k:
            delta -= k
        return delta

    def mesh_channels(self) -> List[Channel]:
        """The channels that do not wrap around the radix."""
        return [c for c in self.channels() if not c.wraparound]

    def wraparound_channels(self) -> List[Channel]:
        """The channels that cross the edge of the radix (Step 1's extra set)."""
        return [c for c in self.channels() if c.wraparound]
