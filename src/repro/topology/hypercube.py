"""Binary hypercube topology.

A hypercube is simultaneously an n-dimensional mesh with every ``k_i = 2``
and a 2-ary n-cube (Section 1 of the paper).  Node ids coincide with the
binary addresses the paper uses in Section 5: bit ``i`` of the id is
coordinate ``x_i``.  Crossing dimension ``i`` flips bit ``i``; moving
0 -> 1 is the positive direction and 1 -> 0 the negative direction, which
is what makes the *p-cube* algorithm the hypercube special case of
*negative-first*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .base import Direction, NEGATIVE, POSITIVE, Topology


class Hypercube(Topology):
    """A binary n-cube with ``2**n`` nodes."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"need at least one dimension, got n={n}")
        super().__init__((2,) * n)
        self._n = n

    @property
    def order(self) -> int:
        """The number of dimensions n (the cube has 2**n nodes)."""
        return self._n

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if direction.dim >= self._n:
            raise ValueError(
                f"direction {direction!r} out of range for a {self._n}-cube"
            )
        bit = (node >> direction.dim) & 1
        # Each dimension offers one channel per node: flipping the bit.
        # That flip is the positive direction from a 0 bit and the negative
        # direction from a 1 bit; the other sign does not exist here.
        expected_sign = POSITIVE if bit == 0 else NEGATIVE
        if direction.sign != expected_sign:
            return None
        return node ^ (1 << direction.dim)

    def is_wraparound(self, node: int, direction: Direction) -> bool:
        return False

    # -- binary-address helpers (Section 5 notation) -----------------------

    def bits(self, node: int) -> Tuple[int, ...]:
        """Bits ``(x_0, x_1, ..., x_{n-1})`` of a node address."""
        return tuple((node >> i) & 1 for i in range(self._n))

    def node_from_bits(self, bits) -> int:
        bits = tuple(bits)
        if len(bits) != self._n:
            raise ValueError(f"expected {self._n} bits, got {len(bits)}")
        node = 0
        for i, b in enumerate(bits):
            if b not in (0, 1):
                raise ValueError(f"bit {i} must be 0 or 1, got {b}")
            node |= b << i
        return node

    def hamming(self, a: int, b: int) -> int:
        """Hamming distance |a XOR b| — the minimal hop count."""
        return bin(a ^ b).count("1")

    def distance(self, src: int, dst: int) -> int:
        return self.hamming(src, dst)

    def differing_dimensions(self, a: int, b: int) -> List[int]:
        """Dimensions in which two addresses differ."""
        diff = a ^ b
        return [i for i in range(self._n) if (diff >> i) & 1]

    def address_str(self, node: int) -> str:
        """The paper's address notation: bit n-1 first, bit 0 last."""
        return format(node, f"0{self._n}b")

    def node_from_address_str(self, address: str) -> int:
        """Parse the paper's address notation (e.g. ``"1011010100"``)."""
        if len(address) != self._n or set(address) - {"0", "1"}:
            raise ValueError(
                f"expected a {self._n}-character binary string, got {address!r}"
            )
        return int(address, 2)
