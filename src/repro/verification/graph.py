"""A minimal directed-graph toolkit for the deadlock verifier.

Only what the channel-dependency-graph analysis needs: adjacency storage,
cycle detection with a concrete cycle witness, and Tarjan's strongly
connected components (used to report *all* cyclic channel groups, not just
the first cycle found).  Self-contained so the core library carries no
third-party dependencies.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

Node = TypeVar("Node", bound=Hashable)


class DiGraph(Generic[Node]):
    """A simple directed graph over hashable nodes."""

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}

    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, set())

    def add_edge(self, src: Node, dst: Node) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def successors(self, node: Node) -> Set[Node]:
        return self._succ.get(node, set())

    def num_nodes(self) -> int:
        return len(self._succ)

    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, ())

    # -- cycle analysis -----------------------------------------------------

    def find_cycle(self) -> Optional[List[Node]]:
        """Return one directed cycle as a node list, or None if acyclic.

        Iterative three-colour DFS; the returned list ``[v0, v1, ..., vk]``
        satisfies ``vk -> v0`` and ``vi -> vi+1`` for each i.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        colour: Dict[Node, int] = {n: WHITE for n in self._succ}
        parent: Dict[Node, Optional[Node]] = {}
        for root in self._succ:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterable[Node]]] = [(root, iter(self._succ[root]))]
            colour[root] = GRAY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(self._succ[nxt])))
                        advanced = True
                        break
                    if colour[nxt] == GRAY:
                        # Back edge node -> nxt closes a cycle.
                        cycle = [node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def strongly_connected_components(self) -> List[List[Node]]:
        """Tarjan's algorithm (iterative); returns every SCC."""
        index: Dict[Node, int] = {}
        lowlink: Dict[Node, int] = {}
        on_stack: Set[Node] = set()
        stack: List[Node] = []
        components: List[List[Node]] = []
        counter = [0]

        for root in self._succ:
            if root in index:
                continue
            work: List[Tuple[Node, Iterable[Node]]] = [(root, iter(self._succ[root]))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(self._succ[nxt])))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    lowlink[parent_node] = min(lowlink[parent_node], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def cyclic_components(self) -> List[List[Node]]:
        """SCCs that contain a cycle (size > 1, or a self-loop)."""
        out = []
        for comp in self.strongly_connected_components():
            if len(comp) > 1 or self.has_edge(comp[0], comp[0]):
                out.append(comp)
        return out
