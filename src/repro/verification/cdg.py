"""Channel dependency graphs — the Dally–Seitz deadlock-freedom check.

A wormhole routing algorithm is deadlock free if its *channel dependency
graph* (CDG) is acyclic: nodes are the network's channels, and an edge
``c1 -> c2`` records that some packet can hold ``c1`` while waiting for
``c2``.  (Acyclicity is sufficient for adaptive routing; for the
relations built here — which include every choice the algorithm could
make — a cycle also pinpoints a genuinely reachable circular wait.)

Two relations are supported:

* :func:`algorithm_cdg` — the dependencies of a concrete routing
  *function* (destination-dependent), used to verify every algorithm in
  the paper on real topologies;
* :func:`turn_set_cdg` — the dependencies allowed by a bare prohibition
  set (any packet may take any allowed turn, regardless of destination),
  used for Section 3's claim that exactly 12 of the 16 two-turn
  prohibitions prevent deadlock, and for the Figure 4 counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.turn_model import TurnModel
from ..topology.base import Channel, Topology
from .graph import DiGraph


@dataclass
class DeadlockVerdict:
    """Result of a CDG check, with a witness cycle when one exists."""

    deadlock_free: bool
    cycle: Optional[List[Channel]]
    num_channels: int
    num_dependencies: int

    def __bool__(self) -> bool:
        return self.deadlock_free


def algorithm_cdg(algorithm) -> DiGraph:
    """CDG of a routing function over every destination.

    For each destination ``t`` and each channel ``c1 = (u -> v)`` the
    algorithm could output at ``u`` for ``t``, add ``c1 -> c2`` for every
    channel ``c2`` the algorithm may request next at ``v``.  Escape
    (nonminimal) candidates are included, so nonminimal variants are
    verified against their full behaviour.
    """
    topology: Topology = algorithm.topology
    graph: DiGraph = DiGraph()
    for channel in topology.channels():
        graph.add_node(channel)

    def outputs(node: int, dest: int, in_direction) -> List[Channel]:
        dirs = list(algorithm.candidates(node, dest, in_direction))
        dirs += list(algorithm.escape_candidates(node, dest, in_direction))
        found = []
        for direction in dirs:
            ch = topology.channel(node, direction)
            if ch is not None:
                found.append(ch)
        return found

    for dest in topology.nodes():
        # usable[c] - could any packet headed for `dest` occupy channel c?
        # Seed with every injection-reachable first hop, then close under
        # the routing relation, adding dependency edges as we go.
        frontier: List[Channel] = []
        seen = set()
        for src in topology.nodes():
            if src == dest:
                continue
            for ch in outputs(src, dest, None):
                if ch not in seen:
                    seen.add(ch)
                    frontier.append(ch)
        while frontier:
            c1 = frontier.pop()
            if c1.dst == dest:
                continue
            for c2 in outputs(c1.dst, dest, c1.direction):
                graph.add_edge(c1, c2)
                if c2 not in seen:
                    seen.add(c2)
                    frontier.append(c2)
    return graph


def vc_algorithm_cdg(algorithm, num_vc: int) -> DiGraph:
    """CDG over *virtual* channels — nodes are ``(channel, vc)`` pairs.

    Verifies VC-disciplined algorithms (dateline torus routing,
    escape-VC adaptive routing) the same way :func:`algorithm_cdg`
    verifies plain ones: seed every injection-reachable first hop, close
    under the ``vc_candidates`` relation, and check acyclicity.
    """
    topology: Topology = algorithm.topology
    graph: DiGraph = DiGraph()

    def outputs(node: int, dest: int, in_direction, in_vc) -> List[tuple]:
        pairs = algorithm.vc_candidates(node, dest, in_direction, in_vc, num_vc)
        found = []
        for direction, vc in pairs:
            ch = topology.channel(node, direction)
            if ch is not None and 0 <= vc < num_vc:
                found.append((ch, vc))
        return found

    for dest in topology.nodes():
        frontier: List[tuple] = []
        seen = set()
        for src in topology.nodes():
            if src == dest:
                continue
            for state in outputs(src, dest, None, None):
                if state not in seen:
                    seen.add(state)
                    frontier.append(state)
        while frontier:
            c1, vc1 = frontier.pop()
            if c1.dst == dest:
                continue
            for c2, vc2 in outputs(c1.dst, dest, c1.direction, vc1):
                graph.add_edge((c1, vc1), (c2, vc2))
                if (c2, vc2) not in seen:
                    seen.add((c2, vc2))
                    frontier.append((c2, vc2))
    return graph


def verify_vc_algorithm(algorithm, num_vc: int) -> DeadlockVerdict:
    """Deadlock-freedom verdict for a VC-disciplined routing algorithm."""
    graph = vc_algorithm_cdg(algorithm, num_vc)
    cycle = graph.find_cycle()
    return DeadlockVerdict(
        deadlock_free=cycle is None,
        cycle=cycle,
        num_channels=graph.num_nodes(),
        num_dependencies=graph.num_edges(),
    )


def verify_escape_discipline(
    algorithm, num_vc: int, escape_vc: int = 0
) -> DeadlockVerdict:
    """Duato-style deadlock-freedom check for escape-channel routing.

    CDG acyclicity is *sufficient* for deadlock freedom, not necessary:
    a fully adaptive algorithm whose adaptive virtual channels form
    cycles is still deadlock free when (1) its *escape* subnetwork's
    dependencies are acyclic and packets on it stay on it, and (2) every
    reachable waiting state offers at least one escape candidate.  This
    function checks both conditions over all destinations.
    """
    topology: Topology = algorithm.topology
    escape_graph: DiGraph = DiGraph()
    always_escapable = True

    def outputs(node, dest, in_direction, in_vc):
        return algorithm.vc_candidates(node, dest, in_direction, in_vc, num_vc)

    for dest in topology.nodes():
        frontier = []
        seen = set()
        for src in topology.nodes():
            if src == dest:
                continue
            pairs = outputs(src, dest, None, None)
            if not any(vc == escape_vc for _, vc in pairs):
                always_escapable = False
            for direction, vc in pairs:
                ch = topology.channel(src, direction)
                if ch is not None and (ch, vc) not in seen:
                    seen.add((ch, vc))
                    frontier.append((ch, vc))
        while frontier:
            c1, vc1 = frontier.pop()
            if c1.dst == dest:
                continue
            pairs = outputs(c1.dst, dest, c1.direction, vc1)
            if not any(vc == escape_vc for _, vc in pairs):
                always_escapable = False
            for direction, vc2 in pairs:
                c2 = topology.channel(c1.dst, direction)
                if c2 is None:
                    continue
                if vc1 == escape_vc and vc2 == escape_vc:
                    escape_graph.add_edge((c1, vc1), (c2, vc2))
                if (c2, vc2) not in seen:
                    seen.add((c2, vc2))
                    frontier.append((c2, vc2))

    cycle = escape_graph.find_cycle()
    return DeadlockVerdict(
        deadlock_free=always_escapable and cycle is None,
        cycle=cycle,
        num_channels=escape_graph.num_nodes(),
        num_dependencies=escape_graph.num_edges(),
    )


def turn_set_cdg(topology: Topology, model: TurnModel) -> DiGraph:
    """CDG of everything a prohibition set permits (destination-blind).

    ``c1 -> c2`` whenever the turn from ``c1``'s direction to ``c2``'s is
    allowed (straight moves always; reversals only if listed in
    ``allow_180``).  Acyclicity of this graph certifies that *every*
    routing algorithm confined to the allowed turns — minimal or not — is
    deadlock free.
    """
    graph: DiGraph = DiGraph()
    for channel in topology.channels():
        graph.add_node(channel)
    for c1 in topology.channels():
        for direction in topology.directions():
            if not model.is_allowed(c1.direction, direction):
                continue
            c2 = topology.channel(c1.dst, direction)
            if c2 is not None:
                graph.add_edge(c1, c2)
    return graph


def _verdict(graph: DiGraph) -> DeadlockVerdict:
    cycle = graph.find_cycle()
    return DeadlockVerdict(
        deadlock_free=cycle is None,
        cycle=cycle,
        num_channels=graph.num_nodes(),
        num_dependencies=graph.num_edges(),
    )


def verify_algorithm(algorithm) -> DeadlockVerdict:
    """Deadlock-freedom verdict for a concrete routing algorithm."""
    return _verdict(algorithm_cdg(algorithm))


def verify_turn_set(topology: Topology, model: TurnModel) -> DeadlockVerdict:
    """Deadlock-freedom verdict for a bare prohibition set on a topology."""
    return _verdict(turn_set_cdg(topology, model))


def turn_set_is_deadlock_free(topology: Topology, model: TurnModel) -> bool:
    return verify_turn_set(topology, model).deadlock_free
