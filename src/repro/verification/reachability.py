"""Connectivity checks: does an algorithm leave a path between every pair?

Step 4 of the turn model warns that prohibiting turns must still "leave a
path between every pair of nodes"; these helpers verify that for concrete
algorithms by walking the routing relation, and report the worst-case path
inflation of nonminimal algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..topology.base import Topology
from ..routing.base import RoutingAlgorithm


@dataclass
class ConnectivityReport:
    """Summary of an all-pairs delivery check."""

    total_pairs: int
    delivered_pairs: int
    stranded: List[Tuple[int, int]]
    max_hops_seen: int
    minimal_everywhere: bool

    @property
    def fully_connected(self) -> bool:
        return not self.stranded


def check_connectivity(
    algorithm: RoutingAlgorithm,
    max_hops: Optional[int] = None,
    pairs: Optional[List[Tuple[int, int]]] = None,
) -> ConnectivityReport:
    """Walk first-candidate routes for every (or the given) node pairs.

    Deterministically follows the first candidate at each hop — sufficient
    to certify that *some* legal path exists per pair.  Also records
    whether every walk was exactly minimal in length.
    """
    topology: Topology = algorithm.topology
    if max_hops is None:
        max_hops = 4 * sum(topology.dims) + 16
    if pairs is None:
        pairs = [
            (s, d)
            for s in topology.nodes()
            for d in topology.nodes()
            if s != d
        ]
    stranded: List[Tuple[int, int]] = []
    delivered = 0
    max_seen = 0
    minimal_everywhere = True
    for src, dst in pairs:
        current = src
        in_direction = None
        hops = 0
        ok = False
        while hops <= max_hops:
            if current == dst:
                ok = True
                break
            options = algorithm.candidates(current, dst, in_direction)
            if not options:
                break
            direction = options[0]
            nxt = topology.neighbor(current, direction)
            if nxt is None:
                break
            in_direction = direction
            current = nxt
            hops += 1
        if ok:
            delivered += 1
            max_seen = max(max_seen, hops)
            if hops != topology.distance(src, dst):
                minimal_everywhere = False
        else:
            stranded.append((src, dst))
    return ConnectivityReport(
        total_pairs=len(pairs),
        delivered_pairs=delivered,
        stranded=stranded,
        max_hops_seen=max_seen,
        minimal_everywhere=minimal_everywhere,
    )
