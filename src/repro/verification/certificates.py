"""Constructive deadlock-freedom certificates.

Theorems 2, 3, and 5 prove deadlock freedom by exhibiting a channel
numbering that every legal path traverses in strictly monotone order.
This module *generates* such numberings automatically for any verified
algorithm: a topological sort of the (acyclic) channel dependency graph
is exactly a valid Dally–Seitz numbering, with packets crossing channels
in strictly increasing topological rank.

So for every routing function in the library — including user-defined
turn models — we can produce the same kind of certificate the paper
hand-constructs, and re-validate it independently of the CDG check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..topology.base import Channel
from .cdg import algorithm_cdg
from .graph import DiGraph


@dataclass
class NumberingCertificate:
    """A channel numbering witnessing deadlock freedom.

    ``numbers`` maps every channel to a rank such that whenever the
    algorithm can hold channel ``a`` while requesting channel ``b``,
    ``numbers[a] < numbers[b]`` (strictly increasing order, the form of
    Theorem 5's proof).
    """

    algorithm: str
    numbers: Dict[Channel, int]

    def check_dependency(self, held: Channel, requested: Channel) -> bool:
        return self.numbers[held] < self.numbers[requested]

    def check_path(self, channels: Sequence[Channel]) -> bool:
        """Strictly increasing along a concrete channel path."""
        values = [self.numbers[c] for c in channels]
        return all(a < b for a, b in zip(values, values[1:]))


def topological_numbering(graph: DiGraph) -> Optional[Dict]:
    """Ranks increasing along every edge, or None if the graph is cyclic.

    Kahn's algorithm; ties share structure but every edge still gets a
    strict increase because ranks follow removal order.
    """
    indegree: Dict = {node: 0 for node in graph.nodes()}
    for node in graph.nodes():
        for succ in graph.successors(node):
            indegree[succ] += 1
    ready: List = sorted(
        (node for node, deg in indegree.items() if deg == 0),
        key=repr,
    )
    numbers: Dict = {}
    rank = 0
    while ready:
        node = ready.pop()
        numbers[node] = rank
        rank += 1
        newly_ready = []
        for succ in graph.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                newly_ready.append(succ)
        ready.extend(sorted(newly_ready, key=repr))
    if len(numbers) != graph.num_nodes():
        return None  # a cycle kept some nodes at positive indegree
    return numbers


def generate_certificate(algorithm) -> Optional[NumberingCertificate]:
    """Produce a numbering certificate for an algorithm, or None if its
    channel dependency graph is cyclic (no certificate can exist)."""
    graph = algorithm_cdg(algorithm)
    numbers = topological_numbering(graph)
    if numbers is None:
        return None
    # Channels with no dependencies at all still deserve a rank.
    for channel in algorithm.topology.channels():
        numbers.setdefault(channel, len(numbers))
    return NumberingCertificate(algorithm=algorithm.name, numbers=numbers)


def validate_certificate(
    certificate: NumberingCertificate, algorithm
) -> List:
    """Re-check a certificate against the algorithm's dependency relation.

    Returns the list of violating (held, requested) channel pairs — empty
    when the certificate is valid.  Independent of the generation path:
    it rebuilds the dependencies from the routing function directly.
    """
    graph = algorithm_cdg(algorithm)
    violations = []
    for held in graph.nodes():
        for requested in graph.successors(held):
            if not certificate.check_dependency(held, requested):
                violations.append((held, requested))
    return violations
