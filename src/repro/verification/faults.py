"""Fault tolerance of routing algorithms (static reachability analysis).

The paper motivates adaptiveness by fault tolerance: "alternative paths
for packets that encounter ... faulty hardware".  This module quantifies
that claim.  Given a set of faulty channels, a source-destination pair
*survives* when the algorithm's routing relation still contains some
path from source to destination that avoids every faulty channel — a
breadth-first search over ``(node, heading)`` states following the
algorithm's candidates.

Deterministic xy routing offers exactly one path per pair, so any fault
on it kills the pair; the partially adaptive algorithms keep many pairs
alive.  (This is reachability only: a blocked-forever channel also needs
the *router* to try the alternatives, which the simulator's adaptive
arbitration does.)
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..routing.base import RoutingAlgorithm
from ..topology.base import Channel, Direction, Topology


@dataclass
class FaultToleranceReport:
    """Outcome of one fault scenario."""

    algorithm: str
    num_faults: int
    total_pairs: int
    surviving_pairs: int

    @property
    def survival_fraction(self) -> float:
        if self.total_pairs == 0:
            return 1.0
        return self.surviving_pairs / self.total_pairs


def pair_survives(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    faulty: Set[Channel],
) -> bool:
    """Whether some legal route from src to dst avoids all faults."""
    topology: Topology = algorithm.topology
    start: Tuple[int, Optional[Direction]] = (src, None)
    seen = {start}
    frontier = deque([start])
    while frontier:
        node, heading = frontier.popleft()
        if node == dst:
            return True
        for direction in algorithm.candidates(node, dst, heading):
            channel = topology.channel(node, direction)
            if channel is None or channel in faulty:
                continue
            state = (channel.dst, direction)
            if state not in seen:
                seen.add(state)
                frontier.append(state)
    return False


def fault_tolerance(
    algorithm: RoutingAlgorithm,
    faulty: Iterable[Channel],
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> FaultToleranceReport:
    """Survival report over all (or the given) source-destination pairs."""
    topology = algorithm.topology
    faulty = set(faulty)
    if pairs is None:
        pairs = [
            (s, d)
            for s in topology.nodes()
            for d in topology.nodes()
            if s != d
        ]
    surviving = sum(
        1 for s, d in pairs if pair_survives(algorithm, s, d, faulty)
    )
    return FaultToleranceReport(
        algorithm=algorithm.name,
        num_faults=len(faulty),
        total_pairs=len(pairs),
        surviving_pairs=surviving,
    )


def random_fault_trials(
    algorithm: RoutingAlgorithm,
    num_faults: int,
    trials: int = 5,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    sample_pairs: Optional[int] = None,
) -> List[FaultToleranceReport]:
    """Repeat ``fault_tolerance`` for random fault sets.

    Randomness comes from ``rng`` or, equivalently, a bare ``seed``
    (mutually exclusive; with neither, seed 0 is used so results are
    reproducible by default).  Fault sets are distinct across trials
    and sampled pairs are distinct within a trial, so ``trials`` and
    ``sample_pairs`` count *different* scenarios rather than admitting
    silent duplicates.

    ``sample_pairs`` caps the pairs examined per trial (uniformly
    sampled) to keep large topologies affordable.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = random.Random(0 if seed is None else seed)
    topology = algorithm.topology
    channels = list(topology.channels())
    if num_faults > len(channels):
        raise ValueError(
            f"cannot fail {num_faults} of {len(channels)} channels"
        )
    reports = []
    seen_fault_sets: Set[frozenset] = set()
    for _ in range(trials):
        faulty = set(rng.sample(channels, num_faults))
        # Distinct fault sets per trial (bounded retries: small
        # topologies may not have enough distinct sets to go around).
        for _attempt in range(100):
            if frozenset(faulty) not in seen_fault_sets:
                break
            faulty = set(rng.sample(channels, num_faults))
        seen_fault_sets.add(frozenset(faulty))
        pairs = None
        if sample_pairs is not None:
            n = topology.num_nodes
            distinct = n * (n - 1)
            if sample_pairs > distinct:
                raise ValueError(
                    f"cannot sample {sample_pairs} distinct pairs from "
                    f"{distinct}"
                )
            chosen: Set[Tuple[int, int]] = set()
            pairs = []
            while len(pairs) < sample_pairs:
                s, d = rng.randrange(n), rng.randrange(n)
                if s != d and (s, d) not in chosen:
                    chosen.add((s, d))
                    pairs.append((s, d))
        reports.append(fault_tolerance(algorithm, faulty, pairs))
    return reports


def mean_survival(reports: Sequence[FaultToleranceReport]) -> float:
    if not reports:
        return 1.0
    return sum(r.survival_fraction for r in reports) / len(reports)
