"""Fault tolerance of routing algorithms (static reachability analysis).

The paper motivates adaptiveness by fault tolerance: "alternative paths
for packets that encounter ... faulty hardware".  This module quantifies
that claim.  Given a set of faulty channels, a source-destination pair
*survives* when the algorithm's routing relation still contains some
path from source to destination that avoids every faulty channel — a
breadth-first search over ``(node, heading)`` states following the
algorithm's candidates.

Deterministic xy routing offers exactly one path per pair, so any fault
on it kills the pair; the partially adaptive algorithms keep many pairs
alive.  (This is reachability only: a blocked-forever channel also needs
the *router* to try the alternatives, which the simulator's adaptive
arbitration does.)
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..routing.base import RoutingAlgorithm
from ..topology.base import Channel, Direction, Topology


@dataclass
class FaultToleranceReport:
    """Outcome of one fault scenario."""

    algorithm: str
    num_faults: int
    total_pairs: int
    surviving_pairs: int

    @property
    def survival_fraction(self) -> float:
        if self.total_pairs == 0:
            return 1.0
        return self.surviving_pairs / self.total_pairs


def pair_survives(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    faulty: Set[Channel],
) -> bool:
    """Whether some legal route from src to dst avoids all faults."""
    topology: Topology = algorithm.topology
    start: Tuple[int, Optional[Direction]] = (src, None)
    seen = {start}
    frontier = deque([start])
    while frontier:
        node, heading = frontier.popleft()
        if node == dst:
            return True
        for direction in algorithm.candidates(node, dst, heading):
            channel = topology.channel(node, direction)
            if channel is None or channel in faulty:
                continue
            state = (channel.dst, direction)
            if state not in seen:
                seen.add(state)
                frontier.append(state)
    return False


def fault_tolerance(
    algorithm: RoutingAlgorithm,
    faulty: Iterable[Channel],
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> FaultToleranceReport:
    """Survival report over all (or the given) source-destination pairs."""
    topology = algorithm.topology
    faulty = set(faulty)
    if pairs is None:
        pairs = [
            (s, d)
            for s in topology.nodes()
            for d in topology.nodes()
            if s != d
        ]
    surviving = sum(
        1 for s, d in pairs if pair_survives(algorithm, s, d, faulty)
    )
    return FaultToleranceReport(
        algorithm=algorithm.name,
        num_faults=len(faulty),
        total_pairs=len(pairs),
        surviving_pairs=surviving,
    )


def random_fault_trials(
    algorithm: RoutingAlgorithm,
    num_faults: int,
    trials: int = 5,
    rng: Optional[random.Random] = None,
    sample_pairs: Optional[int] = None,
) -> List[FaultToleranceReport]:
    """Repeat ``fault_tolerance`` for random fault sets.

    ``sample_pairs`` caps the pairs examined per trial (uniformly
    sampled) to keep large topologies affordable.
    """
    rng = rng or random.Random(0)
    topology = algorithm.topology
    channels = list(topology.channels())
    if num_faults > len(channels):
        raise ValueError(
            f"cannot fail {num_faults} of {len(channels)} channels"
        )
    reports = []
    for _ in range(trials):
        faulty = set(rng.sample(channels, num_faults))
        pairs = None
        if sample_pairs is not None:
            pairs = []
            n = topology.num_nodes
            while len(pairs) < sample_pairs:
                s, d = rng.randrange(n), rng.randrange(n)
                if s != d:
                    pairs.append((s, d))
        reports.append(fault_tolerance(algorithm, faulty, pairs))
    return reports


def mean_survival(reports: Sequence[FaultToleranceReport]) -> float:
    if not reports:
        return 1.0
    return sum(r.survival_fraction for r in reports) / len(reports)
