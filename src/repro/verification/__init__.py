"""Deadlock-freedom and connectivity verification (Dally-Seitz CDG)."""

from .certificates import (
    NumberingCertificate,
    generate_certificate,
    topological_numbering,
    validate_certificate,
)
from .cdg import (
    DeadlockVerdict,
    algorithm_cdg,
    turn_set_cdg,
    turn_set_is_deadlock_free,
    vc_algorithm_cdg,
    verify_algorithm,
    verify_escape_discipline,
    verify_turn_set,
    verify_vc_algorithm,
)
from .faults import (
    FaultToleranceReport,
    fault_tolerance,
    mean_survival,
    pair_survives,
    random_fault_trials,
)
from .graph import DiGraph
from .reachability import ConnectivityReport, check_connectivity

__all__ = [
    "ConnectivityReport",
    "DeadlockVerdict",
    "DiGraph",
    "FaultToleranceReport",
    "NumberingCertificate",
    "algorithm_cdg",
    "check_connectivity",
    "fault_tolerance",
    "generate_certificate",
    "mean_survival",
    "pair_survives",
    "random_fault_trials",
    "topological_numbering",
    "turn_set_cdg",
    "turn_set_is_deadlock_free",
    "validate_certificate",
    "vc_algorithm_cdg",
    "verify_algorithm",
    "verify_escape_discipline",
    "verify_turn_set",
    "verify_vc_algorithm",
]
