"""Input and output selection policies (Section 6).

When several headers wait for the same free output channel, the *input
selection policy* arbitrates; the paper uses **local first-come-first-
served** (earliest arrival at the router wins), which is fair and
prevents indefinite postponement.  When one header may choose among
several free output channels, the *output selection policy* decides; the
paper uses **xy** — the channel along the lowest dimension.  Alternatives
are provided for the ablation benchmarks ([19] studies these policies in
depth).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Sequence

from ..topology.base import Direction
from .packet import Packet

OutputSelector = Callable[[Sequence[Direction], Packet, random.Random], Direction]
InputSelector = Callable[[Sequence[Packet], random.Random], Packet]


def xy_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Prefer the available channel along the lowest dimension (paper)."""
    return min(options, key=lambda d: (d.dim, d.sign))


def random_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Pick uniformly among the available channels."""
    return options[rng.randrange(len(options))]


def zigzag_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Prefer a different dimension than the previous hop (spreads worms
    diagonally; an ablation alternative)."""
    if packet.head_direction is not None:
        other = [d for d in options if d.dim != packet.head_direction.dim]
        if other:
            return min(other, key=lambda d: (d.dim, d.sign))
    return min(options, key=lambda d: (d.dim, d.sign))


def fcfs_input_selection(
    contenders: Sequence[Packet], rng: random.Random
) -> Packet:
    """Local first-come-first-served: earliest header arrival wins (paper).

    Ties (same-cycle arrivals) break deterministically on packet id.
    """
    return min(contenders, key=lambda p: (p.header_wait_since, p.pid))


def random_input_selection(
    contenders: Sequence[Packet], rng: random.Random
) -> Packet:
    """Pick a contender uniformly at random (can postpone indefinitely)."""
    return contenders[rng.randrange(len(contenders))]


OUTPUT_POLICIES: Dict[str, OutputSelector] = {
    "xy": xy_output_selection,
    "random": random_output_selection,
    "zigzag": zigzag_output_selection,
}

INPUT_POLICIES: Dict[str, InputSelector] = {
    "fcfs": fcfs_input_selection,
    "random": random_input_selection,
}


def get_output_policy(name: str) -> OutputSelector:
    try:
        return OUTPUT_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown output selection policy {name!r}; "
            f"known: {sorted(OUTPUT_POLICIES)}"
        ) from None


def get_input_policy(name: str) -> InputSelector:
    try:
        return INPUT_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown input selection policy {name!r}; "
            f"known: {sorted(INPUT_POLICIES)}"
        ) from None
