"""Input and output selection policies (Section 6).

When several headers wait for the same free output channel, the *input
selection policy* arbitrates; the paper uses **local first-come-first-
served** (earliest arrival at the router wins), which is fair and
prevents indefinite postponement.  When one header may choose among
several free output channels, the *output selection policy* decides; the
paper uses **xy** — the channel along the lowest dimension.  Alternatives
are provided for the ablation benchmarks ([19] studies these policies in
depth).

Output selection resolves through two registries: the
:class:`~repro.routing.selection.policies.SelectionPolicy` classes
(``xy``, ``round-robin``, ``max-credits``, ``threshold`` — see
docs/SELECTION.md) take precedence, and the legacy function policies
below (``random``, ``zigzag``) fill in the rest.
:func:`make_output_policy` is the config-driven resolver the engine
uses; :func:`get_output_policy` keeps its historical function-only
behaviour for the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from ..routing.selection.policies import (
    SELECTION_POLICIES,
    make_selection_policy,
)
from ..topology.base import Direction
from .packet import Packet

OutputSelector = Callable[[Sequence[Direction], Packet, random.Random], Direction]
InputSelector = Callable[[Sequence[Packet], random.Random], Packet]


def xy_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Prefer the available channel along the lowest dimension (paper)."""
    return min(options, key=lambda d: (d.dim, d.sign))


def random_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Pick uniformly among the available channels."""
    return options[rng.randrange(len(options))]


def zigzag_output_selection(
    options: Sequence[Direction], packet: Packet, rng: random.Random
) -> Direction:
    """Prefer a different dimension than the previous hop (spreads worms
    diagonally; an ablation alternative)."""
    if packet.head_direction is not None:
        other = [d for d in options if d.dim != packet.head_direction.dim]
        if other:
            return min(other, key=lambda d: (d.dim, d.sign))
    return min(options, key=lambda d: (d.dim, d.sign))


def fcfs_input_selection(
    contenders: Sequence[Packet], rng: random.Random
) -> Packet:
    """Local first-come-first-served: earliest header arrival wins (paper).

    Ties (same-cycle arrivals) break deterministically on packet id.
    """
    return min(contenders, key=lambda p: (p.header_wait_since, p.pid))


def random_input_selection(
    contenders: Sequence[Packet], rng: random.Random
) -> Packet:
    """Pick a contender uniformly at random (can postpone indefinitely)."""
    return contenders[rng.randrange(len(contenders))]


OUTPUT_POLICIES: Dict[str, OutputSelector] = {
    "xy": xy_output_selection,
    "random": random_output_selection,
    "zigzag": zigzag_output_selection,
}

INPUT_POLICIES: Dict[str, InputSelector] = {
    "fcfs": fcfs_input_selection,
    "random": random_input_selection,
}


def get_output_policy(name: str) -> OutputSelector:
    try:
        return OUTPUT_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown output selection policy {name!r}; "
            f"known: {sorted(OUTPUT_POLICIES)}"
        ) from None


def get_input_policy(name: str) -> InputSelector:
    try:
        return INPUT_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown input selection policy {name!r}; "
            f"known: {sorted(INPUT_POLICIES)}"
        ) from None


def output_policy_names() -> List[str]:
    """Every accepted ``output_selection`` name: the policy classes
    plus the legacy function policies."""
    return sorted(set(OUTPUT_POLICIES) | set(SELECTION_POLICIES))


def input_policy_names() -> List[str]:
    return sorted(INPUT_POLICIES)


def make_output_policy(config) -> OutputSelector:
    """Resolve ``config.output_selection`` to the callable the engine
    invokes during arbitration.

    Policy-class names win over the legacy table (notably ``"xy"``,
    which resolves to a fresh
    :class:`~repro.routing.selection.policies.XYPreference` — the same
    choice function as the legacy ``xy`` selector, bit-identical by the
    golden-fingerprint regression).  Each call builds a fresh instance
    so per-run policy state (round-robin pointers) never leaks between
    simulators.
    """
    name = config.output_selection
    if name in SELECTION_POLICIES:
        return make_selection_policy(
            name, threshold=config.selection_threshold
        )
    if name in OUTPUT_POLICIES:
        return OUTPUT_POLICIES[name]
    raise KeyError(
        f"unknown output selection policy {name!r}; "
        f"known: {output_policy_names()}"
    )
