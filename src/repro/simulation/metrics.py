"""Measurement results of a wormhole simulation run.

The paper reports two characteristics per run: *average communication
latency* (microseconds, from message creation at the source processor to
delivery of the tail flit) and *average sustainable network throughput*
(flits delivered per microsecond).  Throughput is "sustainable when the
number of packets queued at their source processors is small and
bounded"; :class:`SimulationResult` records the backlog trajectory so the
sweep harness can apply exactly that test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimulationResult:
    """Everything measured during one run's measurement window."""

    algorithm: str
    pattern: str
    offered_load: float  # flits per microsecond per node
    num_nodes: int
    active_sources: int
    measure_cycles: int
    cycle_time_us: float

    generated_packets: int = 0
    delivered_packets: int = 0
    delivered_flits: int = 0
    total_latency_cycles: int = 0  # creation -> tail delivery, summed
    total_net_latency_cycles: int = 0  # injection -> tail delivery, summed
    total_hops: int = 0
    total_misroutes: int = 0
    latency_by_length: Dict[int, List[int]] = field(default_factory=dict)
    backlog_samples: List[int] = field(default_factory=list)
    deadlock: bool = False
    deadlock_cycle: Optional[int] = None
    inflight_at_end: int = 0
    channel_flits: Optional[List[int]] = None
    """Flits that crossed each channel during measurement (indexed like
    the simulator's channel list; present when
    ``config.track_channel_load`` is set)."""

    max_grant_wait_cycles: int = 0
    """Longest any header waited for an output-channel grant during the
    measurement window — the paper's indefinite-postponement concern.
    Local FCFS keeps this bounded; unfair policies let it grow."""

    # -- observability collectors (docs/OBSERVABILITY.md) ---------------------

    channel_util_series: Optional[List[List[int]]] = None
    """Per-channel utilization time series: one row per sample bucket of
    the measurement window, each row the flits that crossed every channel
    during that bucket (indexed like the simulator's channel list).
    Present when ``config.channel_series_period > 0``."""

    channel_series_period: Optional[int] = None
    """Bucket width, in cycles, of ``channel_util_series`` (the final
    bucket may cover fewer cycles if the window is not a multiple)."""

    router_blocked_cycles: Optional[List[int]] = None
    """Per-router count of measured cycles the router hosted a header
    waiting for an output grant or the ejection port.  Present when
    ``config.collect_router_blocked`` is set."""

    latency_histogram: Optional[Dict[int, int]] = None
    """Exact creation-to-delivery latency histogram of measured packets
    (cycles -> deliveries).  Present when
    ``config.collect_latency_histogram`` is set; feeds
    :meth:`latency_percentile`."""

    # -- graceful degradation (fault injection / watchdog / retry) -----------

    dropped_packets: int = 0
    """Measured packets permanently lost: dropped with no retries left."""

    killed_packets: int = 0
    """Measured in-flight worms killed by a channel/router failure
    (includes kills that were subsequently retried)."""

    retried_packets: int = 0
    """Source retries scheduled for measured packets (each drop that had
    attempts remaining counts one retry)."""

    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    """Every measured drop event by cause (``link-failure``,
    ``router-failure``, ``timeout-stall``, ``timeout-deadlock``,
    ``dead-destination``), *including* drops that were later retried —
    so the values can sum to more than ``dropped_packets``."""

    max_stall_age_cycles: int = 0
    """Longest any header was observed stalled (waiting without a grant):
    updated by the per-packet watchdog, at drop time, and for headers
    still waiting when the run ends."""

    # -- headline metrics ----------------------------------------------------

    @property
    def measure_time_us(self) -> float:
        return self.measure_cycles * self.cycle_time_us

    @property
    def avg_latency_us(self) -> Optional[float]:
        """Mean creation-to-delivery latency of measured packets (us)."""
        if self.delivered_packets == 0:
            return None
        return (
            self.total_latency_cycles
            / self.delivered_packets
            * self.cycle_time_us
        )

    @property
    def avg_network_latency_us(self) -> Optional[float]:
        """Mean injection-to-delivery latency, excluding source queueing."""
        if self.delivered_packets == 0:
            return None
        return (
            self.total_net_latency_cycles
            / self.delivered_packets
            * self.cycle_time_us
        )

    @property
    def throughput_flits_per_us(self) -> float:
        """Aggregate network throughput: flits delivered per microsecond."""
        return self.delivered_flits / self.measure_time_us

    @property
    def throughput_per_node(self) -> float:
        """Delivered flits per microsecond per node."""
        return self.throughput_flits_per_us / self.num_nodes

    @property
    def offered_flits_per_us(self) -> float:
        """Aggregate offered load over the active sources."""
        return self.offered_load * self.active_sources

    @property
    def avg_hops(self) -> Optional[float]:
        if self.delivered_packets == 0:
            return None
        return self.total_hops / self.delivered_packets

    def latency_percentile(self, percentile: float) -> Optional[int]:
        """Exact nearest-rank latency percentile, in cycles, from the
        collected histogram (``None`` when the histogram is absent or
        empty; requires ``config.collect_latency_histogram``)."""
        if self.latency_histogram is None:
            return None
        from ..observability.collectors import exact_percentile

        return exact_percentile(self.latency_histogram, percentile)

    def channel_utilization(self) -> Optional[List[float]]:
        """Per-channel mean utilization (fraction of measured cycles the
        channel carried a flit), from the collected time series."""
        series = self.channel_util_series
        if series is None or not series:
            return None
        cycles = self.measure_cycles
        totals = [0] * len(series[0])
        for bucket in series:
            for i, flits in enumerate(bucket):
                totals[i] += flits
        return [total / cycles for total in totals]

    @property
    def delivery_ratio(self) -> Optional[float]:
        """Delivered fraction of the measured generated packets — the
        degraded-mode headline metric.  ``None`` when nothing was
        generated in the measurement window."""
        if self.generated_packets == 0:
            return None
        return self.delivered_packets / self.generated_packets

    @property
    def degraded(self) -> bool:
        """Whether any packet was killed or permanently dropped."""
        return bool(self.dropped_packets or self.killed_packets)

    # -- sustainability (the paper's criterion) ------------------------------

    @property
    def backlog_growth(self) -> float:
        """Mean source-queue backlog in the last quarter of the window
        minus the first quarter (packets, network-wide)."""
        samples = self.backlog_samples
        if len(samples) < 4:
            return 0.0
        quarter = max(1, len(samples) // 4)
        head = samples[:quarter]
        tail = samples[-quarter:]
        return sum(tail) / len(tail) - sum(head) / len(head)

    @property
    def sustainable(self) -> bool:
        """Whether the offered load was sustained: queues stayed small and
        bounded, and no deadlock occurred."""
        if self.deadlock:
            return False
        # "Small and bounded": backlog growth across the window below a
        # fifth of a packet per active source.
        limit = max(2.0, 0.2 * self.active_sources)
        return self.backlog_growth < limit

    def summary(self) -> str:
        latency = self.avg_latency_us
        lat = f"{latency:8.2f}us" if latency is not None else "   n/a  "
        flag = "" if self.sustainable else "  [unsustainable]"
        if self.deadlock:
            flag = f"  [DEADLOCK @ cycle {self.deadlock_cycle}]"
        if self.degraded:
            ratio = self.delivery_ratio
            shown = f"{ratio:.3f}" if ratio is not None else "n/a"
            flag += (
                f"  [degraded: ratio={shown} lost={self.dropped_packets} "
                f"killed={self.killed_packets} retries={self.retried_packets}]"
            )
        return (
            f"{self.algorithm:16s} {self.pattern:18s} "
            f"offered={self.offered_flits_per_us:8.1f} fl/us "
            f"delivered={self.throughput_flits_per_us:8.1f} fl/us "
            f"latency={lat}{flag}"
        )

    # -- stable serialization ------------------------------------------------
    #
    # The result travels through the on-disk cache and the ``faults`` CLI
    # JSON report; dict-valued fields are emitted with sorted keys so the
    # encoding is deterministic across processes and Python versions
    # (cache schema 3 — see docs/PERFORMANCE.md).

    def to_dict(self) -> Dict[str, object]:
        """All fields as JSON-serializable values with stable ordering."""
        from dataclasses import fields as dc_fields

        out: Dict[str, object] = {}
        for f in dc_fields(self):
            value = getattr(self, f.name)
            if f.name == "latency_by_length":
                value = {
                    str(length): list(value[length])
                    for length in sorted(value)
                }
            elif f.name == "drops_by_cause":
                value = {cause: value[cause] for cause in sorted(value)}
            elif f.name == "latency_histogram" and value is not None:
                value = {
                    str(latency): value[latency] for latency in sorted(value)
                }
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        if "latency_by_length" in kwargs:
            kwargs["latency_by_length"] = {
                int(length): list(samples)
                for length, samples in kwargs["latency_by_length"].items()  # type: ignore[union-attr]
            }
        if kwargs.get("latency_histogram") is not None:
            kwargs["latency_histogram"] = {
                int(latency): count
                for latency, count in kwargs["latency_histogram"].items()  # type: ignore[union-attr]
            }
        return cls(**kwargs)  # type: ignore[arg-type]
