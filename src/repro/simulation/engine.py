"""The cycle-driven flit-level wormhole network simulator.

One simulator cycle is the transmission time of one flit on a channel
(0.05 us at the paper's 20 flits/us).  Each cycle has three stages:

1. **generation / injection** — processors create messages with
   negative-exponential interarrival times; the head message of a source
   queue becomes eligible when the node's injection channel is free;
2. **arbitration** — every waiting header asks the routing algorithm for
   its candidate outputs, picks one *free* candidate with the output
   selection policy, and contested channels are awarded by the input
   selection policy (local FCFS, as in the paper);
3. **movement** — every worm shifts forward: one flit per cycle per held
   channel, heads first so a whole unblocked worm advances one buffer per
   cycle; ejection consumes one flit per cycle at the destination; tail
   flits release channels as they drain.

**The event-driven hot path** (docs/PERFORMANCE.md): the engine is
semantically a per-cycle scan of every source and every waiting header,
but it executes three structural optimisations that skip the scans whose
outcome is already known — each one bit-identical to the naive scan
(pass ``reference=True`` to run the scan-based code paths; the
cross-equivalence suite compares the two, and the golden-fingerprint
tests pin the optimised engine to the numbers captured before any of
this existed):

* **routing-table precomputation** — candidate channels are a pure
  function of ``(node, destination, arrival direction[, vc])``; a
  :class:`~repro.routing.table.RoutingTable` plus an engine-side memo of
  ``(direction, runtime channel id)`` pairs turns the per-cycle routing
  derivation into a dict hit.  Fault events invalidate exactly the
  entries touching the dead (or healed) hardware;
* **arrival calendar** — sources sit in a heap keyed on their next
  arrival time, so a cycle in which no source fires costs one peek
  instead of a full scan; due sources are drained in source-list order,
  preserving the exact RNG draw sequence of the scan;
* **channel-free wakeup sets** — a header whose candidate set is fully
  busy is *parked*: it is skipped by arbitration until one of the
  channels it is watching frees (tail drain, kill), its ejection port
  frees, or a fault event fires (which wakes everyone).  Parked headers
  stay in ``waiting`` — watchdogs, deadlock detection, and the
  blocked-cycle collectors see them exactly as before.

Worms whose scan produced no movement are parked on a dormant list (their
buffers are private, so nothing can change until an arbitration grant
wakes them) — this keeps saturated-network cycles cheap.

A watchdog records the last cycle on which any flit moved or channel was
granted; silence beyond ``config.deadlock_threshold`` with flits still in
flight is reported as deadlock (used by the Figure 1/Figure 4
demonstrations; the turn-model algorithms never trip it).

**Fault injection and graceful degradation** (see docs/FAULTS.md): a
:class:`~repro.faults.plan.FaultPlan` in the config schedules channel and
router failures mid-run.  Worms holding a failed channel (or touching a
failed router) are killed with full accounting; surviving traffic routes
around the fault through the :class:`~repro.faults.routing.
FaultAwareRouting` mask.  A per-packet watchdog (``config.packet_timeout``)
drops headers that stall too long, diagnosing each drop against the
wait-for graph; dropped packets are retried from the source with bounded
exponential backoff (``config.max_retries``).  With the default empty
plan and the watchdog/retry knobs at zero, every fault hook is skipped
and the simulation is bit-identical to the fault-free engine.

**Observability** (see docs/OBSERVABILITY.md): pass a
:class:`~repro.observability.sinks.TraceSink` to receive cycle-stamped
packet-lifecycle events (``injected``, ``channel_allocated``,
``header_advance``, ``blocked``, ``delivered``, ``dropped``, ``killed``,
``fault_applied``); switch on the config's collector knobs for
per-channel utilization time series, per-router blocked-cycle counters,
and exact latency histograms; pass a
:class:`~repro.observability.profiler.PhaseProfiler` to time the hot
phases.  All three are strictly observational — they never touch the
RNG or reorder any decision — and with all of them off the engine runs
exactly the instruction sequence it ran before they existed (the
golden-fingerprint tests pin this down bit-for-bit).
"""

from __future__ import annotations

import heapq
import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..faults.plan import CHANNEL_FAULT, FAIL
from ..faults.routing import FaultAwareRouting
from ..faults.state import FaultState
from ..observability.collectors import MetricsCollectors
from ..observability.events import (
    BLOCKED,
    CHANNEL_ALLOCATED,
    DELIVERED,
    DROPPED,
    FAULT_APPLIED,
    HEADER_ADVANCE,
    INJECTED,
    KILLED,
    TraceEvent,
)
from ..routing.base import RoutingAlgorithm
from ..routing.selection.congestion import EngineCongestionView
from ..routing.table import RoutingTable
from ..topology.base import Topology
from .config import SimulationConfig
from .metrics import SimulationResult
from .packet import ChannelHold, Packet, PacketState
from .selection import get_input_policy, make_output_policy


class WormholeSimulator:
    """Simulates one (algorithm, traffic pattern, load) operating point.

    ``reference=True`` selects the scan-based generation and routing
    code paths (no arrival calendar, no routing-table memo, no wakeup
    parking).  It exists for the cross-equivalence test suite — the
    optimised default must produce bit-identical results — and for
    debugging suspected optimisation bugs; it is several times slower.
    """

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        pattern,
        config: SimulationConfig,
        sink=None,
        profiler=None,
        reference: bool = False,
    ) -> None:
        self.algorithm = algorithm
        self.pattern = pattern
        self.config = config
        self.topology: Topology = algorithm.topology
        self.rng = random.Random(config.seed)
        self.output_policy = make_output_policy(config)
        self.input_policy = get_input_policy(config.input_selection)

        # Dense channel indexing for the runtime state.  With virtual
        # channels, each physical channel expands into ``num_vc`` runtime
        # channels sharing the physical link's bandwidth; runtime id
        # ``base + vc`` where ``base = channel_ids[(src, direction)]``.
        self.num_vc = config.virtual_channels
        physical = list(self.topology.channels())
        self.channels: List = [
            c for c in physical for _ in range(self.num_vc)
        ]
        self.channel_ids: Dict[tuple, int] = {
            (c.src, c.direction): i * self.num_vc
            for i, c in enumerate(physical)
        }
        self.channel_alloc: List[Optional[Packet]] = [None] * len(self.channels)
        self.ejection_alloc: List[Optional[Packet]] = [None] * self.topology.num_nodes
        self.injection_busy: List[Optional[Packet]] = [None] * self.topology.num_nodes

        self.queues: List[Deque[Packet]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.sources = list(pattern.active_sources(self.topology))
        # The arrival calendar: a heap of (next arrival time, source
        # index) so a cycle with no due source costs one peek.  The
        # ``next_arrival`` dict mirrors the heap for introspection and
        # for the reference (scan-based) generator.
        self.next_arrival: Dict[int, float] = {}
        self._arrival_heap: List[Tuple[float, int]] = []
        rate = config.messages_per_cycle
        if rate > 0:
            for index, node in enumerate(self.sources):
                when = self.rng.expovariate(rate)
                self.next_arrival[node] = when
                self._arrival_heap.append((when, index))
            heapq.heapify(self._arrival_heap)

        # Insertion-ordered (dicts) so runs are exactly reproducible even
        # under randomised selection policies.
        self.waiting: Dict[Packet, None] = {}  # headers needing arbitration
        self.active: Dict[Packet, None] = {}  # worms with flits in the network
        self.dormant: Set[Packet] = set()  # fully blocked worms
        self.pending_nodes: Set[int] = set()  # nonempty queue, injector free

        self.cycle = 0
        self.last_progress = 0
        self._last_cycle = 0  # last cycle whose bookkeeping ran
        self._link_blocked = False
        self._next_pid = 0
        self._backlog = 0  # queued packets network-wide
        self.channel_load = (
            [0] * len(self.channels) if config.track_channel_load else None
        )

        # Fault injection: a live fault state plus the plan's schedule.
        # With the (default) empty plan both stay empty/None and every
        # fault hook below short-circuits, keeping the zero-fault path
        # bit-identical to the fault-free engine.
        self.fault_state: Optional[FaultState] = None
        self._fault_schedule: Dict[int, list] = {}
        if not config.fault_plan.is_empty:
            self.fault_state = FaultState(self.topology)
            self._fault_schedule = config.fault_plan.schedule()
            self.algorithm = FaultAwareRouting(algorithm, self.fault_state)
        self._retry_at: Dict[int, List[Packet]] = {}  # cycle -> retries due

        # Congestion-aware output selection: bind the engine-backed
        # view only when the configured policy asks for it, so the
        # default xy path never builds or consults congestion state.
        # Both engines (reference and optimised) bind the same view —
        # and both only invoke the policy on non-empty free candidate
        # sets — so stateful policies stay cross-engine bit-identical.
        if getattr(self.output_policy, "uses_congestion", False):
            self.output_policy.bind(EngineCongestionView(self))

        # Routing-table precomputation: the table memoises the (possibly
        # fault-masked) algorithm's candidate tuples; the pair cache
        # layers the dense runtime channel ids on top.  Fault events
        # invalidate exactly the touched nodes in both.
        self.routing_table = RoutingTable(self.algorithm)
        self._pair_cache: Dict[int, Dict[tuple, tuple]] = {}

        # Channel-free wakeup sets: parked headers (still in ``waiting``)
        # skipped by arbitration until a watched channel or ejection port
        # frees, or a fault event wakes everyone.
        self._parked: Set[Packet] = set()
        self._channel_watchers: Dict[int, Set[Packet]] = {}
        self._eject_watchers: Dict[int, Set[Packet]] = {}
        self._wakeups = not reference
        self._reference = reference
        if reference:
            # Scan-based code paths, kept for the equivalence suite.
            self._generate = self._generate_reference  # type: ignore[method-assign]
            self._candidate_channels = (  # type: ignore[method-assign]
                self._candidate_channels_reference
            )

        # Observability: a trace sink, streaming metrics collectors, and
        # a phase profiler — each held as None when disabled so every
        # hook below is one pointer check.  None of them ever touches
        # the RNG or reorders a decision, so enabling them cannot change
        # the simulated outcome (and disabling them restores the exact
        # pre-observability instruction sequence).
        self._sink = sink
        self._emit = sink.emit if sink is not None else None
        self._blocked_noted: Set[Packet] = set()  # one `blocked` per stall
        self._collectors: Optional[MetricsCollectors] = None
        if (
            config.channel_series_period > 0
            or config.collect_router_blocked
            or config.collect_latency_histogram
        ):
            self._collectors = MetricsCollectors(
                len(self.channels),
                self.topology.num_nodes,
                channel_series_period=config.channel_series_period,
                collect_router_blocked=config.collect_router_blocked,
                collect_latency_histogram=config.collect_latency_histogram,
            )
        self._profiler = profiler
        if profiler is not None:
            # Shadow the routing decision with a timed wrapper so the
            # report can split "route" out of "allocate".
            inner_candidates = self._candidate_channels
            perf = time.perf_counter

            def timed_candidates(packet: Packet) -> List[tuple]:
                started = perf()
                out = inner_candidates(packet)
                profiler.add("route", perf() - started)
                return out

            self._candidate_channels = timed_candidates  # type: ignore[method-assign]

        self.result = SimulationResult(
            algorithm=algorithm.name,
            pattern=getattr(pattern, "name", type(pattern).__name__),
            offered_load=config.offered_load,
            num_nodes=self.topology.num_nodes,
            active_sources=len(self.sources),
            measure_cycles=config.measure_cycles,
            cycle_time_us=config.cycle_time_us,
        )

    # -- public API ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate warmup + measurement and return the measurements."""
        total = self.config.total_cycles
        for cycle in range(total):
            self.cycle = cycle
            self._cycle_body(cycle)
            if self._after_cycle(cycle):
                break
        return self.finalize()

    def step(self) -> None:
        """Advance a single cycle (for tests and interactive inspection).

        Runs the same per-cycle bookkeeping :meth:`run` performs —
        backlog sampling and the global deadlock watchdog — so stepping
        N cycles leaves the simulator in exactly the state running N
        cycles would (call :meth:`finalize` to fold end-of-run state
        into the result)."""
        cycle = self.cycle
        self._cycle_body(cycle)
        self._after_cycle(cycle)
        self.cycle = cycle + 1

    def finalize(self) -> SimulationResult:
        """Fold end-of-run state into the result and return it.

        :meth:`run` calls this automatically; drivers using
        :meth:`step` call it once after the last step.  Call it once —
        it folds collector state and end-of-run gauges."""
        result = self.result
        end_cycle = self._last_cycle
        result.inflight_at_end = len(self.active)
        result.channel_flits = self.channel_load
        if self._collectors is not None:
            self._collectors.finish(result)
        for packet in self.waiting:  # headers still stalled at the end
            age = end_cycle - packet.header_wait_since
            if age > result.max_stall_age_cycles:
                result.max_stall_age_cycles = age
        return result

    def _after_cycle(self, cycle: int) -> bool:
        """Shared per-cycle bookkeeping: sample the backlog, trip the
        global deadlock watchdog.  True when the run should abort."""
        config = self.config
        self._last_cycle = cycle
        if (
            cycle >= config.warmup_cycles
            and (cycle - config.warmup_cycles) % config.queue_sample_period == 0
        ):
            self.result.backlog_samples.append(self._backlog)
        if cycle - self.last_progress > config.deadlock_threshold and (
            self.active or self.waiting
        ):
            self.result.deadlock = True
            self.result.deadlock_cycle = cycle
            return True
        return False

    def _cycle_body(self, cycle: int) -> None:
        """One simulator cycle: faults, retries, then the three stages."""
        if self._profiler is not None:
            self._cycle_stages_profiled(cycle)
        else:
            self._cycle_stages(cycle)
        if self._collectors is not None and (
            self.config.warmup_cycles <= cycle < self.config.generation_cycles
        ):
            self._collectors.on_cycle_end(self.waiting)

    def _cycle_stages(self, cycle: int) -> None:
        if self._fault_schedule:
            self._apply_faults(cycle)
        if self._retry_at:
            for packet in self._retry_at.pop(cycle, ()):
                self._requeue(packet)
        self._generate(cycle)
        self._inject(cycle)
        self._arbitrate(cycle)
        self._move(cycle)
        if self.config.packet_timeout and self.waiting:
            self._check_packet_timeouts(cycle)

    def _cycle_stages_profiled(self, cycle: int) -> None:
        """:meth:`_cycle_stages` with a ``perf_counter`` pair around each
        stage (kept in lockstep with the unprofiled path — the sequence
        of stage calls must stay identical)."""
        profiler = self._profiler
        perf = time.perf_counter
        if self._fault_schedule:
            started = perf()
            self._apply_faults(cycle)
            profiler.add("faults", perf() - started)
        if self._retry_at:
            started = perf()
            for packet in self._retry_at.pop(cycle, ()):
                self._requeue(packet)
            profiler.add("retries", perf() - started)
        started = perf()
        self._generate(cycle)
        profiler.add("generate", perf() - started)
        started = perf()
        self._inject(cycle)
        profiler.add("inject", perf() - started)
        started = perf()
        self._arbitrate(cycle)
        profiler.add("allocate", perf() - started)
        started = perf()
        self._move(cycle)
        profiler.add("advance", perf() - started)
        if self.config.packet_timeout and self.waiting:
            started = perf()
            self._check_packet_timeouts(cycle)
            profiler.add("watchdog", perf() - started)

    # -- stage 1: generation and injection ------------------------------------

    def _generate(self, cycle: int) -> None:
        """Arrival-calendar generation: drain the heap of due sources.

        Bit-identical to :meth:`_generate_reference`: sources whose next
        arrival lies in the future draw nothing there too, and the due
        sources are processed in source-list order, so the shared RNG
        sees exactly the same draw sequence."""
        heap = self._arrival_heap
        if not heap or heap[0][0] > cycle:
            return  # no source due this cycle: one peek and done
        if cycle >= self.config.generation_cycles:
            return  # drain window: let in-flight traffic finish
        pop = heapq.heappop
        due = [pop(heap)]
        while heap and heap[0][0] <= cycle:
            due.append(pop(heap))
        if len(due) > 1:
            # The heap yields time order; the RNG contract is source-list
            # order (the order the scan-based generator visits them).
            due.sort(key=lambda item: item[1])
        config = self.config
        rate = config.messages_per_cycle
        lengths = config.message_lengths
        num_lengths = len(lengths)
        max_queue = config.max_queue_per_node
        rng = self.rng
        expovariate = rng.expovariate
        randrange = rng.randrange
        pattern_dest = self.pattern.dest
        queues = self.queues
        sources = self.sources
        next_arrival = self.next_arrival
        push = heapq.heappush
        dead_routers = (
            self.fault_state.dead_routers if self.fault_state is not None else ()
        )
        for when, index in due:
            node = sources[index]
            while when <= cycle:
                when += expovariate(rate)
                if node in dead_routers:
                    continue  # a dead router offers no traffic
                if len(queues[node]) >= max_queue:
                    continue
                dst = pattern_dest(node, rng)
                if dst is None or dst == node:
                    continue
                length = lengths[randrange(num_lengths)]
                self._enqueue(Packet(self._next_pid, node, dst, length, cycle))
                self._next_pid += 1
            next_arrival[node] = when
            push(heap, (when, index))

    def _generate_reference(self, cycle: int) -> None:
        """The scan-based generator: visit every source, every cycle
        (the pre-calendar hot path, kept for the equivalence suite)."""
        if self.config.messages_per_cycle <= 0:
            return
        if cycle >= self.config.generation_cycles:
            return  # drain window: let in-flight traffic finish
        rate = self.config.messages_per_cycle
        lengths = self.config.message_lengths
        dead_routers = (
            self.fault_state.dead_routers if self.fault_state is not None else ()
        )
        for node in self.sources:
            when = self.next_arrival[node]
            while when <= cycle:
                when += self.rng.expovariate(rate)
                if node in dead_routers:
                    continue  # a dead router offers no traffic
                if len(self.queues[node]) >= self.config.max_queue_per_node:
                    continue
                dst = self.pattern.dest(node, self.rng)
                if dst is None or dst == node:
                    continue
                length = lengths[self.rng.randrange(len(lengths))]
                self._enqueue(Packet(self._next_pid, node, dst, length, cycle))
                self._next_pid += 1
            self.next_arrival[node] = when

    def _enqueue(self, packet: Packet) -> None:
        """Queue a message at its source processor (public for tests and
        for scripted workloads such as the deadlock demonstrations)."""
        node = packet.src
        self.queues[node].append(packet)
        self._backlog += 1
        if packet.created >= self.config.warmup_cycles:
            self.result.generated_packets += 1
        if self.injection_busy[node] is None:
            self.pending_nodes.add(node)

    def inject_packet(
        self, src: int, dst: int, length: int, created: Optional[int] = None
    ) -> Packet:
        """Create and queue one message explicitly (scripted workloads)."""
        if src == dst:
            raise ValueError(
                "messages to self are consumed locally and never enter the "
                "network; src and dst must differ"
            )
        if length < 1:
            raise ValueError("a packet needs at least one flit")
        packet = Packet(
            self._next_pid, src, dst, length, self.cycle if created is None else created
        )
        self._next_pid += 1
        self._enqueue(packet)
        return packet

    def _inject(self, cycle: int) -> None:
        if not self.pending_nodes:
            return
        fault_state = self.fault_state
        for node in list(self.pending_nodes):
            queue = self.queues[node]
            if not queue or self.injection_busy[node] is not None:
                self.pending_nodes.discard(node)
                continue
            if fault_state is not None and node in fault_state.dead_routers:
                # A dead router cannot inject; its queue waits for a heal.
                self.pending_nodes.discard(node)
                continue
            packet = queue.popleft()
            self._backlog -= 1
            if (
                fault_state is not None
                and packet.dst in fault_state.dead_routers
            ):
                # Drop at the source instead of wasting network resources
                # on an unreachable destination (it may heal before a
                # retry, so retries still apply).
                self._finish_drop(packet, cycle, "dead-destination")
                if not queue:
                    self.pending_nodes.discard(node)
                continue
            self.injection_busy[node] = packet
            packet.state = PacketState.ROUTING
            packet.header_wait_since = cycle
            self.waiting[packet] = None
            self.active[packet] = None
            self.pending_nodes.discard(node)
            if self._emit is not None:
                self._emit(
                    TraceEvent(INJECTED, cycle, pid=packet.pid, node=node)
                )

    # -- stage 2: arbitration --------------------------------------------------

    def _route_pairs(self, node: int, dest: int, in_direction) -> tuple:
        """Memoised ``(direction, runtime channel id)`` pairs for the
        algorithm's minimal candidates at this routing decision."""
        per_node = self._pair_cache.get(node)
        if per_node is None:
            per_node = self._pair_cache[node] = {}
        key = (dest, in_direction)
        pairs = per_node.get(key)
        if pairs is None:
            channel_ids = self.channel_ids
            pairs = per_node[key] = tuple(
                (d, channel_ids[(node, d)])
                for d in self.routing_table.candidates(node, dest, in_direction)
            )
        return pairs

    def _escape_pairs(self, node: int, dest: int, in_direction) -> tuple:
        per_node = self._pair_cache.get(node)
        if per_node is None:
            per_node = self._pair_cache[node] = {}
        key = ("e", dest, in_direction)
        pairs = per_node.get(key)
        if pairs is None:
            channel_ids = self.channel_ids
            pairs = per_node[key] = tuple(
                (d, channel_ids[(node, d)])
                for d in self.routing_table.escape_candidates(
                    node, dest, in_direction
                )
            )
        return pairs

    def _vc_pairs(self, node: int, dest: int, in_direction, in_vc) -> tuple:
        per_node = self._pair_cache.get(node)
        if per_node is None:
            per_node = self._pair_cache[node] = {}
        key = ("v", dest, in_direction, in_vc)
        pairs = per_node.get(key)
        if pairs is None:
            num_vc = self.num_vc
            channel_ids = self.channel_ids
            built = []
            for d, vc in self.routing_table.vc_candidates(
                node, dest, in_direction, in_vc, num_vc
            ):
                base = channel_ids.get((node, d))
                if base is None or not 0 <= vc < num_vc:
                    continue
                built.append((d, base + vc))
            pairs = per_node[key] = tuple(built)
        return pairs

    def _vc_escape_pairs(self, node: int, dest: int, in_direction, in_vc) -> tuple:
        per_node = self._pair_cache.get(node)
        if per_node is None:
            per_node = self._pair_cache[node] = {}
        key = ("w", dest, in_direction, in_vc)
        pairs = per_node.get(key)
        if pairs is None:
            num_vc = self.num_vc
            channel_ids = self.channel_ids
            built = []
            for d, vc in self.routing_table.vc_escape_candidates(
                node, dest, in_direction, in_vc, num_vc
            ):
                base = channel_ids.get((node, d))
                if base is None or not 0 <= vc < num_vc:
                    continue
                built.append((d, base + vc))
            pairs = per_node[key] = tuple(built)
        return pairs

    def _candidate_channels(self, packet: Packet) -> List[tuple]:
        """Free (direction, runtime channel id) pairs for this header,
        served from the routing-table pair memo."""
        alloc = self.channel_alloc
        node = packet.head_node
        dest = packet.dst
        in_direction = packet.head_direction
        if self.num_vc == 1:
            pairs = self._route_pairs(node, dest, in_direction)
            free = [pc for pc in pairs if alloc[pc[1]] is None]
            if not free and packet.misroutes < self.config.misroute_limit:
                pairs = self._escape_pairs(node, dest, in_direction)
                free = [pc for pc in pairs if alloc[pc[1]] is None]
            return free
        in_vc = packet.head_vc
        pairs = self._vc_pairs(node, dest, in_direction, in_vc)
        free = [pc for pc in pairs if alloc[pc[1]] is None]
        if not free and packet.misroutes < self.config.misroute_limit:
            pairs = self._vc_escape_pairs(node, dest, in_direction, in_vc)
            free = [pc for pc in pairs if alloc[pc[1]] is None]
        return free

    def _candidate_channels_reference(self, packet: Packet) -> List[tuple]:
        """Free (direction, runtime channel id) pairs, derived from
        scratch on every call (the pre-table hot path, kept for the
        equivalence suite)."""
        if self.num_vc == 1:
            cands = self.algorithm.candidates(
                packet.head_node, packet.dst, packet.head_direction
            )
            free = self._filter_free_single(packet.head_node, cands)
            if not free and packet.misroutes < self.config.misroute_limit:
                escapes = self.algorithm.escape_candidates(
                    packet.head_node, packet.dst, packet.head_direction
                )
                free = self._filter_free_single(packet.head_node, escapes)
            return free
        pairs = self.algorithm.vc_candidates(
            packet.head_node,
            packet.dst,
            packet.head_direction,
            packet.head_vc,
            self.num_vc,
        )
        free = self._filter_free_vc(packet.head_node, pairs)
        if not free and packet.misroutes < self.config.misroute_limit:
            escapes = self.algorithm.vc_escape_candidates(
                packet.head_node,
                packet.dst,
                packet.head_direction,
                packet.head_vc,
                self.num_vc,
            )
            free = self._filter_free_vc(packet.head_node, escapes)
        return free

    def _filter_free_single(self, node: int, directions) -> List[tuple]:
        out = []
        for direction in directions:
            cid = self.channel_ids[(node, direction)]
            if self.channel_alloc[cid] is None:
                out.append((direction, cid))
        return out

    def _filter_free_vc(self, node: int, pairs) -> List[tuple]:
        out = []
        for direction, vc in pairs:
            base = self.channel_ids.get((node, direction))
            if base is None or not 0 <= vc < self.num_vc:
                continue
            cid = base + vc
            if self.channel_alloc[cid] is None:
                out.append((direction, cid))
        return out

    # -- channel-free wakeup sets ---------------------------------------------

    def _park(self, packet: Packet) -> None:
        """Park a header whose candidate set is fully busy: register it
        on every channel it could use (including eligible escapes) and
        skip it in arbitration until one of them frees.

        A parked header provably has zero free candidates, and its
        candidate set is a pure function of state that cannot change
        while it waits — so skipping its scan is unobservable."""
        node = packet.head_node
        dest = packet.dst
        in_direction = packet.head_direction
        if self.num_vc == 1:
            pairs = self._route_pairs(node, dest, in_direction)
            if packet.misroutes < self.config.misroute_limit:
                pairs = pairs + self._escape_pairs(node, dest, in_direction)
        else:
            in_vc = packet.head_vc
            pairs = self._vc_pairs(node, dest, in_direction, in_vc)
            if packet.misroutes < self.config.misroute_limit:
                pairs = pairs + self._vc_escape_pairs(
                    node, dest, in_direction, in_vc
                )
        watchers = self._channel_watchers
        for _, cid in pairs:
            ws = watchers.get(cid)
            if ws is None:
                ws = watchers[cid] = set()
            ws.add(packet)
        self._parked.add(packet)

    def _park_eject(self, packet: Packet) -> None:
        """Park a header waiting for its (busy) ejection port."""
        node = packet.head_node
        ws = self._eject_watchers.get(node)
        if ws is None:
            ws = self._eject_watchers[node] = set()
        ws.add(packet)
        self._parked.add(packet)

    def _free_channel(self, cid: int) -> None:
        """Release a runtime channel and wake every header watching it."""
        self.channel_alloc[cid] = None
        watchers = self._channel_watchers.pop(cid, None)
        if watchers:
            self._parked.difference_update(watchers)

    def _free_ejector(self, node: int) -> None:
        """Release an ejection port and wake every header watching it."""
        self.ejection_alloc[node] = None
        watchers = self._eject_watchers.pop(node, None)
        if watchers:
            self._parked.difference_update(watchers)

    def _wake_all(self) -> None:
        """Un-park everything (fault events change candidate masks)."""
        self._parked.clear()
        self._channel_watchers.clear()
        self._eject_watchers.clear()

    def _arbitrate(self, cycle: int) -> None:
        waiting = self.waiting
        if not waiting:
            return
        parked = self._parked
        if len(parked) >= len(waiting):
            return  # every waiting header is parked on a wakeup set
        channel_requests: Dict[int, List[Packet]] = {}
        eject_requests: Dict[int, List[Packet]] = {}
        emit = self._emit
        wakeups = self._wakeups
        candidate_channels = self._candidate_channels
        ejection_alloc = self.ejection_alloc
        output_policy = self.output_policy
        rng = self.rng
        for packet in waiting:
            if packet in parked:
                continue
            if packet.state is PacketState.EJECT_WAIT:
                if ejection_alloc[packet.head_node] is None:
                    eject_requests.setdefault(packet.head_node, []).append(packet)
                else:
                    if emit is not None:
                        self._note_blocked(packet, cycle)
                    if wakeups:
                        self._park_eject(packet)
                continue
            free = candidate_channels(packet)
            if not free:
                if emit is not None:
                    self._note_blocked(packet, cycle)
                if wakeups:
                    self._park(packet)
                continue
            directions = []
            for direction, _ in free:
                if direction not in directions:
                    directions.append(direction)
            direction = output_policy(directions, packet, rng)
            # Respect the algorithm's virtual-channel preference order.
            cid = next(c for d, c in free if d == direction)
            channel_requests.setdefault(cid, []).append(packet)
        for cid, contenders in channel_requests.items():
            winner = self.input_policy(contenders, rng)
            self._grant_channel(winner, cid)
        for node, contenders in eject_requests.items():
            winner = self.input_policy(contenders, rng)
            self.ejection_alloc[node] = winner
            winner.state = PacketState.EJECTING
            self.waiting.pop(winner, None)
            self.dormant.discard(winner)
            self.last_progress = cycle
            if emit is not None:
                self._blocked_noted.discard(winner)

    def _note_blocked(self, packet: Packet, cycle: int) -> None:
        """Emit one ``blocked`` event per stall episode (the packet must
        receive a grant before it counts as newly blocked again)."""
        if packet in self._blocked_noted:
            return
        self._blocked_noted.add(packet)
        self._emit(
            TraceEvent(BLOCKED, cycle, pid=packet.pid, node=packet.head_node)
        )

    def _grant_channel(self, packet: Packet, cid: int) -> None:
        if self.cycle >= self.config.warmup_cycles:
            waited = self.cycle - packet.header_wait_since
            if waited > self.result.max_grant_wait_cycles:
                self.result.max_grant_wait_cycles = waited
        channel = self.channels[cid]
        self.channel_alloc[cid] = packet
        packet.holds.append(ChannelHold(cid))
        packet.state = PacketState.MOVING
        packet.hops += 1
        if self.topology.distance(
            channel.dst, packet.dst
        ) >= self.topology.distance(channel.src, packet.dst):
            packet.misroutes += 1
        self.waiting.pop(packet, None)
        self.dormant.discard(packet)
        self.last_progress = self.cycle
        if self._emit is not None:
            self._blocked_noted.discard(packet)
            self._emit(
                TraceEvent(
                    CHANNEL_ALLOCATED,
                    self.cycle,
                    pid=packet.pid,
                    node=channel.src,
                    channel=cid,
                    direction=repr(channel.direction),
                )
            )

    # -- stage 3: movement -------------------------------------------------------

    def _move(self, cycle: int) -> None:
        buffer_depth = self.config.buffer_depth
        loads = None
        if self.channel_load is not None and cycle >= self.config.warmup_cycles:
            loads = self.channel_load
        series = None
        if (
            self._collectors is not None
            and self._collectors.channel_counts is not None
            and self.config.warmup_cycles <= cycle < self.config.generation_cycles
        ):
            series = self._collectors.channel_counts
        dormant = self.dormant
        if dormant:
            movers = [p for p in self.active if p not in dormant]
        else:
            movers = list(self.active)
        links_used = None
        if self.num_vc > 1 and movers:
            # Virtual channels share their physical link: one flit per
            # link per cycle.  Rotate service order for fairness.
            links_used = set()
            rotation = cycle % len(movers)
            movers = movers[rotation:] + movers[:rotation]
        for packet in movers:
            self._link_blocked = False
            moved = self._move_packet(
                packet, cycle, buffer_depth, loads, links_used, series
            )
            if moved:
                self.last_progress = cycle
            elif not self._link_blocked:
                # A worm's buffers are private, so a zero-move scan stays
                # zero until an arbitration grant un-parks the packet —
                # unless the link-sharing arbitration (not the worm's own
                # state) caused the stall, which can clear next cycle.
                dormant.add(packet)

    def _move_packet(
        self,
        packet: Packet,
        cycle: int,
        buffer_depth: int,
        loads=None,
        links_used=None,
        series=None,
    ) -> int:
        moved = 0
        holds = packet.holds
        # Ejection consumes one flit per cycle from the head-most buffer.
        if packet.state is PacketState.EJECTING and holds:
            head = holds[-1]
            if head.buffered > 0:
                head.buffered -= 1
                packet.ejected += 1
                moved += 1
        # Shift one flit across each held channel, head first, so an
        # unblocked worm advances one position per cycle.
        for i in range(len(holds) - 1, -1, -1):
            hold = holds[i]
            if hold.moved >= packet.length or hold.buffered >= buffer_depth:
                continue
            supply = (
                holds[i - 1].buffered > 0
                if i > 0
                else packet.launched < packet.length
            )
            if not supply:
                continue
            if links_used is not None:
                link = hold.channel_id // self.num_vc
                if link in links_used:
                    self._link_blocked = True
                    continue
                links_used.add(link)
            if i > 0:
                holds[i - 1].buffered -= 1
            else:
                packet.launched += 1
                if packet.injected is None:
                    packet.injected = cycle
                if packet.launched == packet.length:
                    self._release_injection(packet)
            hold.buffered += 1
            hold.moved += 1
            moved += 1
            if loads is not None:
                loads[hold.channel_id] += 1
            if series is not None:
                series[hold.channel_id] += 1
        # Header arrival at the next router.
        if packet.state is PacketState.MOVING and holds and holds[-1].moved > 0:
            channel = self.channels[holds[-1].channel_id]
            packet.head_node = channel.dst
            packet.head_direction = channel.direction
            packet.head_vc = holds[-1].channel_id % self.num_vc
            packet.header_wait_since = cycle
            packet.state = (
                PacketState.EJECT_WAIT
                if channel.dst == packet.dst
                else PacketState.ROUTING
            )
            self.waiting[packet] = None
            if self._emit is not None:
                self._emit(
                    TraceEvent(
                        HEADER_ADVANCE,
                        cycle,
                        pid=packet.pid,
                        node=channel.dst,
                        channel=holds[-1].channel_id,
                        direction=repr(channel.direction),
                    )
                )
        # Release drained channels at the tail (waking any header parked
        # on the freed channel).
        while holds and holds[0].moved >= packet.length and holds[0].buffered == 0:
            hold = holds.pop(0)
            self._free_channel(hold.channel_id)
            moved += 1  # a release is progress for the watchdog
        if packet.state is PacketState.EJECTING and packet.ejected == packet.length:
            self._deliver(packet, cycle)
            moved += 1
        return moved

    def _release_injection(self, packet: Packet) -> None:
        node = packet.src
        self.injection_busy[node] = None
        if self.queues[node]:
            self.pending_nodes.add(node)

    # -- fault injection, per-packet watchdog, and retries ---------------------

    def _apply_faults(self, cycle: int) -> None:
        """Fire the fault plan's scheduled changes for this cycle.

        Every fired event invalidates the routing-table and pair-cache
        entries of exactly the nodes whose candidate masks it touches,
        and wakes every parked header (their watch sets may be stale
        against the new masks)."""
        events = self._fault_schedule.pop(cycle, None)
        if not events:
            return
        state = self.fault_state
        assert state is not None
        for action, event in events:
            if self._emit is not None:
                self._emit(
                    TraceEvent(
                        FAULT_APPLIED,
                        cycle,
                        node=event.node,
                        direction=(
                            repr(event.direction)
                            if event.kind == CHANNEL_FAULT
                            else None
                        ),
                        cause=f"{action}:{event.kind}",
                    )
                )
            if event.kind == CHANNEL_FAULT:
                if action == FAIL:
                    state.fail_channel(event.node, event.direction)
                    self._kill_channel_holders(event, cycle)
                else:
                    state.heal_channel(event.node, event.direction)
            else:
                if action == FAIL:
                    state.fail_router(event.node)
                    self._kill_router_worms(event.node, cycle)
                    self.pending_nodes.discard(event.node)
                else:
                    state.heal_router(event.node)
                    if (
                        self.queues[event.node]
                        and self.injection_busy[event.node] is None
                    ):
                        self.pending_nodes.add(event.node)
            for node in self.routing_table.affected_nodes(
                self.topology, event.node,
                channel_only=(event.kind == CHANNEL_FAULT),
            ):
                self.routing_table.invalidate_node(node)
                self._pair_cache.pop(node, None)
        self._wake_all()

    def _kill_channel_holders(self, event, cycle: int) -> None:
        """Kill every worm holding a virtual channel of the failed link."""
        base = self.channel_ids.get((event.node, event.direction))
        if base is None:
            return  # plan references a channel this topology lacks
        for cid in range(base, base + self.num_vc):
            packet = self.channel_alloc[cid]
            if packet is not None:
                self._kill(packet, cycle, "link-failure")

    def _kill_router_worms(self, node: int, cycle: int) -> None:
        """Kill every worm whose header sits at, or whose body crosses,
        the failed router."""
        victims = []
        for packet in self.active:
            if packet.head_node == node:
                victims.append(packet)
                continue
            for hold in packet.holds:
                channel = self.channels[hold.channel_id]
                if channel.src == node or channel.dst == node:
                    victims.append(packet)
                    break
        for packet in victims:
            self._kill(packet, cycle, "router-failure")

    def _kill(
        self, packet: Packet, cycle: int, cause: str, killed: bool = True
    ) -> None:
        """Remove an in-flight worm: release every held resource, then
        account the drop (and schedule a retry if attempts remain)."""
        stall = cycle - packet.header_wait_since
        if stall > self.result.max_stall_age_cycles:
            self.result.max_stall_age_cycles = stall
        for hold in packet.holds:
            if self.channel_alloc[hold.channel_id] is packet:
                self._free_channel(hold.channel_id)
        packet.holds.clear()
        if self.injection_busy[packet.src] is packet:
            self._release_injection(packet)
        if self.ejection_alloc[packet.dst] is packet:
            self._free_ejector(packet.dst)
        self.active.pop(packet, None)
        self.waiting.pop(packet, None)
        self.dormant.discard(packet)
        self._parked.discard(packet)
        if self._emit is not None and killed:
            self._blocked_noted.discard(packet)
            self._emit(
                TraceEvent(
                    KILLED,
                    cycle,
                    pid=packet.pid,
                    node=packet.head_node,
                    cause=cause,
                )
            )
        self._finish_drop(packet, cycle, cause, killed=killed)

    def _finish_drop(
        self, packet: Packet, cycle: int, cause: str, killed: bool = False
    ) -> None:
        """Account one drop event; retry from the source if allowed."""
        packet.state = PacketState.DROPPED
        packet.drop_cause = cause
        self.last_progress = cycle  # freed resources are progress
        if self._emit is not None:
            self._blocked_noted.discard(packet)
            self._emit(
                TraceEvent(
                    DROPPED,
                    cycle,
                    pid=packet.pid,
                    node=packet.head_node,
                    cause=cause,
                )
            )
        result = self.result
        measured = packet.created >= self.config.warmup_cycles
        if measured:
            if killed:
                result.killed_packets += 1
            result.drops_by_cause[cause] = (
                result.drops_by_cause.get(cause, 0) + 1
            )
        if packet.attempt < self.config.max_retries:
            delay = min(
                self.config.retry_backoff_base << packet.attempt,
                self.config.retry_backoff_cap,
            )
            retry = Packet(
                self._next_pid, packet.src, packet.dst, packet.length,
                packet.created,
            )
            self._next_pid += 1
            retry.attempt = packet.attempt + 1
            self._retry_at.setdefault(cycle + delay, []).append(retry)
            if measured:
                result.retried_packets += 1
        elif measured:
            result.dropped_packets += 1

    def _requeue(self, packet: Packet) -> None:
        """Put a retry back into its source queue (no generation
        accounting — the original creation already counted)."""
        node = packet.src
        self.queues[node].append(packet)
        self._backlog += 1
        if self.injection_busy[node] is None:
            self.pending_nodes.add(node)

    def _check_packet_timeouts(self, cycle: int) -> None:
        """The per-packet watchdog: drop headers stalled beyond
        ``config.packet_timeout``, diagnosing each batch against the
        wait-for graph so circular waits are distinguished from dead-end
        stalls (e.g. a deterministic algorithm facing a dead channel)."""
        timeout = self.config.packet_timeout
        result = self.result
        victims = []
        for packet in self.waiting:
            age = cycle - packet.header_wait_since
            if age > result.max_stall_age_cycles:
                result.max_stall_age_cycles = age
            if age > timeout:
                victims.append(packet)
        if not victims:
            return
        from .deadlock import detect_deadlock  # deferred: avoids an import cycle

        report = detect_deadlock(self)
        circular = {p for cyc in report.cycles for p in cyc}
        for packet in victims:
            cause = (
                "timeout-deadlock" if packet in circular else "timeout-stall"
            )
            self._kill(packet, cycle, cause, killed=False)

    def _deliver(self, packet: Packet, cycle: int) -> None:
        packet.state = PacketState.DELIVERED
        packet.delivered = cycle
        self._free_ejector(packet.dst)
        self.active.pop(packet, None)
        self.dormant.discard(packet)
        if self._emit is not None:
            self._emit(
                TraceEvent(DELIVERED, cycle, pid=packet.pid, node=packet.dst)
            )
        if packet.created >= self.config.warmup_cycles:
            result = self.result
            result.delivered_packets += 1
            result.delivered_flits += packet.length
            result.total_latency_cycles += cycle - packet.created
            result.total_net_latency_cycles += cycle - (
                packet.injected if packet.injected is not None else packet.created
            )
            result.total_hops += packet.hops
            result.total_misroutes += packet.misroutes
            result.latency_by_length.setdefault(packet.length, []).append(
                cycle - packet.created
            )
            if self._collectors is not None:
                self._collectors.on_delivery(cycle - packet.created)
