"""Packets (messages) and their wormhole state.

The paper's messages are single packets of 10 or 200 flits.  A packet in
flight is a *worm*: a chain of held channels, each with up to
``buffer_depth`` of the packet's flits sitting in the input buffer at its
downstream end.  Channels are acquired at the head as the header flit
advances and released at the tail once the last flit has drained out of
the corresponding buffer.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional


class PacketState(Enum):
    QUEUED = "queued"  # waiting in the source processor's queue
    ROUTING = "routing"  # header at a router, waiting for an output channel
    MOVING = "moving"  # header crossing toward the next router
    EJECT_WAIT = "eject-wait"  # header at the destination, waiting for ejection
    EJECTING = "ejecting"  # draining into the destination processor
    DELIVERED = "delivered"
    DROPPED = "dropped"  # killed by a fault or the per-packet watchdog


class ChannelHold:
    """One channel held by a worm, plus the downstream-buffer occupancy."""

    __slots__ = ("channel_id", "moved", "buffered")

    def __init__(self, channel_id: int) -> None:
        self.channel_id = channel_id
        self.moved = 0  # flits that have crossed the physical link
        self.buffered = 0  # flits currently in the downstream buffer

    def __repr__(self) -> str:
        return f"Hold(ch={self.channel_id}, moved={self.moved}, buf={self.buffered})"


class Packet:
    """A message and its in-network wormhole state."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "length",
        "created",
        "injected",
        "delivered",
        "state",
        "holds",
        "launched",
        "ejected",
        "head_node",
        "head_direction",
        "head_vc",
        "header_wait_since",
        "misroutes",
        "hops",
        "attempt",
        "drop_cause",
    )

    def __init__(
        self, pid: int, src: int, dst: int, length: int, created: int
    ) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.length = length
        self.created = created  # cycle the processor generated the message
        self.injected: Optional[int] = None  # cycle the header left the source
        self.delivered: Optional[int] = None  # cycle the tail flit ejected
        self.state = PacketState.QUEUED
        self.holds: List[ChannelHold] = []
        self.launched = 0  # flits that have left the source processor
        self.ejected = 0  # flits consumed at the destination
        self.head_node = src  # router the header flit currently occupies
        self.head_direction = None  # direction of the header's last hop
        self.head_vc = None  # virtual channel of the header's last hop
        self.header_wait_since = created  # for FCFS input selection
        self.misroutes = 0  # nonminimal hops taken so far
        self.hops = 0
        self.attempt = 0  # 0 for the original send, k for the k-th retry
        self.drop_cause: Optional[str] = None  # why the packet was dropped

    @property
    def in_network(self) -> bool:
        return self.state not in (
            PacketState.QUEUED, PacketState.DELIVERED, PacketState.DROPPED
        )

    @property
    def flits_in_network(self) -> int:
        return self.launched - self.ejected

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.pid} {self.src}->{self.dst} len={self.length} "
            f"{self.state.value})"
        )
