"""Simulation configuration.

Defaults reproduce the experimental setup of Section 6 of the paper:

* channel bandwidth 20 flits/microsecond (one flit per cycle, so a cycle
  is 0.05 us);
* every input channel has a single-flit buffer;
* messages are one packet of 10 or 200 flits with equal probability;
* message interarrival times are negative-exponential (the per-cycle
  Bernoulli trial below is the discrete equivalent — geometric
  interarrivals converge to exponential at these rates);
* blocked messages queue at the source processor; arriving messages are
  consumed immediately (modulo the single ejection channel's bandwidth);
* *local first-come-first-served* input selection and *xy* (lowest
  dimension first) output selection;
* minimal routing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from ..faults.plan import FaultPlan

BACKENDS: Tuple[str, ...] = ("event", "array")
"""Engine backends selectable via :attr:`SimulationConfig.backend`."""


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one wormhole simulation run."""

    # -- paper parameters ---------------------------------------------------
    channel_bandwidth: float = 20.0
    """Flits per microsecond on every channel (paper: 20)."""

    buffer_depth: int = 1
    """Flits of buffering per input channel (paper: 1)."""

    virtual_channels: int = 1
    """Virtual channels per physical channel (paper: 1 — the whole point
    of the turn model is adaptivity *without* extra channels; values > 1
    support the extension algorithms such as dateline torus routing and
    escape-VC fully adaptive routing).  Virtual channels share their
    physical link's bandwidth: one flit per link per cycle."""

    message_lengths: Tuple[int, ...] = (10, 200)
    """Packet lengths in flits, sampled uniformly (paper: 10 or 200)."""

    offered_load: float = 1.0
    """Offered traffic per node, in flits per microsecond."""

    # -- run control ---------------------------------------------------------
    warmup_cycles: int = 2_000
    """Cycles simulated before measurement starts."""

    measure_cycles: int = 8_000
    """Cycles in the measurement window."""

    seed: int = 0
    """Seed for the run's private random generator."""

    drain_cycles: int = 0
    """Extra cycles simulated after the measurement window with message
    generation switched off, letting in-flight packets deliver (or the
    watchdogs drop them) so delivery ratios are not diluted by worms that
    simply ran out of simulated time.  Fault campaigns use this; the
    paper's throughput runs keep it 0."""

    input_selection: str = "fcfs"
    """Arbitration among headers contending for one output channel
    (paper: local first-come-first-served)."""

    output_selection: str = "xy"
    """Choice among multiple available output channels (paper: the
    channel along the lowest dimension).  Any name from
    :func:`repro.simulation.selection.output_policy_names`, including
    the congestion-aware policies of :mod:`repro.routing.selection`
    (see docs/SELECTION.md)."""

    selection_threshold: int = 2
    """Occupancy (buffered flits at the preferred candidate's
    downstream router) at which the ``threshold`` output-selection
    policy abandons the static xy preference.  Other policies ignore
    it."""

    misroute_limit: int = 0
    """Maximum nonminimal (escape) hops per packet; 0 = minimal routing,
    as in all of the paper's simulations."""

    deadlock_threshold: int = 5_000
    """Cycles without any flit movement (while packets are in flight)
    after which the run aborts with a deadlock report."""

    queue_sample_period: int = 100
    """Cycles between samples of the source-queue backlog."""

    track_channel_load: bool = False
    """Record per-channel flit counts during the measurement window
    (exposed as ``SimulationResult.channel_flits``; used by the
    channel-load heatmaps)."""

    max_queue_per_node: int = 500
    """Safety valve: stop generating at a node whose backlog exceeds this
    (the run is long past saturation by then)."""

    # -- observability (see docs/OBSERVABILITY.md) ----------------------------

    channel_series_period: int = 0
    """Bucket width, in cycles, of the per-channel utilization time
    series collected during the measurement window (exposed as
    ``SimulationResult.channel_util_series``).  0 disables the series;
    the end-of-run totals remain available via ``track_channel_load``."""

    collect_router_blocked: bool = False
    """Count, per router, the measured cycles it hosted a header waiting
    for an output grant or the ejection port (exposed as
    ``SimulationResult.router_blocked_cycles``)."""

    collect_latency_histogram: bool = False
    """Record the exact creation-to-delivery latency histogram of
    measured packets (exposed as ``SimulationResult.latency_histogram``
    with exact nearest-rank percentiles)."""

    # -- fault injection and graceful degradation ----------------------------

    fault_plan: FaultPlan = FaultPlan()
    """Schedule of channel/router failures applied while the simulation
    runs (see :mod:`repro.faults`).  The default empty plan leaves the
    engine bit-identical to a fault-free build."""

    packet_timeout: int = 0
    """Per-packet watchdog: a header that has waited this many cycles
    without a grant is dropped (with a wait-for-graph diagnosis).  0
    disables the watchdog — the paper's fault-free runs rely on the
    global ``deadlock_threshold`` alone."""

    max_retries: int = 0
    """Source retries for dropped/killed packets.  After a drop, the
    source re-queues a fresh copy after a bounded exponential backoff;
    once the attempts are exhausted the packet is permanently lost."""

    retry_backoff_base: int = 32
    """Backoff before retry attempt ``k`` is ``min(base << k, cap)``
    cycles (deterministic — retries never perturb the run's RNG)."""

    retry_backoff_cap: int = 2_048
    """Upper bound on the retry backoff delay, in cycles."""

    # -- engine backend -------------------------------------------------------

    backend: str = "event"
    """Engine implementation that executes this operating point:
    ``"event"`` (the default event-driven
    :class:`~repro.simulation.engine.WormholeSimulator`) or ``"array"``
    (the numpy struct-of-arrays
    :class:`~repro.simulation.array_engine.ArrayWormholeSimulator`,
    which also powers :class:`~repro.simulation.array_engine.
    BatchSimulator`).  Both backends are proven equivalent by
    ``tests/simulation/test_engine_equivalence.py``; the array backend
    needs the optional ``numpy`` dependency (``pip install
    repro[array]``).  Part of the cache key, like every other field."""

    def __post_init__(self) -> None:
        if self.channel_bandwidth <= 0:
            raise ValueError("channel_bandwidth must be positive")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be at least 1 flit")
        if self.virtual_channels < 1:
            raise ValueError("virtual_channels must be at least 1")
        if not self.message_lengths or any(
            length < 1 for length in self.message_lengths
        ):
            raise ValueError("message_lengths must be positive")
        if self.offered_load < 0:
            raise ValueError("offered_load must be non-negative")
        if self.warmup_cycles < 0 or self.measure_cycles <= 0:
            raise ValueError("cycle counts must be positive")
        if self.drain_cycles < 0:
            raise ValueError("drain_cycles must be non-negative")
        if self.misroute_limit < 0:
            raise ValueError("misroute_limit must be non-negative")
        if self.selection_threshold < 0:
            raise ValueError("selection_threshold must be non-negative")
        # Deferred import: config loads before the selection module
        # inside the simulation package's own import sequence.
        from .selection import input_policy_names, output_policy_names

        if self.output_selection not in output_policy_names():
            raise ValueError(
                f"unknown output_selection {self.output_selection!r}; "
                f"known: {output_policy_names()}"
            )
        if self.input_selection not in input_policy_names():
            raise ValueError(
                f"unknown input_selection {self.input_selection!r}; "
                f"known: {input_policy_names()}"
            )
        if self.deadlock_threshold <= 0:
            raise ValueError("deadlock_threshold must be positive")
        if self.queue_sample_period <= 0:
            raise ValueError("queue_sample_period must be positive")
        if self.channel_series_period < 0:
            raise ValueError(
                "channel_series_period must be non-negative (0 disables)"
            )
        if isinstance(self.fault_plan, dict):
            object.__setattr__(
                self, "fault_plan", FaultPlan.from_dict(self.fault_plan)
            )
        if not isinstance(self.fault_plan, FaultPlan):
            raise ValueError(
                f"fault_plan must be a FaultPlan, got {self.fault_plan!r}"
            )
        if self.packet_timeout < 0:
            raise ValueError("packet_timeout must be non-negative (0 disables)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_base <= 0 or self.retry_backoff_cap <= 0:
            raise ValueError("retry backoff base and cap must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {BACKENDS}"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def cycle_time_us(self) -> float:
        """Duration of one simulator cycle in microseconds."""
        return 1.0 / self.channel_bandwidth

    @property
    def mean_message_length(self) -> float:
        return sum(self.message_lengths) / len(self.message_lengths)

    @property
    def messages_per_cycle(self) -> float:
        """Per-node probability of generating a message each cycle."""
        flits_per_cycle = self.offered_load / self.channel_bandwidth
        return flits_per_cycle / self.mean_message_length

    @property
    def generation_cycles(self) -> int:
        """Cycles during which sources generate traffic."""
        return self.warmup_cycles + self.measure_cycles

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles

    def with_load(self, offered_load: float) -> "SimulationConfig":
        """Copy of this config at a different offered load."""
        from dataclasses import replace

        return replace(self, offered_load=offered_load)

    def with_seed(self, seed: int) -> "SimulationConfig":
        from dataclasses import replace

        return replace(self, seed=seed)

    def with_selection(
        self,
        output_selection: str,
        selection_threshold: Optional[int] = None,
    ) -> "SimulationConfig":
        """Copy of this config under a different output-selection
        policy (see docs/SELECTION.md)."""
        from dataclasses import replace

        kwargs: Dict[str, object] = {"output_selection": output_selection}
        if selection_threshold is not None:
            kwargs["selection_threshold"] = selection_threshold
        return replace(self, **kwargs)

    def with_backend(self, backend: str) -> "SimulationConfig":
        """Copy of this config executed by a different engine backend."""
        from dataclasses import replace

        return replace(self, backend=backend)

    def with_faults(self, fault_plan: FaultPlan) -> "SimulationConfig":
        """Copy of this config under a different fault schedule."""
        from dataclasses import replace

        return replace(self, fault_plan=fault_plan)

    def with_observability(
        self,
        channel_series_period: int = 100,
        collect_router_blocked: bool = True,
        collect_latency_histogram: bool = True,
    ) -> "SimulationConfig":
        """Copy of this config with the metrics collectors switched on
        (the ``repro trace`` defaults; see docs/OBSERVABILITY.md)."""
        from dataclasses import replace

        return replace(
            self,
            channel_series_period=channel_series_period,
            collect_router_blocked=collect_router_blocked,
            collect_latency_histogram=collect_latency_histogram,
        )

    # -- stable serialization ------------------------------------------------
    #
    # The experiment runner keys its on-disk result cache by a content
    # hash of the full operating point; these helpers give the config a
    # canonical, field-order-independent byte representation so the hash
    # is stable across processes and Python versions.

    def to_dict(self) -> Dict[str, object]:
        """All fields as JSON-serializable values (tuples become lists)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, FaultPlan):
                value = value.to_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(data)
        if "message_lengths" in kwargs:
            kwargs["message_lengths"] = tuple(kwargs["message_lengths"])  # type: ignore[arg-type]
        if isinstance(kwargs.get("fault_plan"), dict):
            kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def stable_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json`."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
