"""Runtime deadlock diagnostics: the wait-for graph of a live simulation.

The engine's watchdog detects total silence; this module explains it.  A
packet whose header waits for channels all held by other packets *waits
for* those packets; a cycle in that relation is a circular wait — exactly
the Figure 1 scenario.  Used by the deadlock demonstrations and by the
integration tests that show the paper's prohibition counterexamples
(Figure 4) deadlocking in practice while the turn-model algorithms never
do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..verification.graph import DiGraph
from .engine import WormholeSimulator
from .packet import Packet, PacketState


@dataclass
class DeadlockReport:
    """A snapshot of the circular waits in a simulator."""

    waiting_packets: int
    blocked_packets: int
    cycles: List[List[Packet]]

    @property
    def deadlocked(self) -> bool:
        return bool(self.cycles)

    def describe(self, topology=None) -> str:
        if not self.cycles:
            return "no circular wait"
        lines = [f"{len(self.cycles)} circular wait(s):"]
        for cyc in self.cycles:
            hops = " -> ".join(
                f"#{p.pid}@{p.head_node}" for p in cyc
            )
            lines.append(f"  {hops} -> #{cyc[0].pid}")
        return "\n".join(lines)


def build_wait_for_graph(sim: WormholeSimulator) -> DiGraph:
    """Packet-level wait-for graph of the simulator's current state.

    ``P -> Q`` when P's header is waiting and *every* channel P could use
    next is held by some packet, Q being one of the holders.  (Headers
    with at least one free candidate are not waiting on anyone — they
    will be granted within a cycle.)
    """
    graph: DiGraph = DiGraph()
    for packet in sim.waiting:
        if packet.state is PacketState.EJECT_WAIT:
            holder = sim.ejection_alloc[packet.head_node]
            if holder is not None and holder is not packet:
                graph.add_edge(packet, holder)
            continue
        if sim.num_vc == 1:
            wanted = [
                (direction, 0)
                for direction in sim.algorithm.candidates(
                    packet.head_node, packet.dst, packet.head_direction
                )
            ]
        else:
            wanted = sim.algorithm.vc_candidates(
                packet.head_node,
                packet.dst,
                packet.head_direction,
                packet.head_vc,
                sim.num_vc,
            )
        holders = []
        blocked = True
        for direction, vc in wanted:
            base = sim.channel_ids.get((packet.head_node, direction))
            if base is None or not 0 <= vc < sim.num_vc:
                continue
            holder = sim.channel_alloc[base + vc]
            if holder is None:
                blocked = False
                break
            holders.append(holder)
        if blocked:
            for holder in holders:
                if holder is not packet:
                    graph.add_edge(packet, holder)
    return graph


def detect_deadlock(sim: WormholeSimulator) -> DeadlockReport:
    """Report the circular waits (if any) in the simulator right now."""
    graph = build_wait_for_graph(sim)
    cycles = graph.cyclic_components()
    blocked = graph.num_nodes()
    return DeadlockReport(
        waiting_packets=len(sim.waiting),
        blocked_packets=blocked,
        cycles=[list(c) for c in cycles],
    )
