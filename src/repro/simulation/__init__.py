"""Flit-level wormhole network simulation (the Section 6 apparatus)."""

from .array_engine import (
    ArrayWormholeSimulator,
    BatchSimulator,
    make_simulator,
    numpy_available,
    vectorized_envelope,
)
from .config import BACKENDS, SimulationConfig
from .deadlock import DeadlockReport, build_wait_for_graph, detect_deadlock
from .engine import WormholeSimulator
from .metrics import SimulationResult
from .packet import ChannelHold, Packet, PacketState
from .selection import (
    INPUT_POLICIES,
    OUTPUT_POLICIES,
    fcfs_input_selection,
    get_input_policy,
    get_output_policy,
    input_policy_names,
    make_output_policy,
    output_policy_names,
    random_input_selection,
    random_output_selection,
    xy_output_selection,
    zigzag_output_selection,
)

__all__ = [
    "ArrayWormholeSimulator",
    "BACKENDS",
    "BatchSimulator",
    "ChannelHold",
    "DeadlockReport",
    "INPUT_POLICIES",
    "OUTPUT_POLICIES",
    "Packet",
    "PacketState",
    "SimulationConfig",
    "SimulationResult",
    "WormholeSimulator",
    "build_wait_for_graph",
    "detect_deadlock",
    "fcfs_input_selection",
    "get_input_policy",
    "get_output_policy",
    "input_policy_names",
    "make_output_policy",
    "make_simulator",
    "numpy_available",
    "output_policy_names",
    "random_input_selection",
    "random_output_selection",
    "vectorized_envelope",
    "xy_output_selection",
    "zigzag_output_selection",
]
