"""The batched struct-of-arrays engine backend (``backend="array"``).

ROADMAP item 2: the event-driven engine (PR 4) still advances one
Python ``Packet`` object at a time; this backend packs channel
allocation, buffer occupancy, header position/direction, and per-packet
timers into numpy struct-of-arrays and advances **every in-flight worm
of every batched operating point** per cycle with boolean-mask kernels.
:class:`BatchSimulator` stacks B independent operating points (sweep
points, seeds, fault trials) along one concatenated arena so a full
figure sweep is a handful of numpy passes per cycle instead of
B Python interpreter loops.

**Equivalence contract** (proved by the three-way suite in
``tests/simulation/test_engine_equivalence.py`` and the golden
fingerprints; see docs/SIMULATOR.md for the per-feature table): every
feature is *bit-identical* to the event engine.  Operating points inside
the *vectorized envelope* — any virtual-channel count, any selection
policy from ``repro.routing.selection`` (``xy``, ``round-robin``,
``max-credits``, ``threshold``) with ``fcfs`` input selection — run
arbitration and movement as numpy kernels whose update order provably
replays the scalar engine's (head-first flit shifting via a rank walk
over disjoint chains; two-phase arbitration via a lexsort that computes
exactly the local-FCFS winner per contested channel).  Fault plans,
per-packet stall watchdogs with bounded-backoff retries, and the
streaming collectors (channel-util series, router blocked cycles,
latency histograms) are vectorized too: failures become per-cycle dead
masks over the LUT candidate arrays, watchdog ages are array compares,
and collector counters are scatter-adds over the shared arena.
Multi-VC points (plain multi-VC mesh, torus dateline classes, escape-VC
adaptive) widen the arena with a runtime-channel axis — one lane per
(physical channel, vc) — flatten the per-VC-class candidate sets of
``repro.routing.virtual`` into the same integer LUTs, reduce the
(direction, vc) pair columns to the engine's per-direction first-free
pair before selection, and serialise the one-flit-per-physical-link
arbitration with the run-rank/lexsort technique so the engine's rotated
per-member movement order is replayed exactly.  ``PhaseProfiler`` hooks
no longer demote either: profiled runs time the kernel passes
(faults/retries/generate/inject/allocate/advance/watchdog/collect)
around unchanged state transitions, so they stay bit-identical.  Points
outside the envelope (legacy policies that draw from the RNG, trace
sinks, LUTs past the entry cap) fall back to driving a cycle-locked
:class:`~repro.simulation.engine.WormholeSimulator` member — the same
code, therefore trivially bit-identical — so the whole configuration
space is supported and the batch API is uniform.
:func:`demotion_reasons` names the gate(s) any point failed, and
:class:`BatchSimulator` counts demotions per reason so silent fast-path
loss is visible (``repro sweep/faults/bench --backend array`` print the
coverage fraction).

Generation and injection stay scalar per member even in the vectorized
envelope: they are event-driven (arrival calendar) and must replay the
member's ``random.Random(seed)`` draw sequence exactly.  Both engines
draw nothing on the hot path of the envelope (none of the vectorized
policies touch the RNG), so the streams stay aligned.

numpy is an optional dependency (``pip install repro[array]``); the
module imports with numpy absent and every entry point raises a clear
error instead.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

try:  # numpy is the optional `repro[array]` extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the minimal-install job
    np = None  # type: ignore[assignment]

from ..faults.plan import CHANNEL_FAULT, FAIL
from ..routing.table import RoutingTable
from ..verification.graph import DiGraph
from .config import SimulationConfig
from .engine import WormholeSimulator
from .metrics import SimulationResult
from .packet import Packet

#: Arena codes for ``pk_state`` (a packet leaves the arena as ``_DONE``).
_ROUTING = 0
_MOVING = 1
_EJECT_WAIT = 2
_EJECTING = 3
_DONE = 4

#: Candidate lookup tables beyond this many int32 entries are not built;
#: the affected members fall back to the scalar path instead of paying
#: hundreds of MB per (algorithm, topology) group.
_LUT_ENTRY_CAP = 33_554_432

#: ``ch_warm`` sentinel for channels whose member does not track load
#: (also the generic "never due" sentinel for per-member cycle timers).
_NEVER = 1 << 60

#: ``ch_mb`` packs per-channel counters into one int64: flits moved in
#: the high 32 bits, buffer occupancy in the low 32.
_MB_LOW = (1 << 32) - 1
_MB_HI1 = 1 << 32
_MB_BOTH = _MB_HI1 | 1

#: Output-selection policies the kernels replay exactly (the LUT columns
#: are (dim, sign)-sorted and direction-deduped, which is precisely the
#: ``sorted(options)`` every one of these policies reduces to; none of
#: them draws from the RNG).  The legacy ``random``/``zigzag`` selectors
#: stay on the scalar member path.
_POLICY_CODES: Dict[str, int] = {
    "xy": 0,
    "round-robin": 1,
    "max-credits": 2,
    "threshold": 3,
}

_SLOT_FIELDS: Tuple[Tuple[str, int, str], ...] = (
    ("pk_sim", 0, "int64"),
    ("pk_len", 0, "int64"),
    ("pk_src", 0, "int64"),
    ("pk_dst", 0, "int64"),
    ("pk_pid", 0, "int64"),
    ("pk_created", 0, "int64"),
    ("pk_state", _DONE, "int64"),
    ("pk_head_node", 0, "int64"),
    ("pk_head_dir", 0, "int64"),
    ("pk_wait", 0, "int64"),
    # Waiting-order sequence number: assigned at injection and at every
    # header arrival, so ascending ``pk_wseq`` over a member's waiting
    # headers is exactly the event engine's insertion-ordered ``waiting``
    # dict — the invocation order of stateful selection policies and the
    # kill order of the per-packet watchdog.
    ("pk_wseq", 0, "int64"),
    ("pk_attempt", 0, "int64"),
    ("pk_head_ch", -1, "int64"),
    ("pk_tail_ch", -1, "int64"),
    ("pk_launched", 0, "int64"),
    ("pk_ejected", 0, "int64"),
    ("pk_injected", -1, "int64"),
    ("pk_hops", 0, "int64"),
    ("pk_mis", 0, "int64"),
    ("pk_depth", 0, "int64"),
    # Virtual channel of the header's last hop (0 before injection and
    # for every single-VC member) — the ``in_vc`` axis of the VC routing
    # LUT rows.
    ("pk_head_vc", 0, "int64"),
    # Rotated service rank of the owning worm within its member's mover
    # list this cycle (the event engine's ``cycle % len(movers)``
    # rotation); valid only for multi-VC members, recomputed per cycle.
    ("pk_order", 0, "int64"),
    ("pk_dormant", 0, "bool"),
    # Scratch flag for the link-arbitration wave loop (per-worm
    # "confirmed" marker; reset before each movement pass returns).
    ("pk_flag", 0, "bool"),
    # Arbitration parking (the vectorized analog of the event engine's
    # channel-free wakeup sets): a ROUTING header with zero free
    # candidates skips arbitration until one of its recorded wait
    # channels (``pk_wchan``) is released.
    ("pk_arbwait", 0, "bool"),
    # Scratch: transiently marks slots whose worm shifted a flit this
    # cycle (always reset to False before the kernel returns).
    ("pk_scratch", 0, "bool"),
)


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "the 'array' engine backend requires numpy, which is not "
            "installed; install the optional extra (pip install "
            "'repro[array]' or pip install numpy) or use the default "
            "backend='event'"
        )


def demotion_reasons(config: SimulationConfig) -> Tuple[str, ...]:
    """Why this operating point cannot run on the vectorized kernels.

    Empty for points inside the vectorized envelope.  *Every* applicable
    config gate is reported (the scan does not stop at the first one):
    ``"output-selection"`` for the legacy ``random``/``zigzag``
    selectors, ``"input-selection"`` for non-``fcfs`` input selection.
    Runtime-only gates (trace sinks, the LUT entry cap) are appended by
    :class:`BatchSimulator` — also cumulatively — and surface in its
    ``demotion_counts``.  Pure python — callable without numpy
    installed.
    """
    reasons: List[str] = []
    if config.output_selection not in _POLICY_CODES:
        reasons.append("output-selection")
    if config.input_selection != "fcfs":
        reasons.append("input-selection")
    return tuple(reasons)


def vectorized_envelope(config: SimulationConfig) -> bool:
    """Whether this operating point runs on the vectorized kernels.

    Since the envelope widening (fault plans, selection policies,
    watchdogs/retries, collectors, and multi-VC operation — dateline
    classes and escape channels included — are all vectorized now) only
    two config gates remain: a legacy output-selection policy
    (``random``/``zigzag`` — they draw from the RNG mid-arbitration) or
    a non-``fcfs`` input selection.  Outside the envelope the array
    backend still accepts the point but drives it through a cycle-locked
    event-engine member (bit-identical by construction; see the module
    docstring and docs/SIMULATOR.md).
    """
    return not demotion_reasons(config)


def _lut_entries(topology, num_vc: int) -> int:
    """LUT entry count for an (algorithm, topology, num_vc) group —
    computable without building the group (the ``"lut-cap"`` demotion
    gate must be reportable even alongside other gates, when no group
    is ever constructed)."""
    dirs = {c.direction for c in topology.channels()}
    n = topology.num_nodes
    rows = n * n * (len(dirs) + 1) * num_vc
    return rows * len(dirs) * num_vc


def _run_ranks(sorted_keys):
    """Rank of each element within its run of equal values (the input
    must already be sorted); used to serialise per-member policy-pointer
    updates inside one vectorized pass."""
    first = np.empty(sorted_keys.size, dtype=bool)
    first[0] = True
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.nonzero(first)[0]
    run_id = np.cumsum(first) - 1
    return np.arange(sorted_keys.size) - starts[run_id]


class _GroupTables:
    """Per-(algorithm kind, topology shape, VC class) integer routing LUTs.

    Flattens the memoised :class:`~repro.routing.table.RoutingTable`
    answers into ``[node x dest x (in_direction+1)] -> K`` local channel
    ids (xy-sorted so *first free wins* is exactly the paper's xy output
    selection), plus a parallel misroute flag per entry (the engine's
    ``distance(ch.dst, dest) >= distance(ch.src, dest)`` test).  Rows
    build lazily, only for decisions that actually occur.  Shared by
    every batch member with the same algorithm class+name, topology
    class+shape, and ``virtual_channels`` — routing here is a pure
    function of those (the turn-model algorithms are stateless by
    construction, and the VC algorithms key their candidate sets only on
    the arrival VC class).  Fault masking never touches the tables:
    failures are a runtime ``ch_dead`` mask over the candidate columns
    (the event engine's order-preserving ``FaultAwareRouting`` filter
    commutes with the dedup+sort used here, because only the candidate
    *set* is observable).

    **Multi-VC layout** (``num_vc > 1``): rows gain an arrival-VC axis —
    ``row = ((node*N + dest)*(num_dirs+1) + diridx)*num_vc + in_vc`` with
    ``in_vc = 0`` for pre-injection headers (the engine queries with
    ``in_vc=None`` there, and ``pk_head_vc`` starts at 0) — and columns
    hold up to ``K = num_dirs*num_vc`` *(direction, vc)* pairs in the
    algorithm's ``vc_candidates`` order (NOT sorted: the VC preference
    within a direction is order-significant — the engine grants the
    first free candidate of the selected direction).  ``cand`` stores
    member-local *runtime* channel ids (``physical*num_vc + vc``), and a
    parallel ``cdirk`` column gives each pair's dense direction key
    (``dir_index``, 1-based) so arbitration can collapse the pair
    columns to the direction-level ``sorted(options)`` view every
    selection policy consumes.  Invalid pairs (no such physical channel
    at a mesh edge, or ``vc`` out of range) are skipped exactly like the
    engine's ``_vc_pairs``.  Escape tables allocate lazily — many VC
    groups never exhaust their minimal candidates.
    """

    def __init__(self, algorithm, topology, num_vc: int = 1) -> None:
        self.table = RoutingTable(algorithm)
        self.topology = topology
        self.num_vc = num_vc
        self._dist: Dict[Tuple[int, int], int] = {}
        physical = list(topology.channels())
        dirs = sorted({c.direction for c in physical})
        self.dir_index = {d: i + 1 for i, d in enumerate(dirs)}
        self.index_dir: List = [None] + dirs
        self.num_dirs = len(dirs)
        self.N = topology.num_nodes
        self.K = self.num_dirs * num_vc
        self.channels = physical
        self.channel_ids = {
            (c.src, c.direction): i for i, c in enumerate(physical)
        }
        rows = self.N * self.N * (self.num_dirs + 1) * num_vc
        self.rows = rows
        self.ok = rows * self.K <= _LUT_ENTRY_CAP
        if self.ok:
            if num_vc == 1:
                self.cand = np.full((rows, self.K), -1, dtype=np.int64)
                self.cmis = np.zeros((rows, self.K), dtype=np.int64)
                self.cbuilt = np.zeros(rows, dtype=bool)
                self.esc = np.full((rows, self.K), -1, dtype=np.int64)
                self.emis = np.zeros((rows, self.K), dtype=np.int64)
                self.ebuilt = np.zeros(rows, dtype=bool)
                self.cdirk = self.edirk = None
            else:
                # Narrow dtypes: VC tables are num_vc^2 larger than the
                # single-VC ones (5.2M rows x 8 cols for a 16x16 torus
                # at num_vc=2), so int32 ids + int8 flags keep a cached
                # group tens of MB instead of hundreds.
                self.cand = np.full((rows, self.K), -1, dtype=np.int32)
                self.cmis = np.zeros((rows, self.K), dtype=np.int8)
                self.cdirk = np.zeros((rows, self.K), dtype=np.int8)
                self.cbuilt = np.zeros(rows, dtype=bool)
                self.esc = self.emis = self.edirk = None
                self.ebuilt = np.zeros(rows, dtype=bool)

    def key_of(self, algorithm, topology) -> tuple:
        return _group_key(algorithm, topology, self.num_vc)

    def ensure_rows(self, rows, escape: bool) -> None:
        built = self.ebuilt if escape else self.cbuilt
        hit = built[rows]
        if hit.all():
            return
        if escape and self.esc is None:
            self.esc = np.full((self.rows, self.K), -1, dtype=np.int32)
            self.emis = np.zeros((self.rows, self.K), dtype=np.int8)
            self.edirk = np.zeros((self.rows, self.K), dtype=np.int8)
        build = self._build_vc_row if self.num_vc > 1 else self._build_row
        for r in np.unique(rows[~hit]):
            build(int(r), escape)

    def _misroute(self, cid: int, dest: int) -> int:
        channel = self.channels[cid]
        memo = self._dist
        distance = self.topology.distance
        near = memo.get((channel.dst, dest))
        if near is None:
            near = distance(channel.dst, dest)
            memo[(channel.dst, dest)] = near
        far = memo.get((channel.src, dest))
        if far is None:
            far = distance(channel.src, dest)
            memo[(channel.src, dest)] = far
        return int(near >= far)

    def _build_row(self, row: int, escape: bool) -> None:
        span = self.num_dirs + 1
        diridx = row % span
        nd = row // span
        dest = nd % self.N
        node = nd // self.N
        in_direction = self.index_dir[diridx]
        if escape:
            dirs = self.table.escape_candidates(node, dest, in_direction)
            out, mis, built = self.esc, self.emis, self.ebuilt
        else:
            dirs = self.table.candidates(node, dest, in_direction)
            out, mis, built = self.cand, self.cmis, self.cbuilt
        # First-appearance dedup (as the engine does) then xy order, so
        # "first free entry" is the xy output-selection winner.
        ordered = sorted(dict.fromkeys(dirs), key=lambda d: (d.dim, d.sign))
        for j, d in enumerate(ordered):
            cid = self.channel_ids[(node, d)]
            out[row, j] = cid
            mis[row, j] = self._misroute(cid, dest)
        built[row] = True

    def _build_vc_row(self, row: int, escape: bool) -> None:
        num_vc = self.num_vc
        rest, vcslot = divmod(row, num_vc)
        span = self.num_dirs + 1
        diridx = rest % span
        nd = rest // span
        dest = nd % self.N
        node = nd // self.N
        in_direction = self.index_dir[diridx]
        # Pre-injection headers have head_vc = None in the engine (the
        # arena keeps pk_head_vc = 0 and only row vcslot 0 is reachable
        # while pk_head_dir == 0), so replay the memo key exactly.
        in_vc = vcslot if diridx else None
        if escape:
            pairs = self.table.vc_escape_candidates(
                node, dest, in_direction, in_vc, num_vc
            )
            out, mis, dirk, built = self.esc, self.emis, self.edirk, self.ebuilt
        else:
            pairs = self.table.vc_candidates(
                node, dest, in_direction, in_vc, num_vc
            )
            out, mis, dirk, built = self.cand, self.cmis, self.cdirk, self.cbuilt
        j = 0
        for d, vc in pairs:
            base = self.channel_ids.get((node, d))
            if base is None or not 0 <= vc < num_vc:
                continue
            out[row, j] = base * num_vc + vc
            mis[row, j] = self._misroute(base, dest)
            dirk[row, j] = self.dir_index[d]
            j += 1
        built[row] = True


def _group_key(algorithm, topology, num_vc: int = 1) -> tuple:
    # Routing here is a pure function of the algorithm's class + name
    # (+ its TurnModel, for the turn-restricted family — a frozen,
    # hashable dataclass), the topology's class + shape, and the VC
    # class count (dateline/escape candidate sets change with num_vc, so
    # leaving it out would alias their LUTs): that is the contract every
    # algorithm in the registry satisfies, and it is what lets LUTs be
    # shared across members and across batches.
    return (
        type(algorithm),
        getattr(algorithm, "name", None),
        getattr(algorithm, "model", None),
        type(topology),
        tuple(topology.dims),
        num_vc,
    )


#: Cross-batch LUT cache: lazily-built rows survive from one
#: ``BatchSimulator`` to the next in the same process, so a sweep of many
#: batches pays each routing-table flattening once.  Bounded: oldest
#: groups are evicted (in-flight cores keep their own references).
_GROUP_CACHE: Dict[tuple, "_GroupTables"] = {}
_GROUP_CACHE_MAX = 8


def _shared_group(algorithm, topology, num_vc: int = 1) -> "_GroupTables":
    key = _group_key(algorithm, topology, num_vc)
    group = _GROUP_CACHE.get(key)
    if group is None:
        group = _GroupTables(algorithm, topology, num_vc)
        _GROUP_CACHE[key] = group
        while len(_GROUP_CACHE) > _GROUP_CACHE_MAX:
            del _GROUP_CACHE[next(iter(_GROUP_CACHE))]
    return group


class _FastMember:
    """One vectorized-envelope operating point inside a batch.

    Owns the scalar per-member state (RNG, arrival calendar, source
    queues, injection ports, fault/retry schedules, result accounting)
    — a faithful port of the event engine's generation/injection/fault
    stages — while arbitration and movement for its worms run inside
    the core's shared numpy kernels.
    """

    fast = True

    def __init__(
        self, core: "_BatchCore", fidx: int, algorithm, pattern,
        config: SimulationConfig, profiler=None,
    ) -> None:
        import random

        self.core = core
        self.fidx = fidx
        self.algorithm = algorithm
        self.pattern = pattern
        self.config = config
        self.profiler = profiler
        self.topology = algorithm.topology
        self.rng = random.Random(config.seed)
        self.num_vc = config.virtual_channels
        # The arena is runtime-channel granular: one lane per
        # (physical channel, vc), matching the event engine's channel
        # numbering ``physical_index * num_vc + vc``.
        self.num_ch = len(self.core_channels()) * self.num_vc
        self.total = config.total_cycles
        self.frozen = False
        self.inflight = 0
        self._last_cycle = 0
        self._next_pid = 0
        self._backlog = 0

        self.queues: List[Deque[Packet]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.injection_busy: List[int] = [-1] * self.topology.num_nodes
        self.pending_nodes: set = set()
        self.sources = list(pattern.active_sources(self.topology))
        self.next_arrival: Dict[int, float] = {}
        self._arrival_heap: List[Tuple[float, int]] = []
        rate = config.messages_per_cycle
        if rate > 0:
            for index, node in enumerate(self.sources):
                when = self.rng.expovariate(rate)
                self.next_arrival[node] = when
                self._arrival_heap.append((when, index))
            heapq.heapify(self._arrival_heap)

        # Fault state (the scalar twin of the core's ``ch_dead`` mask —
        # the sets replay FaultState's exact add/discard sequence) and
        # the retry calendar, both empty for fault-free members.
        self.fault_schedule: Dict[int, list] = (
            {} if config.fault_plan.is_empty else config.fault_plan.schedule()
        )
        self.dead_routers: set = set()
        self.dead_channels: set = set()
        self._retry_at: Dict[int, List[Packet]] = {}
        self._lat_hist: Dict[int, int] = {}
        self._series_buckets: List[List[int]] = []

        # Assigned by the core once all members are known.
        self.ch_off = 0
        self.node_off = 0

        self.result = SimulationResult(
            algorithm=algorithm.name,
            pattern=getattr(pattern, "name", type(pattern).__name__),
            offered_load=config.offered_load,
            num_nodes=self.topology.num_nodes,
            active_sources=len(self.sources),
            measure_cycles=config.measure_cycles,
            cycle_time_us=config.cycle_time_us,
        )

    def core_channels(self) -> list:
        return list(self.topology.channels())

    # -- generation / injection (scalar, RNG-exact engine ports) ------------

    def _generate(self, cycle: int) -> None:
        heap = self._arrival_heap
        if not heap or heap[0][0] > cycle:
            return
        if cycle >= self.config.generation_cycles:
            return
        pop = heapq.heappop
        due = [pop(heap)]
        while heap and heap[0][0] <= cycle:
            due.append(pop(heap))
        if len(due) > 1:
            due.sort(key=lambda item: item[1])
        config = self.config
        rate = config.messages_per_cycle
        lengths = config.message_lengths
        num_lengths = len(lengths)
        max_queue = config.max_queue_per_node
        rng = self.rng
        expovariate = rng.expovariate
        randrange = rng.randrange
        pattern_dest = self.pattern.dest
        queues = self.queues
        sources = self.sources
        next_arrival = self.next_arrival
        push = heapq.heappush
        dead_routers = self.dead_routers
        for when, index in due:
            node = sources[index]
            while when <= cycle:
                when += expovariate(rate)
                if node in dead_routers:
                    continue  # a dead router offers no traffic
                if len(queues[node]) >= max_queue:
                    continue
                dst = pattern_dest(node, rng)
                if dst is None or dst == node:
                    continue
                length = lengths[randrange(num_lengths)]
                self._enqueue(Packet(self._next_pid, node, dst, length, cycle))
                self._next_pid += 1
            next_arrival[node] = when
            push(heap, (when, index))
        self.core.m_nextgen[self.fidx] = (
            heap[0][0] if heap else float("inf")
        )

    def _enqueue(self, packet: Packet) -> None:
        node = packet.src
        self.queues[node].append(packet)
        self._backlog += 1
        if packet.created >= self.config.warmup_cycles:
            self.result.generated_packets += 1
        if self.injection_busy[node] < 0:
            self.pending_nodes.add(node)
            self.core.m_pending[self.fidx] = True

    def _inject(self, cycle: int) -> None:
        dead_routers = self.dead_routers
        for node in list(self.pending_nodes):
            queue = self.queues[node]
            if not queue or self.injection_busy[node] >= 0:
                self.pending_nodes.discard(node)
                continue
            if node in dead_routers:
                # A dead router cannot inject; its queue waits for a heal.
                self.pending_nodes.discard(node)
                continue
            packet = queue.popleft()
            self._backlog -= 1
            if packet.dst in dead_routers:
                # Drop at the source instead of wasting network resources
                # on an unreachable destination (it may heal before a
                # retry, so retries still apply).
                self._finish_drop(
                    packet.src, packet.dst, packet.length, packet.created,
                    packet.attempt, cycle, "dead-destination",
                )
                if not queue:
                    self.pending_nodes.discard(node)
                continue
            slot = self.core._alloc_slot(self, packet, cycle)
            self.injection_busy[node] = slot
            self.pending_nodes.discard(node)
        self.core.m_pending[self.fidx] = bool(self.pending_nodes)

    def _release_injection(self, slot: int) -> None:
        node = int(self.core.pk_src[slot])
        self.injection_busy[node] = -1
        if self.queues[node]:
            self.pending_nodes.add(node)
            self.core.m_pending[self.fidx] = True

    # -- retries / drops / kills (scalar engine ports) -----------------------

    def _requeue(self, packet: Packet) -> None:
        node = packet.src
        self.queues[node].append(packet)
        self._backlog += 1
        if self.injection_busy[node] < 0:
            self.pending_nodes.add(node)
            self.core.m_pending[self.fidx] = True

    def _pop_retries(self, cycle: int) -> None:
        for packet in self._retry_at.pop(cycle, ()):
            self._requeue(packet)
        self.core.m_nextretry[self.fidx] = (
            min(self._retry_at) if self._retry_at else _NEVER
        )

    def _kill(self, slot: int, cycle: int, cause: str, killed: bool = True) -> None:
        """Remove an in-flight worm: release every held resource, then
        account the drop (the array twin of the engine's ``_kill``)."""
        core = self.core
        fidx = self.fidx
        stall = cycle - int(core.pk_wait[slot])
        if stall > core.m_maxstall[fidx]:
            core.m_maxstall[fidx] = stall
        c = int(core.pk_tail_ch[slot])
        while c >= 0:
            nxt = int(core.ch_next[c])
            core.ch_owner[c] = -1
            core.ch_held[c] = False
            core.ch_freed[c] = True
            core._any_freed = True
            core.ch_mb[c] = 0
            core.ch_prev[c] = -1
            core.ch_next[c] = -1
            c = nxt
        core.pk_tail_ch[slot] = -1
        core.pk_head_ch[slot] = -1
        src = int(core.pk_src[slot])
        if self.injection_busy[src] == slot:
            self._release_injection(slot)
        dst = int(core.pk_dst[slot])
        if core.ej_owner[self.node_off + dst] == slot:
            core.ej_owner[self.node_off + dst] = -1
        core.pk_state[slot] = _DONE
        core.pk_arbwait[slot] = False
        core.pk_dormant[slot] = False
        core._live_dirty = True
        self.inflight -= 1
        core.m_inflight[fidx] -= 1
        self._finish_drop(
            src, dst, int(core.pk_len[slot]), int(core.pk_created[slot]),
            int(core.pk_attempt[slot]), cycle, cause, killed=killed,
        )

    def _finish_drop(
        self, src: int, dst: int, length: int, created: int, attempt: int,
        cycle: int, cause: str, killed: bool = False,
    ) -> None:
        """Account one drop event; retry from the source if allowed."""
        core = self.core
        core.m_lastprog[self.fidx] = cycle  # freed resources are progress
        config = self.config
        result = self.result
        measured = created >= config.warmup_cycles
        if measured:
            if killed:
                result.killed_packets += 1
            result.drops_by_cause[cause] = (
                result.drops_by_cause.get(cause, 0) + 1
            )
        if attempt < config.max_retries:
            delay = min(
                config.retry_backoff_base << attempt,
                config.retry_backoff_cap,
            )
            retry = Packet(self._next_pid, src, dst, length, created)
            self._next_pid += 1
            retry.attempt = attempt + 1
            due = cycle + delay
            self._retry_at.setdefault(due, []).append(retry)
            if due < core.m_nextretry[self.fidx]:
                core.m_nextretry[self.fidx] = due
            if measured:
                result.retried_packets += 1
        elif measured:
            result.dropped_packets += 1

    def _deliver(self, slot: int, cycle: int) -> None:
        core = self.core
        core.ej_owner[self.node_off + int(core.pk_dst[slot])] = -1
        core.pk_state[slot] = _DONE
        core._live_dirty = True
        self.inflight -= 1
        core.m_inflight[self.fidx] -= 1
        created = int(core.pk_created[slot])
        if created >= self.config.warmup_cycles:
            result = self.result
            length = int(core.pk_len[slot])
            result.delivered_packets += 1
            result.delivered_flits += length
            result.total_latency_cycles += cycle - created
            injected = int(core.pk_injected[slot])
            result.total_net_latency_cycles += cycle - (
                injected if injected >= 0 else created
            )
            result.total_hops += int(core.pk_hops[slot])
            result.total_misroutes += int(core.pk_mis[slot])
            result.latency_by_length.setdefault(length, []).append(
                cycle - created
            )
            if self.config.collect_latency_histogram:
                hist = self._lat_hist
                latency = cycle - created
                hist[latency] = hist.get(latency, 0) + 1


class _ScalarMember:
    """A batch member outside the vectorized envelope: a cycle-locked
    event-engine simulator (the same code, therefore bit-identical)."""

    fast = False

    def __init__(
        self, algorithm, pattern, config: SimulationConfig,
        sink=None, profiler=None,
    ) -> None:
        self.sim = WormholeSimulator(
            algorithm, pattern, config, sink=sink, profiler=profiler
        )
        self.total = config.total_cycles
        self.frozen = False

    def run_cycle(self, cycle: int) -> None:
        sim = self.sim
        sim.cycle = cycle
        sim._cycle_body(cycle)
        if sim._after_cycle(cycle):
            self.frozen = True

    def finalize(self) -> SimulationResult:
        return self.sim.finalize()


class _BatchCore:
    """The shared arena advancing every fast member's worms per cycle.

    Channel state is concatenated across fast members (``ch_off`` /
    ``node_off`` offsets keep members disjoint, so one kernel pass
    serves the whole batch); packet state lives in append-only slot
    arrays — slots are never reused, so ascending slot order *is* each
    member's packet-injection order, which is exactly the iteration
    order of the event engine's insertion-ordered ``active`` dict.
    Every scalar side effect that order can reach (injection release,
    delivery accounting) is therefore applied in ascending slot order.
    """

    def __init__(self, points, sinks=None, profilers=None) -> None:
        _require_numpy()
        points = list(points)
        if not points:
            raise ValueError("BatchSimulator needs at least one point")
        sinks = list(sinks) if sinks is not None else [None] * len(points)
        profilers = (
            list(profilers) if profilers is not None else [None] * len(points)
        )
        self.members: List = []
        self.fast: List[_FastMember] = []
        self.demotions: Dict[str, int] = {}
        self._groups_by_key: Dict[tuple, _GroupTables] = {}
        self.groups: List[_GroupTables] = []
        group_of: List[int] = []
        for (algorithm, pattern, config), sink, profiler in zip(
            points, sinks, profilers
        ):
            reasons = list(demotion_reasons(config))
            if sink is not None:
                reasons.append("trace-sink")
            # Every applicable gate is reported, so the LUT-cap check
            # runs even when a config gate already fired (cheap: a
            # closed-form entry count, no group is built).
            num_vc = config.virtual_channels
            if _lut_entries(algorithm.topology, num_vc) > _LUT_ENTRY_CAP:
                reasons.append("lut-cap")  # exceeds the memory cap
            group_index = -1
            if not reasons:
                key = _group_key(algorithm, algorithm.topology, num_vc)
                group = self._groups_by_key.get(key)
                if group is None:
                    group = _shared_group(
                        algorithm, algorithm.topology, num_vc
                    )
                    self._groups_by_key[key] = group
                    self.groups.append(group)
                group_index = self.groups.index(group)
            if reasons:
                for reason in reasons:
                    self.demotions[reason] = (
                        self.demotions.get(reason, 0) + 1
                    )
                member = _ScalarMember(
                    algorithm, pattern, config, sink=sink, profiler=profiler
                )
            else:
                member = _FastMember(
                    self, len(self.fast), algorithm, pattern, config,
                    profiler=profiler,
                )
                self.fast.append(member)
                group_of.append(group_index)
            self.members.append(member)
        # Profiled fast members time the shared kernel passes (the batch
        # advances them together, so each profiler records the same
        # per-phase wall clock); timing never touches RNG or decisions,
        # so profiled runs stay bit-identical.
        self._fast_profilers = [
            m.profiler for m in self.fast if m.profiler is not None
        ]

        # -- concatenated channel / node arenas over the fast members.
        # One arena lane per *runtime* channel (physical x vc), matching
        # the event engine's channel numbering; ``ch_link`` maps each
        # lane back to a globally-unique physical link id (the one-flit-
        # per-link-per-cycle resource multi-VC movement arbitrates).
        ch_off = 0
        node_off = 0
        link_off = 0
        src_local: List[int] = []
        dst_local: List[int] = []
        ch_noff: List[int] = []
        dir_idx: List[int] = []
        link_ids: List[int] = []
        vc_ids: List[int] = []
        multi: List[bool] = []
        warm: List[int] = []
        series0: List[int] = []
        series1: List[int] = []
        any_loads = False
        any_series = False
        for member, gi in zip(self.fast, group_of):
            member.ch_off = ch_off
            member.node_off = node_off
            group = self.groups[gi]
            nvc = member.num_vc
            for phys, channel in enumerate(group.channels):
                for vc in range(nvc):
                    src_local.append(channel.src)
                    dst_local.append(channel.dst)
                    dir_idx.append(group.dir_index[channel.direction])
                    link_ids.append(link_off + phys)
                    vc_ids.append(vc)
            num_ch = len(group.channels) * nvc
            multi.extend([nvc > 1] * num_ch)
            ch_noff.extend([node_off] * num_ch)
            track = member.config.track_channel_load
            any_loads = any_loads or track
            threshold = member.config.warmup_cycles if track else _NEVER
            warm.extend([threshold] * num_ch)
            period = member.config.channel_series_period
            any_series = any_series or period > 0
            series0.extend(
                [member.config.warmup_cycles if period > 0 else _NEVER]
                * num_ch
            )
            series1.extend([member.config.generation_cycles] * num_ch)
            ch_off += num_ch
            link_off += len(group.channels)
            node_off += member.topology.num_nodes
        total_ch = ch_off
        total_nodes = node_off
        self.ch_owner = np.full(total_ch, -1, dtype=np.int64)
        # Mirror of ``ch_owner >= 0`` maintained at grant/release, so the
        # per-cycle held-channel scan is a bool nonzero, not an int compare.
        self.ch_held = np.zeros(total_ch, dtype=bool)
        # moved/buffered counters packed into one word (moved in the high
        # 32 bits, buffer occupancy in the low 32) so the movement kernel
        # reads and updates both with a single gather/scatter each.
        self.ch_mb = np.zeros(total_ch, dtype=np.int64)
        self.ch_prev = np.full(total_ch, -1, dtype=np.int64)
        self.ch_next = np.full(total_ch, -1, dtype=np.int64)
        self.ch_src_local = np.asarray(src_local, dtype=np.int64)
        self.ch_dst_local = np.asarray(dst_local, dtype=np.int64)
        self.ch_dir = np.asarray(dir_idx, dtype=np.int64)
        self.ch_link = np.asarray(link_ids, dtype=np.int64)
        self.ch_vc = np.asarray(vc_ids, dtype=np.int64)
        # Lanes whose member runs multiple VCs: only their movement is
        # subject to physical-link arbitration (single-VC members map
        # lanes and links one-to-one, so the event engine skips the
        # ``links_used`` bookkeeping there — and so do we).
        self.ch_multi = np.asarray(multi, dtype=bool)
        self._any_vc = bool(self.ch_multi.any())
        self._all_vc = bool(self.ch_multi.all())
        self.total_links = link_off
        # Wave-loop scratch (allocated once; reset per touched link).
        self._link_min = np.full(link_off + 1, _NEVER, dtype=np.int64)
        self._link_taken = np.full(link_off + 1, _NEVER, dtype=np.int64)
        self._link_dup = np.zeros(link_off + 1, dtype=bool)
        # Per-cycle inverse of the sorted held-channel array
        # (``_ch_pos[held] = arange``): O(1) gathers where the chain
        # solver and link arbitration would otherwise bisect.
        self._ch_pos = np.zeros(total_ch, dtype=np.int64)
        self.ch_warm = np.asarray(warm, dtype=np.int64)
        self.loads = np.zeros(total_ch, dtype=np.int64) if any_loads else None
        # Streaming channel-util series: one shared counter array with a
        # per-channel measurement window; buckets roll per member on its
        # own schedule (``m_nextroll``).
        if any_series:
            self.ch_series = np.zeros(total_ch, dtype=np.int64)
            self.ch_s0 = np.asarray(series0, dtype=np.int64)
            self.ch_s1 = np.asarray(series1, dtype=np.int64)
        else:
            self.ch_series = None
            self.ch_s0 = None
            self.ch_s1 = None
        self.ej_owner = np.full(total_nodes, -1, dtype=np.int64)
        # Arbitration wakeup flags: stage 3 marks released channels here
        # and the next cycle's arbitration wakes exactly the parked
        # headers waiting on one.  The extra trailing cell is a
        # never-freed sentinel that padding entries in ``pk_wchan``
        # point at, keeping gathers in bounds without a validity mask.
        self.ch_freed = np.zeros(total_ch + 1, dtype=bool)
        self._any_freed = False
        self._wpad = total_ch
        self._wwidth = max(
            (2 * g.K for g in self.groups if g.ok), default=1
        )

        nfast = len(self.fast)
        self.f_group = np.asarray(group_of, dtype=np.int64)
        self.f_ch_off = np.asarray(
            [m.ch_off for m in self.fast], dtype=np.int64
        )
        self.f_node_off = np.asarray(
            [m.node_off for m in self.fast], dtype=np.int64
        )
        self.f_warmup = np.asarray(
            [m.config.warmup_cycles for m in self.fast], dtype=np.int64
        )
        self.f_mislimit = np.asarray(
            [m.config.misroute_limit for m in self.fast], dtype=np.int64
        )
        self.f_numvc = np.asarray(
            [m.num_vc for m in self.fast], dtype=np.int64
        )
        # A worm can revisit a physical link (on another VC) only by
        # visiting a node twice, which needs a non-minimal hop: with
        # misroutes disabled the intra-worm duplicate-link scan in the
        # link arbiter is provably dead, so skip it per cycle.
        self._any_vc_mis = bool(
            ((self.f_numvc > 1) & (self.f_mislimit > 0)).any()
        )
        self.m_lastprog = np.zeros(nfast, dtype=np.int64)
        self.m_maxgrant = np.zeros(nfast, dtype=np.int64)
        # Per-member run-loop bookkeeping, vectorized so the cycle loop
        # touches Python only for members with work due this cycle.
        self.m_inflight = np.zeros(nfast, dtype=np.int64)
        self.m_total = np.asarray(
            [m.total for m in self.fast], dtype=np.int64
        )
        self.m_genend = np.asarray(
            [m.config.generation_cycles for m in self.fast], dtype=np.int64
        )
        self.m_dlthresh = np.asarray(
            [m.config.deadlock_threshold for m in self.fast], dtype=np.int64
        )
        self.m_period = np.asarray(
            [m.config.queue_sample_period for m in self.fast], dtype=np.int64
        )
        self.m_next_sample = self.f_warmup.copy()
        self.m_act = np.ones(nfast, dtype=bool)
        self.m_pending = np.zeros(nfast, dtype=bool)
        self.m_nextgen = np.asarray(
            [
                m._arrival_heap[0][0] if m._arrival_heap else np.inf
                for m in self.fast
            ],
            dtype=np.float64,
        )

        # -- selection-policy state (pointer counters live per member,
        # exactly like the per-simulator policy instances they replay)
        self.m_policy = np.asarray(
            [_POLICY_CODES[m.config.output_selection] for m in self.fast],
            dtype=np.int64,
        )
        self.m_threshold = np.asarray(
            [m.config.selection_threshold for m in self.fast], dtype=np.int64
        )
        self.m_rrptr = np.zeros(nfast, dtype=np.int64)
        self.m_mcptr = np.zeros(nfast, dtype=np.int64)
        self._needs_policy = bool((self.m_policy != 0).any())
        needs_cong = bool((self.m_policy >= 2).any())

        # -- watchdog / retry / fault timers
        self.m_timeout = np.asarray(
            [m.config.packet_timeout for m in self.fast], dtype=np.int64
        )
        self.m_maxstall = np.zeros(nfast, dtype=np.int64)
        self.m_nextretry = np.full(nfast, _NEVER, dtype=np.int64)
        self.m_nextfault = np.asarray(
            [
                min(m.fault_schedule) if m.fault_schedule else _NEVER
                for m in self.fast
            ],
            dtype=np.int64,
        )
        self._any_timeout = bool((self.m_timeout > 0).any())
        self._any_faults = bool((self.m_nextfault != _NEVER).any())
        self._any_drops = self._any_faults or self._any_timeout
        self.ch_dead = (
            np.zeros(total_ch, dtype=bool) if self._any_faults else None
        )

        # -- collector state
        self.m_blocked = np.asarray(
            [m.config.collect_router_blocked for m in self.fast], dtype=bool
        )
        self.node_blocked = (
            np.zeros(total_nodes, dtype=np.int64)
            if bool(self.m_blocked.any())
            else None
        )
        rolls: List[int] = []
        for m in self.fast:
            period = m.config.channel_series_period
            if period > 0:
                first = m.config.warmup_cycles + period - 1
                rolls.append(
                    first if first < m.config.generation_cycles else _NEVER
                )
            else:
                rolls.append(_NEVER)
        self.m_nextroll = np.asarray(rolls, dtype=np.int64)
        self._any_collect = (
            self.node_blocked is not None or self.ch_series is not None
        )

        # -- congestion view (policies >= max-credits): per-node credit
        # and occupancy sums over the shared arena, recomputed at most
        # once per cycle and frozen during arbitration exactly like
        # EngineCongestionView (grants and moves happen after the scan).
        if needs_cong:
            noff = np.asarray(ch_noff, dtype=np.int64)
            self.ch_src_g = self.ch_src_local + noff
            self.ch_dst_g = self.ch_dst_local + noff
            depth_nodes: List[int] = []
            for m in self.fast:
                depth_nodes.extend(
                    [m.config.buffer_depth] * m.topology.num_nodes
                )
            self.node_depth = np.asarray(depth_nodes, dtype=np.int64)
            self.node_liveout = np.bincount(
                self.ch_src_g, minlength=total_nodes
            ).astype(np.int64)
            self.node_capacity = self.node_liveout * self.node_depth
            self._occ = np.zeros(total_nodes, dtype=np.int64)
            self._cred = np.zeros(total_nodes, dtype=np.int64)
            self._cong_cycle = -1
        else:
            self.ch_src_g = None
            self.ch_dst_g = None
            self.node_depth = None
            self.node_liveout = None
            self.node_capacity = None

        # -- slot arena (append-only; grown geometrically)
        self.n_slots = 0
        self._wseq = 0
        cap = 4096
        for name, fill, dtype in _SLOT_FIELDS:
            setattr(self, name, np.full(cap, fill, dtype=dtype))
        # Wait channels of arbitration-parked headers: minimal candidates
        # in the first K columns, escape candidates (when the header has
        # misroute budget) in the next K, sentinel-padded.
        self.pk_wchan = np.full(
            (cap, self._wwidth), self._wpad, dtype=np.int64
        )
        self.live = np.empty(0, dtype=np.int64)
        self._staged: List[int] = []
        self._live_dirty = False
        depths = {m.config.buffer_depth for m in self.fast}
        # When every member shares one buffer depth (the common case) the
        # capacity test is a scalar compare instead of a per-slot gather.
        self._depth_one = depths.pop() if len(depths) == 1 else None

    # -- slot arena ----------------------------------------------------------

    def _alloc_slot(self, member: _FastMember, packet: Packet, cycle: int) -> int:
        slot = self.n_slots
        if slot >= len(self.pk_len):
            new_cap = len(self.pk_len) * 2
            for name, fill, dtype in _SLOT_FIELDS:
                old = getattr(self, name)
                grown = np.full(new_cap, fill, dtype=dtype)
                grown[: len(old)] = old
                setattr(self, name, grown)
            grown = np.full(
                (new_cap, self._wwidth), self._wpad, dtype=np.int64
            )
            grown[: len(self.pk_wchan)] = self.pk_wchan
            self.pk_wchan = grown
        self.n_slots = slot + 1
        self.pk_sim[slot] = member.fidx
        self.pk_len[slot] = packet.length
        self.pk_src[slot] = packet.src
        self.pk_dst[slot] = packet.dst
        self.pk_pid[slot] = packet.pid
        self.pk_created[slot] = packet.created
        self.pk_state[slot] = _ROUTING
        self.pk_head_node[slot] = packet.src
        self.pk_head_dir[slot] = 0  # 0 encodes "no arrival direction yet"
        self.pk_wait[slot] = cycle
        self.pk_wseq[slot] = self._wseq
        self._wseq += 1
        self.pk_attempt[slot] = packet.attempt
        self.pk_head_ch[slot] = -1
        self.pk_tail_ch[slot] = -1
        self.pk_launched[slot] = 0
        self.pk_ejected[slot] = 0
        self.pk_injected[slot] = -1
        self.pk_hops[slot] = 0
        self.pk_mis[slot] = 0
        self.pk_depth[slot] = member.config.buffer_depth
        self.pk_dormant[slot] = False
        self.pk_arbwait[slot] = False
        member.inflight += 1
        self.m_inflight[member.fidx] += 1
        self._staged.append(slot)
        return slot

    def _refresh_live(self) -> None:
        live = self.live
        if self._live_dirty:
            if live.size:
                live = live[self.pk_state[live] != _DONE]
            self._live_dirty = False
        if self._staged:
            live = np.concatenate(
                [live, np.asarray(self._staged, dtype=np.int64)]
            )
            self._staged.clear()
        self.live = live

    def _drop_member_slots(self, fidx: int) -> None:
        live = self.live
        if live.size:
            mine = self.pk_sim[live] == fidx
            # Dormant-mark so the held-channel scan in ``_move_vec``
            # never advances a frozen member's worms.
            self.pk_dormant[live[mine]] = True
            self.live = live[~mine]
        member = self.fast[fidx]
        # Frozen members' worms never move again — drop their whole
        # channel range from the held scan (ownership stays recorded
        # for the finalize-time accounting).
        self.ch_held[member.ch_off : member.ch_off + member.num_ch] = False

    # -- faults (scalar engine ports over the shared arena) ------------------

    def _apply_faults(self, member: _FastMember, cycle: int) -> None:
        """Fire the member's fault plan for this cycle: kill the worms
        the failures touch (in the event engine's exact victim order),
        refresh the runtime dead mask, and wake every parked header
        (their watch sets may be stale against the new masks)."""
        fidx = member.fidx
        events = member.fault_schedule.pop(cycle, None)
        schedule = member.fault_schedule
        self.m_nextfault[fidx] = min(schedule) if schedule else _NEVER
        if not events:
            return
        # Compact away slots delivered/killed in earlier cycles so the
        # victim scans below see exactly the live worms.
        self._refresh_live()
        group = self.groups[int(self.f_group[fidx])]
        for action, event in events:
            if event.kind == CHANNEL_FAULT:
                key = (event.node, event.direction)
                if action == FAIL:
                    member.dead_channels.add(key)
                    cid = group.channel_ids.get(key)
                    if cid is not None:
                        # A failed physical channel takes every runtime
                        # VC lane with it; holders die in ascending VC
                        # order (the engine's _kill_channel_holders).
                        base = member.ch_off + cid * member.num_vc
                        for rt in range(base, base + member.num_vc):
                            holder = int(self.ch_owner[rt])
                            if holder >= 0:
                                member._kill(holder, cycle, "link-failure")
                else:
                    member.dead_channels.discard(key)
            else:
                node = event.node
                if action == FAIL:
                    member.dead_routers.add(node)
                    self._kill_router_worms(member, node, cycle)
                    member.pending_nodes.discard(node)
                else:
                    member.dead_routers.discard(node)
                    if (
                        member.queues[node]
                        and member.injection_busy[node] < 0
                    ):
                        member.pending_nodes.add(node)
                        self.m_pending[fidx] = True
        self._recompute_dead(member)
        # The engine's ``_wake_all``: un-park every header of this
        # member — candidate masks changed under it.
        live = self.live
        if live.size:
            self.pk_arbwait[live[self.pk_sim[live] == fidx]] = False

    def _kill_router_worms(self, member: _FastMember, node: int, cycle: int) -> None:
        """Kill every worm whose header sits at, or whose body crosses,
        the failed router (ascending slot order = the event engine's
        insertion-ordered ``active`` scan)."""
        live = self.live
        mine = live[self.pk_sim[live] == member.fidx]
        victims: List[int] = []
        for slot in mine:
            slot = int(slot)
            if self.pk_state[slot] == _DONE:
                continue  # killed by an earlier event in this batch
            if int(self.pk_head_node[slot]) == node:
                victims.append(slot)
                continue
            c = int(self.pk_tail_ch[slot])
            while c >= 0:
                if (
                    int(self.ch_src_local[c]) == node
                    or int(self.ch_dst_local[c]) == node
                ):
                    victims.append(slot)
                    break
                c = int(self.ch_next[c])
        for slot in victims:
            member._kill(slot, cycle, "router-failure")

    def _recompute_dead(self, member: _FastMember) -> None:
        """Rebuild the member's slice of the runtime dead-channel mask
        (FaultState.channel_dead over the LUT channel universe) and,
        when congestion policies are live, its per-node output degree."""
        group = self.groups[int(self.f_group[member.fidx])]
        lo = member.ch_off
        hi = lo + member.num_ch
        dead = np.zeros(member.num_ch, dtype=bool)
        nvc = member.num_vc
        for key in member.dead_channels:
            cid = group.channel_ids.get(key)
            if cid is not None:
                dead[cid * nvc : (cid + 1) * nvc] = True
        if member.dead_routers:
            routers = np.fromiter(
                member.dead_routers, dtype=np.int64,
                count=len(member.dead_routers),
            )
            dead |= np.isin(self.ch_src_local[lo:hi], routers)
            dead |= np.isin(self.ch_dst_local[lo:hi], routers)
        self.ch_dead[lo:hi] = dead
        if self.node_liveout is not None:
            nlo = member.node_off
            n = member.topology.num_nodes
            degree = np.bincount(
                self.ch_src_local[lo:hi][~dead], minlength=n
            )
            self.node_liveout[nlo : nlo + n] = degree
            self.node_capacity[nlo : nlo + n] = (
                degree * member.config.buffer_depth
            )

    # -- stage 2: arbitration (vectorized two-phase) -------------------------

    def _arbitrate_vec(self, cycle: int) -> None:
        live = self.live
        if live.size == 0:
            return
        state = self.pk_state[live]
        routing = live[state == _ROUTING]
        if routing.size:
            # Parked headers (zero free candidates when last scanned)
            # skip arbitration; a channel release is the only event that
            # can make one eligible, so wake exactly those whose wait
            # set intersects the channels freed since the last cycle.
            aw = self.pk_arbwait[routing]
            if aw.any():
                parked = routing[aw]
                routing = routing[~aw]
                if self._any_freed:
                    woken = parked[
                        self.ch_freed[self.pk_wchan[parked]].any(axis=1)
                    ]
                    if woken.size:
                        self.pk_arbwait[woken] = False
                        routing = np.concatenate([routing, woken])
        if self._any_freed:
            self.ch_freed[:] = False
            self._any_freed = False
        req_slots: List = []
        req_ch: List = []
        req_mis: List = []
        if routing.size:
            if len(self.groups) == 1:
                self._collect_requests(
                    self.groups[0], routing, req_slots, req_ch, req_mis,
                    cycle,
                )
            else:
                grp = self.f_group[self.pk_sim[routing]]
                for gi, group in enumerate(self.groups):
                    sel = grp == gi
                    if sel.any():
                        self._collect_requests(
                            group, routing[sel], req_slots, req_ch, req_mis,
                            cycle,
                        )
        if req_slots:
            slots = np.concatenate(req_slots)
            chans = np.concatenate(req_ch)
            mis = np.concatenate(req_mis)
            # Phase 2, channel grants: local FCFS per contested channel
            # is min (header_wait_since, pid) — lexsort and keep the
            # first requester of each channel.
            order = np.lexsort((self.pk_pid[slots], self.pk_wait[slots], chans))
            slots = slots[order]
            chans = chans[order]
            mis = mis[order]
            first = np.empty(len(chans), dtype=bool)
            first[0] = True
            first[1:] = chans[1:] != chans[:-1]
            self._grant_channels(slots[first], chans[first], mis[first], cycle)
        waiting_eject = live[state == _EJECT_WAIT]
        if waiting_eject.size:
            nodes = (
                self.f_node_off[self.pk_sim[waiting_eject]]
                + self.pk_head_node[waiting_eject]
            )
            free = self.ej_owner[nodes] < 0
            if free.any():
                contenders = waiting_eject[free]
                nodes = nodes[free]
                order = np.lexsort(
                    (self.pk_pid[contenders], self.pk_wait[contenders], nodes)
                )
                contenders = contenders[order]
                nodes = nodes[order]
                first = np.empty(len(nodes), dtype=bool)
                first[0] = True
                first[1:] = nodes[1:] != nodes[:-1]
                winners = contenders[first]
                self.ej_owner[nodes[first]] = winners
                self.pk_state[winners] = _EJECTING
                self.pk_dormant[winners] = False
                self.m_lastprog[self.pk_sim[winners]] = cycle

    def _collect_requests(
        self, group: _GroupTables, slots, req_slots, req_ch, req_mis,
        cycle: int,
    ) -> None:
        sims = self.pk_sim[slots]
        node = self.pk_head_node[slots]
        dest = self.pk_dst[slots]
        num_vc = group.num_vc
        rows = (
            (node * group.N + dest) * (group.num_dirs + 1)
            + self.pk_head_dir[slots]
        )
        if num_vc > 1:
            # Multi-VC rows carry the arrival-VC class (pk_head_vc is 0
            # pre-injection, exactly the engine's in_vc=None memo key).
            rows = rows * num_vc + self.pk_head_vc[slots]
        group.ensure_rows(rows, escape=False)
        offs = self.f_ch_off[sims][:, None]
        cand = group.cand[rows]
        valid = cand >= 0
        # -1 padding entries index a wrong-but-in-bounds channel; the
        # ``valid`` mask discards whatever they read.
        gchan = cand + offs
        if self.ch_dead is not None:
            # Runtime fault mask: a dead candidate is neither requestable
            # nor worth parking on (its release cannot wake anyone) —
            # the FaultAwareRouting filter, applied to the LUT columns.
            valid = valid & ~self.ch_dead[gchan]
        free = valid & (self.ch_owner[gchan] < 0)
        has = free.any(axis=1)
        idx = np.nonzero(has)[0]
        # Selection policies beyond xy need the full free mask per
        # header, not just the first free column; route those requesters
        # through the policy picker below.
        policied = self._needs_policy and bool(
            (self.m_policy[sims] != 0).any()
        )
        sel_slots: List = []
        sel_free: List = []
        sel_gchan: List = []
        sel_mis: List = []
        if idx.size:
            if num_vc > 1:
                dfree, dgchan, dmis = self._reduce_vc(
                    group, rows[idx], free[idx], gchan[idx], escape=False
                )
                if policied:
                    sel_slots.append(slots[idx])
                    sel_free.append(dfree)
                    sel_gchan.append(dgchan)
                    sel_mis.append(dmis)
                else:
                    pick = dfree.argmax(axis=1)
                    ar = np.arange(idx.size)
                    req_slots.append(slots[idx])
                    req_ch.append(dgchan[ar, pick])
                    req_mis.append(dmis[ar, pick])
            elif policied:
                sel_slots.append(slots[idx])
                sel_free.append(free[idx])
                sel_gchan.append(gchan[idx])
                sel_mis.append(group.cmis[rows[idx]])
            else:
                pick = free[idx].argmax(axis=1)
                req_slots.append(slots[idx])
                req_ch.append(gchan[idx, pick])
                req_mis.append(group.cmis[rows[idx], pick])
        # Misroute escapes: only headers with zero free minimal
        # candidates and misroute budget left consult the escape table.
        bidx = np.nonzero(~has)[0]
        if bidx.size:
            bslots = slots[bidx]
            brows = rows[bidx]
            K = group.K
            pad = self._wpad
            # Wait-set under construction: every candidate whose release
            # could make this header eligible (minimal now; escape below
            # for headers with budget).
            wch = np.full((bidx.size, 2 * K), pad, dtype=np.int64)
            wch[:, :K] = np.where(valid[bidx], gchan[bidx], pad)
            requested = np.zeros(bidx.size, dtype=bool)
            eidx = np.nonzero(
                self.pk_mis[bslots] < self.f_mislimit[sims[bidx]]
            )[0]
            if eidx.size:
                erows = brows[eidx]
                group.ensure_rows(erows, escape=True)
                cand = group.esc[erows]
                valid = cand >= 0
                gchan = cand + offs[bidx][eidx]
                if self.ch_dead is not None:
                    valid = valid & ~self.ch_dead[gchan]
                wch[eidx[:, None], K + np.arange(K)[None, :]] = np.where(
                    valid, gchan, pad
                )
                free = valid & (self.ch_owner[gchan] < 0)
                has = free.any(axis=1)
                fidx = np.nonzero(has)[0]
                if fidx.size:
                    if num_vc > 1:
                        dfree, dgchan, dmis = self._reduce_vc(
                            group, erows[fidx], free[fidx], gchan[fidx],
                            escape=True,
                        )
                        if policied:
                            sel_slots.append(bslots[eidx[fidx]])
                            sel_free.append(dfree)
                            sel_gchan.append(dgchan)
                            sel_mis.append(dmis)
                        else:
                            pick = dfree.argmax(axis=1)
                            ar = np.arange(fidx.size)
                            req_slots.append(bslots[eidx[fidx]])
                            req_ch.append(dgchan[ar, pick])
                            req_mis.append(dmis[ar, pick])
                    elif policied:
                        sel_slots.append(bslots[eidx[fidx]])
                        sel_free.append(free[fidx])
                        sel_gchan.append(gchan[fidx])
                        sel_mis.append(group.emis[erows[fidx]])
                    else:
                        pick = free[fidx].argmax(axis=1)
                        req_slots.append(bslots[eidx[fidx]])
                        req_ch.append(gchan[fidx, pick])
                        req_mis.append(group.emis[erows[fidx], pick])
                    requested[eidx[fidx]] = True
            # Headers that produced no request at all park until one of
            # their wait channels is released (see ``_arbitrate_vec``).
            pidx = np.nonzero(~requested)[0]
            if pidx.size:
                pslots = bslots[pidx]
                self.pk_wchan[pslots, : 2 * K] = wch[pidx]
                if 2 * K < self._wwidth:
                    self.pk_wchan[pslots, 2 * K :] = pad
                self.pk_arbwait[pslots] = True
        if sel_slots:
            aslots = np.concatenate(sel_slots)
            afree = np.vstack(sel_free)
            agchan = np.vstack(sel_gchan)
            amis = np.vstack(sel_mis)
            pick = self._select_cols(aslots, afree, agchan, cycle)
            rows_ar = np.arange(aslots.size)
            req_slots.append(aslots)
            req_ch.append(agchan[rows_ar, pick])
            req_mis.append(amis[rows_ar, pick])

    def _reduce_vc(self, group: _GroupTables, rows, free, gchan, escape: bool):
        """Collapse (direction, vc) pair columns to direction-level
        columns in dense (dim, sign) order.

        The engine's arbitration deduplicates the free pairs to a
        direction list for the selection policy, then grants the *first*
        free pair of the chosen direction (the algorithm's VC preference
        order — which the VC LUT columns preserve).  Reduced column
        ``d-1`` is therefore free iff direction ``d`` has a free pair,
        and carries that first pair's runtime channel and misroute flag.
        Every selection policy consumes ``sorted(options)``, which is
        exactly the reduced (dim, sign) column order — so the reduced
        matrices feed the single-VC policy kernels unchanged.
        """
        dirk = (group.edirk if escape else group.cdirk)[rows]
        mism = (group.emis if escape else group.cmis)[rows]
        nd = group.num_dirs
        n = free.shape[0]
        ar = np.arange(n)
        dfree = np.zeros((n, nd), dtype=bool)
        dgchan = np.zeros((n, nd), dtype=np.int64)
        dmis = np.zeros((n, nd), dtype=np.int64)
        for d in range(1, nd + 1):
            m = free & (dirk == d)
            col = m.argmax(axis=1)
            dfree[:, d - 1] = m[ar, col]
            # Rows without a free pair in this direction read column 0 —
            # a real in-bounds channel of some other direction; the
            # ``dfree`` gate discards it everywhere downstream.
            dgchan[:, d - 1] = gchan[ar, col]
            dmis[:, d - 1] = mism[ar, col]
        return dfree, dgchan, dmis

    # -- vectorized output-selection policies --------------------------------

    def _congestion(self, cycle: int):
        """Per-node (occupancy, credits, live out-degree) over the whole
        arena — the vectorized EngineCongestionView.  Computed at most
        once per cycle: arbitration reads a frozen snapshot (grants and
        flit movement happen only after every request is collected,
        exactly as in the event engine), and dead channels hold no flits
        (their owners were killed when they failed)."""
        if self._cong_cycle != cycle:
            self._cong_cycle = cycle
            occ = self._occ
            occ[:] = 0
            held = np.nonzero(self.ch_held)[0]
            if held.size:
                np.add.at(
                    occ, self.ch_src_g[held], self.ch_mb[held] & _MB_LOW
                )
            np.subtract(self.node_capacity, occ, out=self._cred)
        return self._occ, self._cred, self.node_liveout

    def _select_cols(self, slots, free, gchan, cycle: int):
        """Pick one free LUT column per requesting header, replaying
        each member's selection policy exactly.

        The LUT columns are (dim, sign)-sorted and direction-deduped, so
        the free columns of a row are precisely the policy's
        ``sorted(options)`` list.  Stateful pointers (round-robin,
        max-credits tie-break) advance in each member's waiting order —
        ``pk_wseq`` — which is the event engine's policy invocation
        order; a lexsort + within-member rank serialises the whole batch
        in one pass.
        """
        sims = self.pk_sim[slots]
        pol = self.m_policy[sims]
        # Default: first free column == min(options) — xy preference and
        # the fallback every congestion policy reduces to on missing data.
        pick = free.argmax(axis=1)
        rr = np.nonzero(pol == 1)[0]
        if rr.size:
            order = np.lexsort((self.pk_wseq[slots[rr]], sims[rr]))
            rrs = rr[order]
            so = sims[rrs]
            rank = _run_ranks(so)
            frr = free[rrs]
            k = (self.m_rrptr[so] + rank) % frr.sum(axis=1)
            csum = frr.cumsum(axis=1)
            # First column where the running free count hits k+1 is the
            # (k+1)-th free direction in (dim, sign) order.
            pick[rrs] = (csum == (k + 1)[:, None]).argmax(axis=1)
            np.add.at(self.m_rrptr, so, 1)
        if not bool((pol >= 2).any()):
            return pick
        occ, cred, liveout = self._congestion(cycle)
        mc = np.nonzero(pol == 2)[0]
        if mc.size:
            frm = free[mc]
            dstg = self.ch_dst_g[gchan[mc]]
            data = liveout[dstg] > 0
            # Any free option whose downstream has no live outputs →
            # credits are None → static preference, pointer untouched.
            bad = (frm & ~data).any(axis=1)
            credm = np.where(frm, cred[dstg], -1)
            best = credm.max(axis=1)
            is_best = frm & (credm == best[:, None])
            ties = is_best.sum(axis=1)
            single = np.nonzero(~bad & (ties == 1))[0]
            if single.size:
                pick[mc[single]] = is_best[single].argmax(axis=1)
            multi = np.nonzero(~bad & (ties > 1))[0]
            if multi.size:
                tied_rows = mc[multi]
                order = np.lexsort(
                    (self.pk_wseq[slots[tied_rows]], sims[tied_rows])
                )
                ro = tied_rows[order]
                so = sims[ro]
                rank = _run_ranks(so)
                tb = is_best[multi[order]]
                k = (self.m_mcptr[so] + rank) % tb.sum(axis=1)
                csum = tb.cumsum(axis=1)
                pick[ro] = (csum == (k + 1)[:, None]).argmax(axis=1)
                np.add.at(self.m_mcptr, so, 1)
        th = np.nonzero(pol == 3)[0]
        if th.size:
            frt = free[th]
            nopts = frt.sum(axis=1)
            gth = gchan[th]
            rows_ar = np.arange(th.size)
            pref_dst = self.ch_dst_g[gth[rows_ar, pick[th]]]
            # Reroute only when there are alternatives, the preferred
            # downstream has data, and its occupancy crossed the line.
            hot = (
                (nopts > 1)
                & (liveout[pref_dst] > 0)
                & (occ[pref_dst] >= self.m_threshold[sims[th]])
            )
            hidx = np.nonzero(hot)[0]
            if hidx.size:
                dstg = self.ch_dst_g[gth[hidx]]
                frh = frt[hidx]
                data = liveout[dstg] > 0
                ok = ~(frh & ~data).any(axis=1)
                oidx = hidx[ok]
                if oidx.size:
                    credm = np.where(
                        frt[oidx], cred[self.ch_dst_g[gth[oidx]]], -1
                    )
                    # First occurrence of the max = the strict-> scan.
                    pick[th[oidx]] = credm.argmax(axis=1)
        return pick

    def _grant_channels(self, slots, chans, mis, cycle: int) -> None:
        sims = self.pk_sim[slots]
        measured = cycle >= self.f_warmup[sims]
        if measured.any():
            np.maximum.at(
                self.m_maxgrant,
                sims[measured],
                cycle - self.pk_wait[slots[measured]],
            )
        self.ch_owner[chans] = slots
        self.ch_held[chans] = True
        self.ch_mb[chans] = 0
        prev = self.pk_head_ch[slots]
        self.ch_prev[chans] = prev
        linked = prev >= 0
        if linked.any():
            self.ch_next[prev[linked]] = chans[linked]
        self.ch_next[chans] = -1
        self.pk_head_ch[slots] = chans
        new_tail = self.pk_tail_ch[slots] < 0
        if new_tail.any():
            self.pk_tail_ch[slots[new_tail]] = chans[new_tail]
        self.pk_state[slots] = _MOVING
        self.pk_hops[slots] += 1
        self.pk_mis[slots] += mis
        self.pk_dormant[slots] = False
        self.m_lastprog[sims] = cycle

    # -- stage 3: movement (vectorized chain recurrence) ---------------------

    def _move_vec(self, cycle: int) -> None:
        live = self.live
        if live.size == 0:
            return
        pk_state = self.pk_state
        pk_len = self.pk_len
        pk_launched = self.pk_launched
        pk_head_ch = self.pk_head_ch
        pk_tail_ch = self.pk_tail_ch
        ch_mb = self.ch_mb
        ch_prev = self.ch_prev
        ch_next = self.ch_next
        movers = live[~self.pk_dormant[live]]
        if movers.size == 0:
            return
        if self._any_vc:
            # Per-member rotated service rank: the event engine rotates
            # its mover list by ``cycle % len(movers)`` when num_vc > 1,
            # which decides who claims a contested physical link first
            # and the order of same-cycle arrivals/deliveries/releases.
            # ``movers`` is ascending-slot (= the engine's insertion
            # order), so a stable member sort + run rank reproduces each
            # member's pre-rotation position exactly.
            sims_mv = self.pk_sim[movers]
            oidx = np.argsort(sims_mv, kind="stable")
            so = sims_mv[oidx]
            rank = _run_ranks(so)
            cnt = np.bincount(so, minlength=len(self.fast))[so]
            rr = rank - cycle % cnt
            neg = rr < 0
            rr[neg] += cnt[neg]
            self.pk_order[movers[oidx]] = rr
        act = np.zeros(movers.size, dtype=bool)
        state = pk_state[movers]
        heads = pk_head_ch[movers]
        # A: ejection consumes one flit per cycle from the head buffer.
        pos = np.nonzero((state == _EJECTING) & (heads >= 0))[0]
        if pos.size:
            head = heads[pos]
            drained = (ch_mb[head] & _MB_LOW) > 0
            pos = pos[drained]
            if pos.size:
                head = head[drained]
                ch_mb[head] -= 1
                self.pk_ejected[movers[pos]] += 1
                act[pos] = True
        # B: shift one flit per held channel.  The scalar engine walks
        # each worm head-first, so hold i (numbered from the tail) moves
        # iff flits remain (moved < len), its upstream supplies a flit
        # (prev buffer non-empty at walk start, or the source is still
        # launching), and there is capacity — where head-first order
        # makes capacity ``buffered_i < depth OR hold i+1 moves`` (that
        # move frees one slot first).  All other reads see walk-start
        # values (chains are disjoint), so per chain this is the linear
        # recurrence  move_i = a_i | (b_i & move_{i+1}),  a = can&cap,
        # b = can, solved for every chain at once by pointer doubling in
        # O(log max_chain) passes instead of O(max_chain) rank passes.
        launch_done: List = []
        blocked_slots = None
        held = np.nonzero(self.ch_held)[0]
        if held.size:
            own = self.ch_owner[held]
            # Dormant worms cannot move (nothing changed since they
            # parked); frozen members' channels are dormant-marked too.
            awake = ~self.pk_dormant[own]
            held = held[awake]
            own = own[awake]
        if held.size:
            length = pk_len[own]
            prev = ch_prev[held]
            mb = ch_mb[held]
            # ``prev == -1`` wraps to the last channel — in bounds, and
            # the tail fixup below overwrites what it read.
            supply = (ch_mb[prev] & _MB_LOW) > 0
            tails_b = np.nonzero(prev < 0)[0]
            if tails_b.size:
                supply[tails_b] = (
                    pk_launched[own[tails_b]] < length[tails_b]
                )
            b = ((mb >> 32) < length) & supply
            depth = self._depth_one
            if depth is None:
                cap = (mb & _MB_LOW) < self.pk_depth[own]
            else:
                cap = (mb & _MB_LOW) < depth
            # One inverse-permutation fill makes every held-index
            # lookup downstream (chain solver, link arbiter, blocked
            # scan) an O(1) gather instead of a bisection.
            self._ch_pos[held] = np.arange(held.size, dtype=np.int64)
            move = self._solve_chains(held, b, cap)
            if self._any_vc:
                move, blocked_slots = self._link_arbitrate(
                    held, own, b, cap, move
                )
            moving = held[move]
            if moving.size:
                prev_m = prev[move]
                own_m = own[move]
                has_prev = prev_m >= 0
                ch_mb[prev_m[has_prev]] -= 1
                src_m = moving[~has_prev]
                if src_m.size:
                    slots = own_m[~has_prev]
                    pk_launched[slots] += 1
                    fresh = self.pk_injected[slots] < 0
                    if fresh.any():
                        self.pk_injected[slots[fresh]] = cycle
                    done = pk_launched[slots] == pk_len[slots]
                    if done.any():
                        launch_done.append(slots[done])
                ch_mb[moving] += _MB_BOTH
                if self.loads is not None:
                    counted = cycle >= self.ch_warm[moving]
                    if counted.any():
                        self.loads[moving[counted]] += 1
                if self.ch_series is not None:
                    # Channel-util series counts flit shifts inside the
                    # measurement window only (the collector's gate).
                    windowed = (cycle >= self.ch_s0[moving]) & (
                        cycle < self.ch_s1[moving]
                    )
                    if windowed.any():
                        self.ch_series[moving[windowed]] += 1
                scratch = self.pk_scratch
                scratch[own_m] = True
                act |= scratch[movers]
                scratch[own_m] = False
        # C: header arrival at the next router.  ``heads`` is still the
        # pre-stage snapshot: neither ejection nor flit movement changes
        # ``pk_head_ch``, so no re-gather is needed.
        pos = np.nonzero((state == _MOVING) & (heads >= 0))[0]
        if pos.size:
            head = heads[pos]
            crossed = ch_mb[head] >= _MB_HI1
            pos = pos[crossed]
            if pos.size:
                head = head[crossed]
                slots = movers[pos]
                dstloc = self.ch_dst_local[head]
                self.pk_head_node[slots] = dstloc
                self.pk_head_dir[slots] = self.ch_dir[head]
                self.pk_head_vc[slots] = self.ch_vc[head]
                self.pk_wait[slots] = cycle
                # Re-entering the waiting set: within a member, arrival
                # order this cycle is the engine's mover order —
                # ascending slot, except multi-VC members walk their
                # movers in rotated-rank order.
                if self._any_vc:
                    simsa = self.pk_sim[slots]
                    key = np.where(
                        self.f_numvc[simsa] > 1, self.pk_order[slots], slots
                    )
                    aord = np.lexsort((key, simsa))
                    self.pk_wseq[slots[aord]] = self._wseq + np.arange(
                        slots.size, dtype=np.int64
                    )
                else:
                    self.pk_wseq[slots] = self._wseq + np.arange(
                        slots.size, dtype=np.int64
                    )
                self._wseq += int(slots.size)
                pk_state[slots] = np.where(
                    dstloc == self.pk_dst[slots], _EJECT_WAIT, _ROUTING
                )
        # D: tail flits release drained channels (possibly several per
        # worm per cycle, as in the engine's while-loop).  Only a worm
        # that just released can release again (channel state is private
        # to its chain), so later passes recheck just those.
        tails = pk_tail_ch[movers]
        sel = np.nonzero(tails >= 0)[0]
        lengths = pk_len[movers]
        while sel.size:
            tail = tails[sel]
            # Fully drained: every flit crossed (moved == length) and the
            # buffer is empty — one packed compare covers both.
            rel = ch_mb[tail] == (lengths[sel] << 32)
            sel = sel[rel]
            if sel.size == 0:
                break
            released = tail[rel]
            self.ch_owner[released] = -1
            self.ch_held[released] = False
            self.ch_freed[released] = True
            self._any_freed = True
            next_tail = ch_next[released]
            ch_next[released] = -1
            ch_prev[released] = -1
            ch_mb[released] = 0
            # The new tail's upstream pointer must not dangle at the
            # released channel: its supply is "launched < length" now
            # (provably exhausted — the released channel carried every
            # flit), exactly like the engine's popped hold list.
            chained = next_tail >= 0
            if chained.any():
                ch_prev[next_tail[chained]] = -1
            slots = movers[sel]
            pk_tail_ch[slots] = next_tail
            if not chained.all():
                pk_head_ch[slots[~chained]] = -1
            act[sel] = True
            tails[sel] = next_tail
            sel = sel[chained]
        # E: delivery — per member, the engine's mover order (ascending
        # slot; rotated rank for multi-VC members), so accounting
        # appends match.
        pos = np.nonzero(
            (pk_state[movers] == _EJECTING)
            & (self.pk_ejected[movers] == lengths)
        )[0]
        if pos.size:
            act[pos] = True
            dslots = movers[pos]
            if self._any_vc:
                simsd = self.pk_sim[dslots]
                key = np.where(
                    self.f_numvc[simsd] > 1, self.pk_order[dslots], dslots
                )
                dslots = dslots[np.lexsort((key, simsd))]
            for slot in dslots:
                self.fast[int(self.pk_sim[slot])]._deliver(int(slot), cycle)
        if launch_done:
            ls = np.concatenate(launch_done)
            if self._any_vc:
                simsl = self.pk_sim[ls]
                key = np.where(self.f_numvc[simsl] > 1, self.pk_order[ls], ls)
                ls = ls[np.lexsort((key, simsl))]
            else:
                ls = np.sort(ls)
            for slot in ls:
                self.fast[int(self.pk_sim[slot])]._release_injection(int(slot))
        if act.any():
            # Duplicate member hits assign the same value — no reduction
            # needed, so skip the np.unique pass.
            self.m_lastprog[self.pk_sim[movers[act]]] = cycle
        idle = np.nonzero(~act)[0]
        if idle.size:
            slots = movers[idle]
            slots = slots[pk_state[slots] != _DONE]
            if blocked_slots is not None and slots.size:
                # A link-blocked worm is not dormant: its buffers did
                # not change, but the contended link can free next cycle
                # without any grant/release event (the engine's
                # ``_link_blocked`` flag).
                self.pk_flag[blocked_slots] = True
                slots = slots[~self.pk_flag[slots]]
                self.pk_flag[blocked_slots] = False
            # A zero-move scan stays zero until an arbitration grant
            # wakes the worm (its buffers are private) — park it.
            self.pk_dormant[slots] = True

    def _solve_chains(self, held, b, cap):
        """Solve the per-chain move recurrence
        ``move_i = b_i & (cap_i | move_{i+1})`` for every held channel
        at once (i+1 = the worm's next-downstream hold).

        Chain state packed per hold: 0 = cannot move (b false, absorbing
        under composition), 1 = undecided (supplied but at capacity —
        moves iff its downstream hold moves), 3 = moves outright.
        Composing an undecided hold with the segment ahead of it just
        adopts that segment's state, so pointer doubling reduces to
        ``v[i] = v[i + 2**r]`` for the undecided set — decided holds are
        absorbing (0) or have a monotone move bit (3) and drop out,
        which shrinks the active set far faster than composing every
        linked hold.
        """
        ch_next = self.ch_next
        v = b.astype(np.int8) * (1 + 2 * cap.astype(np.int8))
        und = np.nonzero(v == 1)[0]
        if und.size:
            # Links are only ever chased *from* undecided holds, so
            # build them for just those: the downstream channel of a
            # held channel belongs to the same worm (hence is in the
            # sorted held array) — ``_ch_pos`` (filled by the caller)
            # inverts that array in O(1) per lookup.  A decided
            # partner's missing link (-1) is harmless: its ``jumped``
            # value is read into a lane the ``vp == 1`` gate discards.
            lnk = np.full(held.size, -1, dtype=np.int64)
            nxtu = ch_next[held[und]]
            has_n = nxtu >= 0
            idx = und[has_n]
            lnk[idx] = self._ch_pos[nxtu[has_n]]
            while idx.size:
                part = lnk[idx]
                vp = v[part]
                v[idx] = vp
                jumped = lnk[part]
                lnk[idx] = jumped
                idx = idx[(vp == 1) & (jumped >= 0)]
        return v == 3

    def _link_arbitrate(self, held, own, b, cap, move):
        """Enforce one flit per physical link per cycle for multi-VC
        members, replaying the event engine's ``links_used`` bookkeeping
        exactly.

        The engine walks worms in rotated order; a worm's hold skips its
        move (and marks the worm link-blocked, exempting it from
        dormancy) when an earlier-walked worm already moved a flit on
        the same physical link this cycle.  Vectorized as a
        wave-confirmation fixpoint over ``pk_order`` (the rotated rank):

        * solve the chain recurrence with the current link gates;
        * a worm is *confirmed* when, on every link it would move on,
          no unconfirmed worm of smaller rotated rank also wants to
          move — its move set is then final (gates only ever shrink
          move sets, so a smaller-rank mover can never appear later);
        * confirmed worms consume their links (``taken[link] = rank``),
          unconfirmed holds on consumed links gate, and only the newly
          gated worms re-solve (chains are private, so a gate cannot
          change any other worm's moves).  Each wave confirms at least
          the globally smallest-rank unconfirmed mover, so the loop
          terminates.

        Two confirmed worms can never consume the same link — within a
        member rotated ranks are distinct and the larger rank would
        have stayed unconfirmed — so consuming is a plain scatter, not
        a minimum-reduction.

        Worms holding the same physical link twice (possible only via
        non-minimal escape revisits) are finalized by an exact scalar
        walk instead, because their private ``links_used`` set is
        order-dependent within the worm.
        """
        if self._all_vc:
            mvi = np.nonzero(move)[0]
        else:
            multi = self.ch_multi[held]
            if not multi.any():
                return move, None
            mvi = np.nonzero(move & multi)[0]
        lmin = self._link_min
        # Fast path: in the ungated solve, no physical link carries two
        # would-be movers — every worm is immediately confirmable, no
        # hold gates, nobody is link-blocked.  Duplicate detection by
        # scatter-then-compare (last write wins, so every earlier
        # duplicate reads back a different stamp) — ``_link_min`` needs
        # no reset, its consumers always overwrite before reading.
        mlk = self.ch_link[held[mvi]]
        if mlk.size > 1:
            stamp = np.arange(mlk.size, dtype=np.int64)
            lmin[mlk] = stamp
            dup = lmin[mlk] != stamp
            contested = bool(dup.any())
        else:
            contested = False
        if not contested:
            return move, None
        taken = self._link_taken
        pk_flag = self.pk_flag
        scratch = self.pk_scratch
        # Only the worms moving on a contested link (and their chains)
        # enter the wave fixpoint: an uncontested mover is confirmed by
        # definition — no other mover wants its links — and the links
        # it consumes could only ever gate non-moving holds, which
        # never changes a move (moves only shrink).  ``dup`` marks
        # every earlier duplicate, so one scatter through a per-link
        # flag recovers *all* movers on contested links.
        dflag = self._link_dup
        dflag[mlk[dup]] = True
        hot = own[mvi[dflag[mlk]]]
        dflag[mlk] = False
        pk_flag[hot] = False
        scratch[hot] = True
        if self._all_vc:
            rem = np.nonzero(scratch[own])[0]
        else:
            rem = np.nonzero(scratch[own] & multi)[0]
        scratch[hot] = False
        # ``rem`` holds every hold (held-index) of a hot worm; gather
        # its links/owners/ranks once, so the waves below never touch a
        # full-sized array again.
        lk_r = self.ch_link[held[rem]]
        sl_r = own[rem]
        or_r = self.pk_order[sl_r]
        # Intra-worm duplicate physical links (non-minimal revisits of
        # the same edge on different VCs): scalar-walk those worms.
        # Impossible without misroutes — a duplicate link needs a node
        # revisit — so the scan is skipped when no multi-VC member
        # allows them.
        if self._any_vc_mis:
            o2 = np.lexsort((lk_r, sl_r))
            sw = sl_r[o2]
            sl = lk_r[o2]
            d = (sw[1:] == sw[:-1]) & (sl[1:] == sl[:-1])
            dupm = np.unique(sw[1:][d]) if d.any() else None
        else:
            dupm = None
        gate = np.zeros(held.size, dtype=bool)
        # ``alive`` tracks the rem-positions whose worms are still
        # unconfirmed — each wave's reductions run over that shrinking
        # set only.
        alive = np.arange(rem.size, dtype=np.int64)
        for _ in range(alive.size + 1):
            um = alive[move[rem[alive]]]
            if um.size == 0:
                break
            ulk = lk_r[um]
            uor = or_r[um]
            lmin[ulk] = _NEVER
            np.minimum.at(lmin, ulk, uor)
            us = sl_r[um]
            bad = us[lmin[ulk] < uor]
            scratch[bad] = True
            conf = ~scratch[us]
            scratch[bad] = False
            if not conf.any():  # pragma: no cover - unreachable guard
                break
            em = um[conf]
            ew = us[conf]
            walked = None
            if dupm is not None:
                isdup = np.isin(ew, dupm)
                if isdup.any():
                    walked = np.unique(ew[isdup])
                    em = em[~isdup]
                    ew = ew[~isdup]
            pk_flag[ew] = True
            taken[lk_r[em]] = or_r[em]
            if walked is not None:
                for w in walked:
                    for i, val in self._walk_worm(int(w), b, cap):
                        move[i] = val
                pk_flag[walked] = True
            alive = alive[~pk_flag[sl_r[alive]]]
            if alive.size == 0:
                break
            ng = alive[
                ~gate[rem[alive]] & (taken[lk_r[alive]] < or_r[alive])
            ]
            if ng.size:
                gate[rem[ng]] = True
                self._regate_worms(
                    np.unique(sl_r[ng]), b, cap, gate, move
                )
        pk_flag[hot] = False
        taken[lk_r] = _NEVER
        # Link-blocked worms: an attempted move (supply + capacity-or-
        # downstream-move against the *final* move set) denied only by
        # the link — exactly when the engine sets ``_link_blocked``.
        nxt = self.ch_next[held]
        hasn = nxt >= 0
        mnext = np.zeros(held.size, dtype=bool)
        mnext[hasn] = move[self._ch_pos[nxt[hasn]]]
        blk = b & (cap | mnext) & ~move
        blocked = own[blk] if blk.any() else None
        return move, blocked

    def _regate_worms(self, ws, b, cap, gate, move) -> None:
        """Re-solve the newly link-gated worms' chains in place by the
        head-to-tail recurrence ``move_i = b_i & ~gate_i &
        (cap_i | move_{i+1})``, walking every chain in lockstep (one
        vector step per hold depth).  Chains are private to their worm,
        so a gate never changes any other worm's moves — this replaces
        the full re-solve the fixpoint loop used to run each wave."""
        pos = self._ch_pos
        ch_prev = self.ch_prev
        c = self.pk_head_ch[ws]
        mv = np.zeros(c.size, dtype=bool)
        while True:
            alive = c >= 0
            if not alive.all():
                if not alive.any():
                    break
                c = c[alive]
                mv = mv[alive]
            i = pos[c]
            mv = b[i] & ~gate[i] & (cap[i] | mv)
            move[i] = mv
            c = ch_prev[c]

    def _walk_worm(self, w: int, b, cap):
        """Finalize one confirmed worm by the engine's exact head-to-
        tail hold walk (needed only when the worm holds the same
        physical link on two VCs, so its private ``links_used`` set is
        order-dependent).  Returns (held-index, move) overrides."""
        order_w = int(self.pk_order[w])
        taken = self._link_taken
        ch_link = self.ch_link
        ch_prev = self.ch_prev
        pos = self._ch_pos
        used: set = set()
        out: List[Tuple[int, bool]] = []
        c = int(self.pk_head_ch[w])
        mv_next = False
        while c >= 0:
            i = int(pos[c])
            mv = False
            if b[i] and (cap[i] or mv_next):
                link = int(ch_link[c])
                if taken[link] >= order_w and link not in used:
                    mv = True
                    used.add(link)
            out.append((i, mv))
            mv_next = mv
            c = int(ch_prev[c])
        for link in used:
            if order_w < taken[link]:
                taken[link] = order_w
        return out

    # -- post-move stages: watchdog + collectors -----------------------------

    def _watchdog_pass(self, cycle: int) -> None:
        """The event engine's post-move stall watchdog, batched."""
        live = self.live
        state = self.pk_state[live]
        waits = live[(state == _ROUTING) | (state == _EJECT_WAIT)]
        if waits.size == 0:
            return
        sims = self.pk_sim[waits]
        timed = self.m_timeout[sims] > 0
        if timed.any():
            tw = waits[timed]
            ts = sims[timed]
            age = cycle - self.pk_wait[tw]
            np.maximum.at(self.m_maxstall, ts, age)
            over = age > self.m_timeout[ts]
            if over.any():
                victims = tw[over]
                vsims = ts[over]
                # Per member: one wait-for graph over the pre-kill
                # waiting set, then kills in waiting (wseq) order —
                # the engine's exact sequence.
                for f in np.unique(vsims):
                    self._timeout_kill(
                        self.fast[int(f)],
                        waits[sims == f],
                        victims[vsims == f],
                        cycle,
                    )
                self._refresh_live()

    def _collect_pass(self, cycle: int) -> None:
        """The collectors' ``on_cycle_end``, batched: blocked counting
        sees the post-watchdog waiting set, as in the engine."""
        if self.node_blocked is not None:
            live = self.live
            state = self.pk_state[live]
            waits = live[(state == _ROUTING) | (state == _EJECT_WAIT)]
            if waits.size:
                sims = self.pk_sim[waits]
                counted = (
                    self.m_blocked[sims]
                    & (cycle >= self.f_warmup[sims])
                    & (cycle < self.m_genend[sims])
                )
                if counted.any():
                    np.add.at(
                        self.node_blocked,
                        self.f_node_off[sims[counted]]
                        + self.pk_head_node[waits[counted]],
                        1,
                    )
        if self.ch_series is not None:
            due = np.nonzero(self.m_act & (self.m_nextroll == cycle))[0]
            for f in due:
                member = self.fast[int(f)]
                lo = member.ch_off
                hi = lo + member.num_ch
                member._series_buckets.append(
                    [int(x) for x in self.ch_series[lo:hi]]
                )
                self.ch_series[lo:hi] = 0
                nxt = cycle + member.config.channel_series_period
                self.m_nextroll[f] = (
                    nxt if nxt < member.config.generation_cycles else _NEVER
                )

    def _timeout_kill(self, member: _FastMember, waits, victims, cycle: int) -> None:
        """Kill one member's over-age headers, classifying each against
        the wait-for graph (circular wait vs dead-end stall) exactly
        like the engine's ``_check_packet_timeouts``."""
        graph: DiGraph = DiGraph()
        group = self.groups[int(self.f_group[member.fidx])]
        ch_off = member.ch_off
        node_off = member.node_off
        span = group.num_dirs + 1
        dead = self.ch_dead
        for slot in waits:
            slot = int(slot)
            if self.pk_state[slot] == _EJECT_WAIT:
                holder = int(
                    self.ej_owner[node_off + int(self.pk_head_node[slot])]
                )
                if holder >= 0 and holder != slot:
                    graph.add_edge(slot, holder)
                continue
            row = (
                int(self.pk_head_node[slot]) * group.N
                + int(self.pk_dst[slot])
            ) * span + int(self.pk_head_dir[slot])
            if group.num_vc > 1:
                # The wait-for graph watches the minimal (direction, vc)
                # pairs for the header's arrival VC class, in candidate
                # order — the same rows arbitration reads.
                row = row * group.num_vc + int(self.pk_head_vc[slot])
            group.ensure_rows(np.asarray([row]), escape=False)
            holders: List[int] = []
            blocked = True
            for cid in group.cand[row]:
                cid = int(cid)
                if cid < 0:
                    break  # sentinel padding: row exhausted
                gchan = ch_off + cid
                if dead is not None and dead[gchan]:
                    continue  # fault-masked candidate
                holder = int(self.ch_owner[gchan])
                if holder < 0:
                    blocked = False
                    break
                holders.append(holder)
            if blocked:
                for holder in holders:
                    if holder != slot:
                        graph.add_edge(slot, holder)
        circular = {s for comp in graph.cyclic_components() for s in comp}
        for slot in victims[np.argsort(self.pk_wseq[victims])]:
            slot = int(slot)
            cause = (
                "timeout-deadlock" if slot in circular else "timeout-stall"
            )
            member._kill(slot, cycle, cause, killed=False)

    # -- per-cycle member bookkeeping ---------------------------------------

    def _finalize_fast(self, member: _FastMember) -> SimulationResult:
        result = member.result
        result.inflight_at_end = member.inflight
        if member.config.track_channel_load and self.loads is not None:
            result.channel_flits = [
                int(x)
                for x in self.loads[
                    member.ch_off : member.ch_off + member.num_ch
                ]
            ]
        grant_wait = int(self.m_maxgrant[member.fidx])
        if grant_wait > result.max_grant_wait_cycles:
            result.max_grant_wait_cycles = grant_wait
        stall = int(self.m_maxstall[member.fidx])
        if stall > result.max_stall_age_cycles:
            result.max_stall_age_cycles = stall
        state = self.pk_state[: self.n_slots]
        stalled = np.nonzero(
            (self.pk_sim[: self.n_slots] == member.fidx)
            & ((state == _ROUTING) | (state == _EJECT_WAIT))
        )[0]
        end = member._last_cycle
        for slot in stalled:
            age = end - int(self.pk_wait[slot])
            if age > result.max_stall_age_cycles:
                result.max_stall_age_cycles = age
        config = member.config
        period = config.channel_series_period
        if period > 0:
            # The collector's partial final bucket: measured cycles seen
            # beyond the last rollover (the engine counts them in
            # ``_cycles_in_bucket``; here they are implied by the cycle
            # the member stopped at).
            measured_seen = max(
                0,
                min(member._last_cycle + 1, config.generation_cycles)
                - config.warmup_cycles,
            )
            buckets = member._series_buckets
            if measured_seen - len(buckets) * period > 0:
                lo = member.ch_off
                buckets.append(
                    [int(x) for x in self.ch_series[lo : lo + member.num_ch]]
                )
            result.channel_util_series = buckets
            result.channel_series_period = period
        if config.collect_router_blocked:
            lo = member.node_off
            result.router_blocked_cycles = [
                int(x)
                for x in self.node_blocked[
                    lo : lo + member.topology.num_nodes
                ]
            ]
        if config.collect_latency_histogram:
            result.latency_histogram = member._lat_hist
        return result

    # -- the batched run loop ------------------------------------------------

    def _fast_cycle(self, cycle: int) -> None:
        """One cycle of the vectorized kernels for every active member:
        the same stage order as ``WormholeSimulator.run_cycle``."""
        fast = self.fast
        m_act = self.m_act
        if self._any_faults:
            for f in np.nonzero(m_act & (self.m_nextfault <= cycle))[0]:
                self._apply_faults(fast[int(f)], cycle)
        if self._any_drops:
            for f in np.nonzero(m_act & (self.m_nextretry <= cycle))[0]:
                fast[int(f)]._pop_retries(cycle)
        # Generation/injection touch Python only for members whose
        # arrival calendar or injector backlog is due.
        for f in np.nonzero(m_act & (self.m_nextgen <= cycle))[0]:
            member = fast[int(f)]
            if cycle >= member.config.generation_cycles:
                self.m_nextgen[f] = np.inf
            else:
                member._generate(cycle)
        for f in np.nonzero(m_act & self.m_pending)[0]:
            fast[int(f)]._inject(cycle)
        self._refresh_live()
        self._arbitrate_vec(cycle)
        self._move_vec(cycle)
        if self._any_timeout:
            self._watchdog_pass(cycle)
        if self._any_collect:
            self._collect_pass(cycle)

    def _mark(self, phase: str, start: float) -> float:
        """Charge ``now - start`` to ``phase`` on every profiled fast
        member and return ``now`` (the next phase's start)."""
        now = time.perf_counter()
        dt = now - start
        for prof in self._fast_profilers:
            prof.add(phase, dt)
        return now

    def _fast_cycle_profiled(self, cycle: int) -> None:
        """``_fast_cycle`` with per-phase wall-clock accounting.

        Identical stage order and state transitions — the profiler only
        observes ``time.perf_counter`` around each kernel pass, so
        profiled runs stay bit-identical.  Routing happens inside the
        arbitration kernel (LUT gathers), so the ``route`` phase is
        folded into ``allocate`` on this backend.
        """
        fast = self.fast
        m_act = self.m_act
        t = time.perf_counter()
        if self._any_faults:
            for f in np.nonzero(m_act & (self.m_nextfault <= cycle))[0]:
                self._apply_faults(fast[int(f)], cycle)
        t = self._mark("faults", t)
        if self._any_drops:
            for f in np.nonzero(m_act & (self.m_nextretry <= cycle))[0]:
                fast[int(f)]._pop_retries(cycle)
        t = self._mark("retries", t)
        for f in np.nonzero(m_act & (self.m_nextgen <= cycle))[0]:
            member = fast[int(f)]
            if cycle >= member.config.generation_cycles:
                self.m_nextgen[f] = np.inf
            else:
                member._generate(cycle)
        t = self._mark("generate", t)
        for f in np.nonzero(m_act & self.m_pending)[0]:
            fast[int(f)]._inject(cycle)
        t = self._mark("inject", t)
        self._refresh_live()
        self._arbitrate_vec(cycle)
        t = self._mark("allocate", t)
        self._move_vec(cycle)
        t = self._mark("advance", t)
        if self._any_timeout:
            self._watchdog_pass(cycle)
        t = self._mark("watchdog", t)
        if self._any_collect:
            self._collect_pass(cycle)
        self._mark("collect", t)

    def run(self) -> List[SimulationResult]:
        members = self.members
        fast = self.fast
        scalars = [m for m in members if not m.fast]
        max_total = max(m.total for m in members)
        m_act = self.m_act
        fast_cycle = (
            self._fast_cycle_profiled
            if self._fast_profilers
            else self._fast_cycle
        )
        for cycle in range(max_total):
            running = 0
            for member in scalars:
                if member.frozen:
                    continue
                if cycle >= member.total:
                    member.frozen = True
                    continue
                member.run_cycle(cycle)
                if not member.frozen:
                    running += 1
            if m_act.any():
                expired = m_act & (self.m_total <= cycle)
                if expired.any():
                    for f in np.nonzero(expired)[0]:
                        member = fast[int(f)]
                        member.frozen = True
                        member._last_cycle = member.total - 1
                        m_act[f] = False
                        self._drop_member_slots(int(f))
            if m_act.any():
                fast_cycle(cycle)
                for f in np.nonzero(m_act & (self.m_next_sample == cycle))[
                    0
                ]:
                    member = fast[int(f)]
                    member.result.backlog_samples.append(member._backlog)
                    self.m_next_sample[f] += self.m_period[f]
                dead = np.nonzero(
                    m_act
                    & (cycle - self.m_lastprog > self.m_dlthresh)
                    & (self.m_inflight > 0)
                )[0]
                for f in dead:
                    member = fast[int(f)]
                    member.result.deadlock = True
                    member.result.deadlock_cycle = cycle
                    member.frozen = True
                    member._last_cycle = cycle
                    m_act[f] = False
                    self._drop_member_slots(int(f))
                running += int(m_act.sum())
            if running == 0:
                break
        for member in fast:
            if not member.frozen:
                member._last_cycle = member.total - 1
        results = []
        for member in members:
            if member.fast:
                results.append(self._finalize_fast(member))
            else:
                results.append(member.finalize())
        return results


class ArrayWormholeSimulator:
    """The array-backend equivalent of one-point ``WormholeSimulator``.

    A batch of one.  Accepts the same sink/profiler hooks; points whose
    feature set leaves the vectorized envelope (see
    :func:`vectorized_envelope`) transparently run on a cycle-locked
    event-engine member, so every configuration is supported and
    bit-identical (documented per feature in docs/SIMULATOR.md).
    """

    def __init__(
        self, algorithm, pattern, config: SimulationConfig,
        sink=None, profiler=None,
    ) -> None:
        _require_numpy()
        self._core = _BatchCore(
            [(algorithm, pattern, config)],
            sinks=[sink],
            profilers=[profiler],
        )

    @property
    def vectorized(self) -> bool:
        """Whether this point runs on the vectorized kernels (else it is
        driven through a cycle-locked event-engine member)."""
        return self._core.members[0].fast

    @property
    def demotion_counts(self) -> Dict[str, int]:
        """Demotion reasons for this point (empty when vectorized)."""
        return dict(self._core.demotions)

    def run(self) -> SimulationResult:
        return self._core.run()[0]


class BatchSimulator:
    """Advance B independent operating points through one array engine.

    ``points`` is a sequence of ``(algorithm, pattern, config)`` tuples;
    :meth:`run` returns their :class:`SimulationResult` objects in input
    order, each bit-identical to a solo run of the same point (on either
    backend).  Points are cycle-locked: each simulated cycle advances
    every still-running member, the vectorized ones all inside shared
    numpy kernels — which is where the batched points-per-second
    headline in BENCH_engine.json comes from.
    """

    def __init__(self, points: Sequence[tuple]) -> None:
        _require_numpy()
        self._core = _BatchCore(points)

    @property
    def batch_size(self) -> int:
        return len(self._core.members)

    @property
    def vectorized_count(self) -> int:
        """How many members run on the vectorized kernels."""
        return len(self._core.fast)

    @property
    def vectorized_fraction(self) -> float:
        """Fraction of batch members on the vectorized kernels."""
        return len(self._core.fast) / len(self._core.members)

    @property
    def demotion_counts(self) -> Dict[str, int]:
        """How many members each envelope gate demoted to the scalar
        path, keyed by reason (see :func:`demotion_reasons`; runtime
        gates add ``"trace-sink"`` and ``"lut-cap"``).  A member failing
        several gates counts once per gate."""
        return dict(self._core.demotions)

    def run(self) -> List[SimulationResult]:
        return self._core.run()


def make_simulator(
    algorithm, pattern, config: SimulationConfig,
    sink=None, profiler=None,
):
    """Build the simulator selected by ``config.backend``.

    ``"event"`` (default) is the event-driven engine; ``"array"`` is the
    numpy struct-of-arrays backend (requires the ``repro[array]``
    extra).  Both expose ``run() -> SimulationResult`` and are
    bit-identical per the cross-backend equivalence suite.
    """
    if config.backend == "array":
        return ArrayWormholeSimulator(
            algorithm, pattern, config, sink=sink, profiler=profiler
        )
    return WormholeSimulator(
        algorithm, pattern, config, sink=sink, profiler=profiler
    )
