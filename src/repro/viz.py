"""ASCII rendering of meshes, paths, and turn sets.

Reproduces the *qualitative* figures of the paper as terminal art:
Figures 3/5a/9a/10a (which turns a prohibition set allows) and Figures
5b/9b/10b (example paths through an 8x8 mesh).  Used by the examples and
handy when debugging a routing algorithm interactively.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .core.turn_model import TurnModel
from .topology.base import COMPASS_NAMES, Direction, EAST, NORTH, SOUTH, WEST
from .topology.mesh import Mesh2D

_ARROWS = {WEST: "<", EAST: ">", SOUTH: "v", NORTH: "^"}


def render_mesh_paths(
    mesh: Mesh2D,
    paths: Sequence[Sequence[int]],
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Draw node paths on a 2D mesh, Figure 5b style.

    Nodes are ``+`` (``S``/``D`` for each path's endpoints); each path's
    hops are drawn with direction arrows on the edges between nodes.
    Row 0 (south) is printed at the bottom, matching the paper's compass.
    """
    m, n = mesh.m, mesh.n
    width, height = 2 * m - 1, 2 * n - 1
    grid = [[" "] * width for _ in range(height)]
    for y in range(n):
        for x in range(m):
            grid[2 * y][2 * x] = "+"

    endpoints: Dict[int, str] = {}
    for index, path in enumerate(paths):
        if not path:
            continue
        endpoints.setdefault(path[0], "S")
        endpoints.setdefault(path[-1], "D")
        for here, there in zip(path, path[1:]):
            x1, y1 = mesh.coords(here)
            x2, y2 = mesh.coords(there)
            ex, ey = x1 + x2, y1 + y2  # midpoint in grid coordinates
            if y1 == y2:
                arrow = ">" if x2 > x1 else "<"
            else:
                arrow = "^" if y2 > y1 else "v"
            cell = grid[ey][ex]
            grid[ey][ex] = arrow if cell == " " else "*"  # * = shared edge

    for node, mark in endpoints.items():
        x, y = mesh.coords(node)
        grid[2 * y][2 * x] = mark

    lines = []
    if labels:
        for index, label in enumerate(labels):
            lines.append(f"path {index + 1}: {label}")
    # Print north (large y) first so the page matches the compass.
    for row in reversed(grid):
        lines.append("".join(row).rstrip())
    return "\n".join(lines)


def render_turn_set(model: TurnModel) -> str:
    """List the eight 2D turns with their verdicts, Figure 5a style."""
    if model.n_dims != 2:
        raise ValueError("turn-set rendering supports 2D models only")
    lines = [f"turn model: {model.name}"]
    for frm in (WEST, EAST, SOUTH, NORTH):
        allowed = [
            COMPASS_NAMES[to]
            for to in (WEST, EAST, SOUTH, NORTH)
            if to.dim != frm.dim and model.is_allowed(frm, to)
        ]
        prohibited = [
            COMPASS_NAMES[to]
            for to in (WEST, EAST, SOUTH, NORTH)
            if to.dim != frm.dim and not model.is_allowed(frm, to)
        ]
        line = f"  travelling {COMPASS_NAMES[frm]:5s}: may turn "
        line += ", ".join(allowed) if allowed else "(nowhere)"
        if prohibited:
            line += f"   [prohibited: {', '.join(prohibited)}]"
        lines.append(line)
    lines.append(
        f"  prohibits {len(model.prohibited)}/8 turns; "
        f"breaks all abstract cycles: {model.breaks_all_cycles()}"
    )
    return "\n".join(lines)


def render_channel_utilization(
    mesh: Mesh2D,
    channels: Sequence,
    channel_flits: Sequence[int],
    measure_cycles: int,
    direction: Direction,
) -> str:
    """Per-channel utilization (percent of cycles busy) as a grid.

    The value printed at ``(x, y)`` is the utilization of the channel
    *leaving* that node in ``direction`` during the measurement window.
    Pairs with ``SimulationResult.channel_flits`` to visualise where a
    workload concentrates — e.g. the diagonal funnel of xy routing under
    matrix transpose.
    """
    if measure_cycles <= 0:
        raise ValueError("measure_cycles must be positive")
    values: Dict[tuple, str] = {}
    for channel, flits in zip(channels, channel_flits):
        if channel.direction == direction:
            percent = 100.0 * flits / measure_cycles
            values[mesh.coords(channel.src)] = f"{percent:.0f}"
    lines = [
        f"channel utilization %, direction "
        f"{COMPASS_NAMES.get(direction, direction)}:"
    ]
    width = max((len(v) for v in values.values()), default=1) + 1
    for y in range(mesh.n - 1, -1, -1):
        row = []
        for x in range(mesh.m):
            row.append(values.get((x, y), ".").rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


def render_utilization_heatmaps(
    mesh: Mesh2D,
    channels: Sequence,
    channel_totals: Sequence[int],
    measure_cycles: int,
    directions: Optional[Sequence[Direction]] = None,
) -> str:
    """All four compass heatmaps from per-channel flit totals.

    Virtual channels are folded onto their physical link (the runtime
    channel list repeats each physical channel ``num_vc`` times; totals
    for the same ``(src, direction)`` are summed), so the grids always
    show physical-link utilization.  Pairs with the observability
    collectors' ``channel_util_series`` (summed over buckets) or with
    ``SimulationResult.channel_flits``.
    """
    if measure_cycles <= 0:
        raise ValueError("measure_cycles must be positive")
    totals: Dict[tuple, int] = {}
    for channel, flits in zip(channels, channel_totals):
        key = (channel.src, channel.direction)
        totals[key] = totals.get(key, 0) + flits
    if directions is None:
        directions = [WEST, EAST, SOUTH, NORTH]
    sections = []
    for direction in directions:
        values: Dict[tuple, str] = {
            mesh.coords(src): f"{100.0 * flits / measure_cycles:.0f}"
            for (src, chan_dir), flits in totals.items()
            if chan_dir == direction
        }
        lines = [
            f"channel utilization %, direction "
            f"{COMPASS_NAMES.get(direction, direction)}:"
        ]
        width = max((len(v) for v in values.values()), default=1) + 1
        for y in range(mesh.n - 1, -1, -1):
            row = []
            for x in range(mesh.m):
                row.append(values.get((x, y), ".").rjust(width))
            lines.append("".join(row))
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def hottest_channels(
    channels: Sequence, channel_flits: Sequence[int], top: int = 5
) -> List[tuple]:
    """The ``top`` busiest channels as (channel, flits), descending."""
    ranked = sorted(
        zip(channels, channel_flits), key=lambda cf: cf[1], reverse=True
    )
    return ranked[:top]


def render_channel_numbering(
    mesh: Mesh2D, numbering, direction: Direction
) -> str:
    """Print one direction's channel numbers as a grid (Figure 7 style).

    The number shown at ``(x, y)`` is the number of the channel leaving
    that node in ``direction`` (blank at edges without one).
    """
    values: Dict[tuple, int] = {}
    for channel, number in numbering.items():
        if channel.direction == direction:
            values[mesh.coords(channel.src)] = number
    width = max((len(str(v)) for v in values.values()), default=1) + 1
    lines = [f"channel numbers, direction {COMPASS_NAMES.get(direction, direction)}:"]
    for y in range(mesh.n - 1, -1, -1):
        row = []
        for x in range(mesh.m):
            value = values.get((x, y))
            row.append(("" if value is None else str(value)).rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)
