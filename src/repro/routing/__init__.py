"""Routing algorithms: the paper's partially adaptive turn-model
algorithms and the nonadaptive dimension-order baselines."""

from .base import RoutingAlgorithm, sort_canonical
from .dimension_order import DimensionOrder, ECube, XY
from .ndim import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    NegativeFirst,
    NorthLast,
    TwoPhaseRouting,
    WestFirst,
)
from .paths import (
    RoutingDeadEnd,
    directions_of_path,
    enumerate_minimal_paths,
    path_channels,
    path_respects_turn_model,
    walk,
)
from .pcube import NonminimalPCube, PCube
from .registry import (
    algorithm_names,
    hypercube_algorithms,
    make_algorithm,
    mesh_algorithms,
    torus_algorithms,
)
from .selection import (
    CongestionView,
    EngineCongestionView,
    MaxFreeCredits,
    RoundRobin,
    SelectionPolicy,
    ThresholdReroute,
    XYPreference,
    make_selection_policy,
    selection_policy_names,
)
from .table import RoutingTable
from .torus import ClassifiedNegativeFirst, FirstHopWraparound, MeshRestriction
from .turn_restricted import TurnRestrictedMinimal
from .virtual import DatelineDimensionOrder, EscapeVCAdaptive

__all__ = [
    "AllButOneNegativeFirst",
    "AllButOnePositiveLast",
    "ClassifiedNegativeFirst",
    "CongestionView",
    "DatelineDimensionOrder",
    "DimensionOrder",
    "ECube",
    "EngineCongestionView",
    "EscapeVCAdaptive",
    "FirstHopWraparound",
    "MaxFreeCredits",
    "MeshRestriction",
    "NegativeFirst",
    "NonminimalPCube",
    "NorthLast",
    "PCube",
    "RoundRobin",
    "RoutingAlgorithm",
    "RoutingDeadEnd",
    "RoutingTable",
    "SelectionPolicy",
    "ThresholdReroute",
    "TurnRestrictedMinimal",
    "TwoPhaseRouting",
    "WestFirst",
    "XY",
    "XYPreference",
    "algorithm_names",
    "directions_of_path",
    "enumerate_minimal_paths",
    "hypercube_algorithms",
    "make_algorithm",
    "make_selection_policy",
    "mesh_algorithms",
    "path_channels",
    "path_respects_turn_model",
    "selection_policy_names",
    "sort_canonical",
    "torus_algorithms",
    "walk",
]
