"""The routing-algorithm interface.

A routing algorithm is bound to a topology and answers one question: given
the node a packet's header currently occupies, its destination, and
(optionally) the direction it arrived travelling, which output directions
may it take next?

The paper's partially adaptive algorithms are *phase structured* ("route
first west, then adaptively ..."), which for minimal routing is fully
determined by the current node and the destination — the arrival direction
is not needed.  Nonminimal variants expose additional *escape* candidates:
legal but non-distance-reducing moves a router may use when every minimal
candidate is blocked.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from ..core.turn_model import TurnModel
from ..topology.base import Direction, Topology


class RoutingAlgorithm(ABC):
    """Base class: a routing function bound to one topology instance."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._validate_topology()

    def _validate_topology(self) -> None:
        """Subclasses override to reject unsupported topologies."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier, e.g. ``"west-first"``."""

    @property
    def is_minimal(self) -> bool:
        """Whether ``candidates`` only ever returns distance-reducing moves."""
        return True

    @property
    def is_adaptive(self) -> bool:
        """Whether the algorithm can offer more than one candidate."""
        return True

    @abstractmethod
    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        """Permitted output directions, in canonical (dim, sign) order.

        Returns an empty list when ``current == dest`` (the packet ejects).
        Every returned direction must lead to an existing neighbour.
        """

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        """Legal nonminimal moves, used only when all candidates are blocked.

        Minimal algorithms return an empty list (the paper's Section 6
        simulations route minimally).
        """
        return []

    # -- virtual channels (the extra-channel extension, [18]) ---------------

    def vc_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        """Permitted (direction, virtual channel) pairs.

        The default lets a VC-oblivious algorithm use any virtual channel
        of a permitted direction — safe for the turn-model algorithms,
        whose prohibition argument is independent of channel
        multiplicity.  VC-disciplined algorithms (dateline torus routing,
        escape-VC adaptive routing) override this.
        """
        return [
            (direction, vc)
            for direction in self.candidates(current, dest, in_direction)
            for vc in range(num_vc)
        ]

    def vc_escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        """Nonminimal (direction, vc) pairs; default mirrors
        :meth:`escape_candidates` over every virtual channel."""
        return [
            (direction, vc)
            for direction in self.escape_candidates(current, dest, in_direction)
            for vc in range(num_vc)
        ]

    def turn_model(self) -> Optional[TurnModel]:
        """The prohibition set this algorithm routes within, if one exists."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.topology!r})"


def require_mesh_dims(topology: Topology, n_dims: int) -> None:
    if topology.n_dims != n_dims:
        raise ValueError(
            f"algorithm requires a {n_dims}-dimensional topology, "
            f"got {topology.n_dims} dimensions"
        )


def sort_canonical(directions: List[Direction]) -> List[Direction]:
    """Canonical (dim, sign) order — the paper's xy output-selection order
    prefers the earliest of these."""
    return sorted(directions, key=lambda d: (d.dim, d.sign))
