"""Routing with extra (virtual) channels — the extension the paper
defers to its companion work [18].

Two classic VC disciplines complement the turn model's no-extra-channel
results:

* :class:`DatelineDimensionOrder` — Dally & Seitz's torus routing.
  Section 4.2 observes that for k-ary n-cubes with ``k > 4`` *minimal*
  deadlock-free routing is impossible without extra channels (ring
  cycles involve no turns at all).  Splitting each ring into two virtual
  channels at a *dateline* — packets start on VC0 and switch to VC1 when
  they cross the wraparound — breaks the ring cycle and makes minimal
  dimension-order torus routing deadlock free.

* :class:`EscapeVCAdaptive` — fully adaptive minimal mesh routing in the
  style of [18]/Duato: virtual channels 1..v-1 are *adaptive* (any
  productive direction), virtual channel 0 is an *escape* running xy.
  A packet may always fall back to the escape channel, and once on it,
  stays on it (the restricted discipline, which is deadlock free because
  the escape subnetwork's dependencies are acyclic and always
  requestable).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..topology.base import Direction, NEGATIVE, POSITIVE, Topology
from ..topology.torus import KAryNCube
from .base import RoutingAlgorithm


class DatelineDimensionOrder(RoutingAlgorithm):
    """Minimal dimension-order routing on a torus with dateline VCs.

    Requires at least two virtual channels.  Within each dimension a
    packet travels on VC0 until the hop that crosses the wraparound edge
    (the dateline), which — and everything after it in that dimension —
    uses VC1.  Minimal paths wrap at most once per dimension, so both
    VC chains are acyclic.
    """

    def __init__(self, topology: KAryNCube) -> None:
        if not isinstance(topology, KAryNCube):
            raise ValueError("dateline routing requires a k-ary n-cube")
        super().__init__(topology)

    @property
    def name(self) -> str:
        return "dateline-dimension-order"

    @property
    def is_adaptive(self) -> bool:
        return False

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        for dim in range(self.topology.n_dims):
            delta = self.topology.offset(current, dest, dim)
            if delta < 0:
                return [Direction(dim, NEGATIVE)]
            if delta > 0:
                return [Direction(dim, POSITIVE)]
        return []

    def vc_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        if num_vc < 2:
            raise ValueError(
                "dateline routing needs at least two virtual channels"
            )
        dirs = self.candidates(current, dest, in_direction)
        if not dirs:
            return []
        direction = dirs[0]
        if self.topology.is_wraparound(current, direction):
            vc = 1  # the dateline crossing itself
        elif (
            in_direction is not None
            and in_direction.dim == direction.dim
            and in_vc == 1
        ):
            vc = 1  # already crossed the dateline in this dimension
        else:
            vc = 0
        return [(direction, vc)]


class EscapeVCAdaptive(RoutingAlgorithm):
    """Fully adaptive minimal mesh routing with an xy escape channel.

    ``vc_candidates`` offers every productive direction on the adaptive
    virtual channels (1..v-1), plus the xy-preferred direction on the
    escape channel (VC0), listed last so the arbiter prefers adaptivity.
    A packet that arrives on the escape channel stays on it and follows
    xy to the destination.
    """

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)

    def _validate_topology(self) -> None:
        if self.topology.n_dims < 2:
            raise ValueError("escape-VC routing expects a mesh with >= 2 dims")

    @property
    def name(self) -> str:
        return "escape-vc-adaptive"

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        return self.topology.productive_directions(current, dest)

    def _xy_direction(self, current: int, dest: int) -> Optional[Direction]:
        for dim in range(self.topology.n_dims):
            delta = self.topology.offset(current, dest, dim)
            if delta < 0:
                return Direction(dim, NEGATIVE)
            if delta > 0:
                return Direction(dim, POSITIVE)
        return None

    def vc_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        if num_vc < 2:
            raise ValueError(
                "escape-VC routing needs at least two virtual channels"
            )
        escape_dir = self._xy_direction(current, dest)
        if escape_dir is None:
            return []
        if in_vc == 0 and in_direction is not None:
            # Restricted discipline: once on the escape network, follow
            # xy on the escape network to the destination.
            return [(escape_dir, 0)]
        pairs: List[Tuple[Direction, int]] = [
            (direction, vc)
            for direction in self.topology.productive_directions(current, dest)
            for vc in range(1, num_vc)
        ]
        pairs.append((escape_dir, 0))
        return pairs
