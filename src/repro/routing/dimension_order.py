"""Nonadaptive dimension-order routing: xy (2D meshes) and e-cube
(hypercubes).

These are the paper's baselines (Section 1): route a packet completely
along the lowest dimension with a nonzero remaining offset, then the next,
and so on.  Ordering the dimensions breaks every abstract cycle — at the
cost of all adaptiveness (Figure 3)."""

from __future__ import annotations

from typing import List, Optional

from ..core.turn_model import TurnModel
from ..topology.base import Direction, NEGATIVE, POSITIVE
from .base import RoutingAlgorithm


class DimensionOrder(RoutingAlgorithm):
    """Route dimensions in ascending order; deterministic and deadlock free.

    On a 2D mesh this is the *xy* algorithm; on a hypercube it is
    *e-cube* (the offset in each dimension is a single bit flip).
    """

    def __init__(self, topology, order: Optional[List[int]] = None) -> None:
        super().__init__(topology)
        if order is None:
            order = list(range(topology.n_dims))
        if sorted(order) != list(range(topology.n_dims)):
            raise ValueError(
                f"order must be a permutation of the dimensions, got {order}"
            )
        self.order = list(order)

    @property
    def name(self) -> str:
        if self.order != sorted(self.order):
            return "dimension-order" + "".join(str(d) for d in self.order)
        if self.topology.n_dims == 2:
            return "xy"
        if set(self.topology.dims) == {2}:
            return "e-cube"
        return "dimension-order"

    @property
    def is_adaptive(self) -> bool:
        return False

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        for dim in self.order:
            delta = self.topology.offset(current, dest, dim)
            if delta < 0:
                return [Direction(dim, NEGATIVE)]
            if delta > 0:
                return [Direction(dim, POSITIVE)]
        return []

    def turn_model(self) -> TurnModel:
        if self.order == sorted(self.order):
            return TurnModel.xy(self.topology.n_dims)
        # A permuted order prohibits turns from later to earlier dimensions.
        from ..core.turns import ninety_degree_turns

        rank = {dim: i for i, dim in enumerate(self.order)}
        prohibited = {
            t
            for t in ninety_degree_turns(self.topology.n_dims)
            if rank[t.frm.dim] > rank[t.to.dim]
        }
        return TurnModel.from_prohibited(
            self.name, self.topology.n_dims, prohibited
        )


class XY(DimensionOrder):
    """The xy routing algorithm for 2D meshes (x completely, then y)."""

    def __init__(self, topology) -> None:
        if topology.n_dims != 2:
            raise ValueError("xy routing requires a 2D topology")
        super().__init__(topology, order=[0, 1])


class ECube(DimensionOrder):
    """The e-cube routing algorithm for hypercubes (lowest dimension first)."""

    def __init__(self, topology) -> None:
        if set(topology.dims) != {2}:
            raise ValueError("e-cube routing requires a binary hypercube")
        super().__init__(topology)
