"""Output-selection policies over the legal candidate set.

The paper fixes output selection to the *xy* rule — the free candidate
along the lowest dimension.  This module makes that choice pluggable: a
:class:`SelectionPolicy` picks one direction from the free legal
candidates the routing algorithm produced, optionally consulting a
:class:`~repro.routing.selection.congestion.CongestionView` for
downstream buffer state.

**Deadlock safety.**  A policy only ever *permutes* the candidate set:
it returns one of the directions it was offered, and those directions
were produced by the (turn-model-restricted, possibly fault-masked,
possibly escape-VC) routing algorithm.  No prohibited turn can be
introduced, no escape resource bypassed, so every turn-model and
escape-channel guarantee is untouched regardless of policy.  See
docs/SELECTION.md for the full argument.

**Engine contract.**  ``select`` is only invoked with a non-empty
``options`` sequence — the engine parks headers whose free candidate
set is empty, identically in the reference and optimised engines — so
stateful policies (round-robin pointers) stay bit-identical across
engines.  The engine builds a fresh policy instance per simulator, so
internal state never leaks between runs.

**Fallback contract.**  Congestion-aware policies fall back to the
static xy preference whenever their signal is unavailable: no bound
view, a dead candidate channel, or a downstream router with no live
outputs.  They never crash on missing data and never silently bias
toward the candidates that happen to have data.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ...topology.base import Direction
from .congestion import CongestionView


def static_preference(options: Sequence[Direction]) -> Direction:
    """The paper's xy rule: lowest dimension first, negative sign first
    (``Direction`` orders by ``(dim, sign)``, so plain ``min`` is it)."""
    return min(options)


class SelectionPolicy:
    """Picks one output direction from the free legal candidates."""

    name: str = "?"
    uses_congestion: bool = False

    def __init__(self) -> None:
        self.view: Optional[CongestionView] = None

    def bind(self, view: Optional[CongestionView]) -> None:
        """Attach the congestion view (the engine does this once, and
        only for policies that declare ``uses_congestion``)."""
        self.view = view

    def select(
        self,
        options: Sequence[Direction],
        packet,
        rng: random.Random,
    ) -> Direction:
        raise NotImplementedError

    def __call__(
        self,
        options: Sequence[Direction],
        packet,
        rng: random.Random,
    ) -> Direction:
        # Callable with the legacy OutputSelector signature, so the
        # engine's arbitration loop is policy-agnostic.
        return self.select(options, packet, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class XYPreference(SelectionPolicy):
    """The paper's default: the candidate along the lowest dimension.

    Bit-identical to the pre-policy engine (the golden-fingerprint
    regression pins this): same choice, no RNG draw, no congestion
    machinery ever constructed.
    """

    name = "xy"

    def select(self, options, packet, rng):
        return static_preference(options)


class RoundRobin(SelectionPolicy):
    """Rotate through the candidates in (dim, sign) order.

    A stateless-signal path-diversity baseline: successive decisions at
    the same policy spread worms across dimensions without consulting
    any congestion data (and without touching the RNG).
    """

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._pointer = 0

    def select(self, options, packet, rng):
        ordered = sorted(options)
        choice = ordered[self._pointer % len(ordered)]
        self._pointer += 1
        return choice


class MaxFreeCredits(SelectionPolicy):
    """Pick the candidate whose downstream router has the most free
    buffer slots (Garnet's adaptive heuristic, SNIPPETS.md Snippet 2).

    Ties rotate through the tied candidates round-robin, as in Garnet's
    per-port tie-break counter.  Missing data for *any* candidate falls
    back to the static preference — scoring only the candidates that
    happen to have data would silently bias against the rest.
    """

    name = "max-credits"
    uses_congestion = True

    def __init__(self) -> None:
        super().__init__()
        self._pointer = 0

    def select(self, options, packet, rng):
        view = self.view
        if view is None:
            return static_preference(options)
        node = packet.head_node
        best: List[Direction] = []
        best_credits = -1
        for direction in sorted(options):
            dst = view.downstream(node, direction)
            credits = None if dst is None else view.free_credits(dst)
            if credits is None:
                return static_preference(options)
            if credits > best_credits:
                best = [direction]
                best_credits = credits
            elif credits == best_credits:
                best.append(direction)
        if len(best) == 1:
            return best[0]
        choice = best[self._pointer % len(best)]
        self._pointer += 1
        return choice


class ThresholdReroute(SelectionPolicy):
    """Stay on the static preference until its downstream occupancy
    crosses a threshold, then switch to the least-loaded candidate
    (the per-port byte-counter rerouting of SNIPPETS.md Snippet 1).

    Below the threshold this is exactly :class:`XYPreference`, so light
    traffic keeps the paper's deterministic path behaviour; the policy
    only spends adaptivity once the preferred path is demonstrably
    backed up.  Missing data anywhere falls back to the preference.
    """

    name = "threshold"
    uses_congestion = True

    def __init__(self, threshold: int = 2) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def select(self, options, packet, rng):
        preferred = static_preference(options)
        view = self.view
        if view is None or len(options) == 1:
            return preferred
        node = packet.head_node
        dst = view.downstream(node, preferred)
        occupancy = None if dst is None else view.occupancy(dst)
        if occupancy is None or occupancy < self.threshold:
            return preferred
        best = preferred
        best_credits: Optional[int] = None
        for direction in sorted(options):
            d_dst = view.downstream(node, direction)
            credits = None if d_dst is None else view.free_credits(d_dst)
            if credits is None:
                return preferred
            if best_credits is None or credits > best_credits:
                best = direction
                best_credits = credits
        return best


SELECTION_POLICIES: Dict[str, Callable[..., SelectionPolicy]] = {
    XYPreference.name: XYPreference,
    RoundRobin.name: RoundRobin,
    MaxFreeCredits.name: MaxFreeCredits,
    ThresholdReroute.name: ThresholdReroute,
}


def selection_policy_names() -> List[str]:
    return sorted(SELECTION_POLICIES)


def make_selection_policy(name: str, threshold: int = 2) -> SelectionPolicy:
    """A fresh policy instance (per-run state must never be shared
    between simulators — determinism depends on it)."""
    factory = SELECTION_POLICIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown selection policy {name!r}; "
            f"known: {selection_policy_names()}"
        )
    if factory is ThresholdReroute:
        return ThresholdReroute(threshold)
    return factory()
