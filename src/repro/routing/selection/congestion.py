"""Congestion signals for output-selection policies.

The turn model decides *which* output channels are legal; a
congestion-aware :class:`~repro.routing.selection.policies.
SelectionPolicy` decides *among* them using a cheap view of downstream
buffer state.  The candidates a policy is offered are already-free
channels at the local router, so the discriminating signal is one hop of
lookahead: how backed up is the router at the far end of each candidate
channel?  That is exactly the credit signal Garnet-style adaptive
routers use — free buffer slots on the next router's output channels.

:class:`EngineCongestionView` is the engine-backed implementation.  It
is built and bound **only** when the configured policy declares
``uses_congestion`` — the default xy path never constructs one, never
consults one, and therefore pays nothing.  The view holds no derived
state that needs updating per cycle: every query reads the engine's
live ``channel_alloc`` / hold buffers lazily, so it is always current
at the instant of the routing decision and costs nothing between
decisions.

All queries degrade to ``None`` instead of guessing when the signal is
unavailable (a dead channel under a fault plan, a router whose outputs
have all failed).  Policies treat ``None`` as "no data" and fall back
to the static preference — covered by an explicit test, per the
fallback contract in docs/SELECTION.md.

This module must not import :mod:`repro.simulation` (the simulation
package imports the routing package); the engine is duck-typed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from ...topology.base import Direction


class CongestionView(Protocol):
    """What a congestion-aware selection policy reads.

    Implementations return ``None`` whenever the requested signal is
    unknown or meaningless (dead hardware, no live outputs) — never a
    fabricated number.
    """

    def downstream(self, node: int, direction: Direction) -> Optional[int]:
        """Router at the far end of the live channel leaving ``node`` in
        ``direction``, or ``None`` if the channel is absent or dead."""
        ...

    def free_credits(self, node: int) -> Optional[int]:
        """Free buffer slots summed over ``node``'s live output channels
        (higher = less congested), or ``None`` with no live outputs."""
        ...

    def occupancy(self, node: int) -> Optional[int]:
        """Flits buffered on ``node``'s live output channels (higher =
        more congested), or ``None`` with no live outputs."""
        ...


class EngineCongestionView:
    """Live congestion signals read straight off a running
    :class:`~repro.simulation.engine.WormholeSimulator`.

    Construction precomputes only static maps (per-node output channels
    and per-channel downstream routers); every signal query scans the
    engine's current allocation state, so the view never goes stale and
    the engine never spends a cycle keeping it fresh.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self._num_vc: int = engine.num_vc
        self._buffer_depth: int = engine.config.buffer_depth
        self._dst: Dict[Tuple[int, Direction], int] = {}
        self._outputs: Dict[int, List[Tuple[Direction, int]]] = {}
        for (src, direction), base in engine.channel_ids.items():
            self._dst[(src, direction)] = engine.channels[base].dst
            self._outputs.setdefault(src, []).append((direction, base))

    def downstream(self, node: int, direction: Direction) -> Optional[int]:
        fault_state = self._engine.fault_state
        if fault_state is not None and fault_state.channel_dead(node, direction):
            return None
        return self._dst.get((node, direction))

    def free_credits(self, node: int) -> Optional[int]:
        scan = self._scan(node)
        return None if scan is None else scan[0]

    def occupancy(self, node: int) -> Optional[int]:
        scan = self._scan(node)
        return None if scan is None else scan[1]

    def _scan(self, node: int) -> Optional[Tuple[int, int]]:
        """(free slots, buffered flits) over ``node``'s live outputs, or
        ``None`` when every output is dead or the node has none."""
        engine = self._engine
        fault_state = engine.fault_state
        alloc = engine.channel_alloc
        depth = self._buffer_depth
        num_vc = self._num_vc
        free = used = 0
        live = False
        for direction, base in self._outputs.get(node, ()):
            if fault_state is not None and fault_state.channel_dead(node, direction):
                continue
            live = True
            for cid in range(base, base + num_vc):
                holder = alloc[cid]
                buffered = 0 if holder is None else _buffered(holder, cid)
                used += buffered
                free += depth - buffered
        return (free, used) if live else None


def _buffered(packet, cid: int) -> int:
    """Flits the holding worm currently buffers on runtime channel
    ``cid`` (a worm holds few channels, so the scan is short)."""
    for hold in packet.holds:
        if hold.channel_id == cid:
            return hold.buffered
    return 0
