"""Pluggable output-selection policies and their congestion signals
(docs/SELECTION.md).

The routing algorithm produces the *legal* candidate outputs; a
:class:`SelectionPolicy` picks one among the free legal candidates,
optionally consulting a :class:`CongestionView` of downstream buffer
state.  Selection only permutes the legal set, so the turn-model and
escape-channel deadlock guarantees are untouched by any policy here.
"""

from .congestion import CongestionView, EngineCongestionView
from .policies import (
    SELECTION_POLICIES,
    MaxFreeCredits,
    RoundRobin,
    SelectionPolicy,
    ThresholdReroute,
    XYPreference,
    make_selection_policy,
    selection_policy_names,
    static_preference,
)

__all__ = [
    "CongestionView",
    "EngineCongestionView",
    "MaxFreeCredits",
    "RoundRobin",
    "SELECTION_POLICIES",
    "SelectionPolicy",
    "ThresholdReroute",
    "XYPreference",
    "make_selection_policy",
    "selection_policy_names",
    "static_preference",
]
