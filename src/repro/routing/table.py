"""Routing-table precomputation: memoised candidate sets per network.

A routing decision in this codebase is a pure function of ``(current
node, destination, arrival direction[, arrival virtual channel])`` — the
turn-model algorithms are stateless by construction.  The cycle-driven
simulator nevertheless re-derived the candidate list from scratch every
time a header asked, dominating the arbitration hot path on large
fabrics.  :class:`RoutingTable` memoises the four candidate queries of a
:class:`~repro.routing.base.RoutingAlgorithm` into flat tuples, built
lazily on first use — exactly what a hardware router's routing table
does, computed once per (node, destination) instead of once per cycle.

Fault awareness composes on top: wrap the algorithm in
:class:`~repro.faults.routing.FaultAwareRouting` *first* and build the
table over the wrapper.  The table then caches the fault-masked answers,
and the owner must call :meth:`invalidate_node` for every node whose
answers a fault event may have changed (the source router of a failed or
healed channel; a failed or healed router and its in-neighbours).
:meth:`affected_nodes` computes that set.  Entries elsewhere stay warm —
a single link failure invalidates one node's rows, not the network's.

The memo returns the exact tuples the wrapped algorithm produced (order
preserved), so a table-backed simulation is bit-identical to a
table-free one.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..topology.base import Direction, Topology
from .base import RoutingAlgorithm

_MISS = object()  # sentinel: empty tuples are valid cached values


class RoutingTable:
    """Lazy per-network memo of an algorithm's candidate queries.

    One table serves one ``(algorithm, topology)`` pair — the simulator
    builds one per run.  All four query methods mirror the
    :class:`~repro.routing.base.RoutingAlgorithm` signatures but return
    tuples (safe to alias, never mutated).
    """

    __slots__ = ("algorithm", "_nodes", "_in_neighbors")

    def __init__(self, algorithm: RoutingAlgorithm) -> None:
        self.algorithm = algorithm
        # node -> key -> tuple; keys carry a kind tag so the four query
        # families share one per-node dict (one hash hop to invalidate).
        self._nodes: Dict[int, Dict[tuple, tuple]] = {}
        self._in_neighbors: Optional[Dict[int, Set[int]]] = None

    # -- queries (memoised) --------------------------------------------------

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> Tuple[Direction, ...]:
        per_node = self._nodes.get(current)
        if per_node is None:
            per_node = self._nodes[current] = {}
        key = ("c", dest, in_direction)
        out = per_node.get(key, _MISS)
        if out is _MISS:
            out = per_node[key] = tuple(
                self.algorithm.candidates(current, dest, in_direction)
            )
        return out  # type: ignore[return-value]

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> Tuple[Direction, ...]:
        per_node = self._nodes.get(current)
        if per_node is None:
            per_node = self._nodes[current] = {}
        key = ("e", dest, in_direction)
        out = per_node.get(key, _MISS)
        if out is _MISS:
            out = per_node[key] = tuple(
                self.algorithm.escape_candidates(current, dest, in_direction)
            )
        return out  # type: ignore[return-value]

    def vc_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> Tuple[Tuple[Direction, int], ...]:
        per_node = self._nodes.get(current)
        if per_node is None:
            per_node = self._nodes[current] = {}
        key = ("v", dest, in_direction, in_vc, num_vc)
        out = per_node.get(key, _MISS)
        if out is _MISS:
            out = per_node[key] = tuple(
                self.algorithm.vc_candidates(
                    current, dest, in_direction, in_vc, num_vc
                )
            )
        return out  # type: ignore[return-value]

    def vc_escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> Tuple[Tuple[Direction, int], ...]:
        per_node = self._nodes.get(current)
        if per_node is None:
            per_node = self._nodes[current] = {}
        key = ("w", dest, in_direction, in_vc, num_vc)
        out = per_node.get(key, _MISS)
        if out is _MISS:
            out = per_node[key] = tuple(
                self.algorithm.vc_escape_candidates(
                    current, dest, in_direction, in_vc, num_vc
                )
            )
        return out  # type: ignore[return-value]

    # -- invalidation (fault events) -----------------------------------------

    def invalidate_node(self, node: int) -> None:
        """Drop every cached entry keyed by ``node`` (its answers may
        have changed — a fault appeared or healed on touching hardware)."""
        self._nodes.pop(node, None)

    def clear(self) -> None:
        self._nodes.clear()

    def affected_nodes(
        self, topology: Topology, node: int, channel_only: bool
    ) -> Set[int]:
        """Nodes whose cached answers a fault event at ``node`` touches.

        A channel event at ``(node, direction)`` only changes answers
        computed *at* ``node`` (the fault mask tests the outgoing
        channel).  A router event additionally kills every channel
        *into* the router, changing the answers of its in-neighbours.
        """
        if channel_only:
            return {node}
        neighbors = self._in_neighbors
        if neighbors is None:
            neighbors = {}
            for channel in topology.channels():
                neighbors.setdefault(channel.dst, set()).add(channel.src)
            self._in_neighbors = neighbors
        return {node} | neighbors.get(node, set())

    # -- introspection -------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Cached candidate tuples currently held (for tests/diagnostics)."""
        return sum(len(per_node) for per_node in self._nodes.values())

    def __repr__(self) -> str:
        return (
            f"RoutingTable({self.algorithm!r}, {self.num_entries} entries "
            f"over {len(self._nodes)} nodes)"
        )
