"""Turn-model routing on k-ary n-cubes (Section 4.2).

Wraparound channels create cycles that involve no turns at all, so for
``k > 4`` no deadlock-free *minimal* algorithm exists without extra
channels; the paper's torus algorithms are strictly nonminimal.  Two
extensions are given:

* **first-hop wraparound** — any mesh algorithm, plus permission to take a
  wraparound channel on the packet's first hop only.  Wraparound channels
  are numbered above all mesh channels, so monotonicity is preserved.
* **classified negative-first** — each wraparound channel is classified by
  the edge it lands on (the channel from the east edge to the west edge
  counts as a second *west* channel) and negative-first is applied to the
  classified directions.

Both operate on *mesh offsets* (the plain coordinate difference) after any
wraparound hop, so routing always terminates.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.turn_model import TurnModel
from ..topology.base import Direction, NEGATIVE, POSITIVE, Topology
from ..topology.torus import KAryNCube
from .base import RoutingAlgorithm, sort_canonical
from .ndim import NegativeFirst


class MeshRestriction(Topology):
    """A torus viewed as a mesh: wraparound channels hidden, plain offsets.

    Mesh routing algorithms instantiated on this view route correctly on
    the underlying torus, because every direction they emit corresponds to
    a non-wraparound torus channel.
    """

    def __init__(self, torus: KAryNCube) -> None:
        super().__init__(torus.dims)
        self.torus = torus

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if self.torus.is_wraparound(node, direction):
            return None
        return self.torus.neighbor(node, direction)

    def is_wraparound(self, node: int, direction: Direction) -> bool:
        return False

    def offset(self, src: int, dst: int, dim: int) -> int:
        return self.coords(dst)[dim] - self.coords(src)[dim]


class FirstHopWraparound(RoutingAlgorithm):
    """A mesh algorithm extended with wraparound channels on the first hop.

    ``base_factory`` builds the underlying mesh algorithm (e.g.
    ``NegativeFirst``) on the mesh view of the torus.  At injection
    (``in_direction is None``) the packet may additionally take any
    wraparound channel that strictly reduces its remaining mesh distance.
    """

    def __init__(
        self,
        topology: KAryNCube,
        base_factory: Callable[[Topology], RoutingAlgorithm] = NegativeFirst,
    ) -> None:
        if not isinstance(topology, KAryNCube):
            raise ValueError("first-hop wraparound routing requires a k-ary n-cube")
        super().__init__(topology)
        self.mesh_view = MeshRestriction(topology)
        self.base = base_factory(self.mesh_view)

    @property
    def name(self) -> str:
        return f"{self.base.name}+wrap1"

    @property
    def is_minimal(self) -> bool:
        return False

    def _effective_in_direction(
        self, current: int, in_direction: Optional[Direction]
    ) -> Optional[Direction]:
        """Treat a wraparound arrival as a fresh injection.

        Wraparound channels are numbered below every mesh channel and are
        only ever a packet's first hop, so the base algorithm may start
        its turn discipline afresh at the landing node.  An arrival at
        coordinate 0 travelling positively (or at ``k - 1`` travelling
        negatively) can only have come across the wraparound.
        """
        if in_direction is None:
            return None
        coord = self.topology.coords(current)[in_direction.dim]
        k = self.topology.k
        wrapped = (in_direction.is_positive and coord == 0) or (
            in_direction.is_negative and coord == k - 1
        )
        return None if wrapped else in_direction

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        effective = self._effective_in_direction(current, in_direction)
        out = list(self.base.candidates(current, dest, effective))
        # Wraparound channels are offered at true injection only — a
        # wraparound arrival restarts the base discipline (``effective``)
        # but must not enable a second wraparound hop.
        if in_direction is None and current != dest:
            here = self.mesh_view.distance(current, dest)
            for direction in self.topology.directions():
                if not self.topology.is_wraparound(current, direction):
                    continue
                nbr = self.topology.neighbor(current, direction)
                if nbr is None:
                    continue
                if self.mesh_view.distance(nbr, dest) + 1 < here:
                    out.append(direction)
        return sort_canonical(out)

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        in_direction = self._effective_in_direction(current, in_direction)
        return self.base.escape_candidates(current, dest, in_direction)

    def turn_model(self) -> Optional[TurnModel]:
        return self.base.turn_model()


class ClassifiedNegativeFirst(RoutingAlgorithm):
    """Negative-first with wraparound channels classified by landing edge.

    A wraparound channel from coordinate ``k-1`` to coordinate ``0`` is a
    second *negative* channel (it lands on the negative edge) and is a
    phase-1 candidate whenever negative progress is needed in its
    dimension.  A wraparound from ``0`` to ``k-1`` is a second *positive*
    channel, usable in phase 2 — but only when the destination coordinate
    is exactly ``k-1``, since any overshoot would require a prohibited
    positive-to-negative turn to correct.
    """

    def __init__(self, topology: KAryNCube) -> None:
        if not isinstance(topology, KAryNCube):
            raise ValueError("classified negative-first requires a k-ary n-cube")
        super().__init__(topology)
        self.mesh_view = MeshRestriction(topology)

    @property
    def name(self) -> str:
        return "negative-first-torus"

    @property
    def is_minimal(self) -> bool:
        return False

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        if current == dest:
            return []
        cur = self.topology.coords(current)
        dst = self.topology.coords(dest)
        k = self.topology.k
        negatives: List[Direction] = []
        positives: List[Direction] = []
        for dim in range(self.topology.n_dims):
            delta = dst[dim] - cur[dim]
            if delta < 0:
                # Mesh channel west-ward is always available when needed.
                negatives.append(Direction(dim, NEGATIVE))
                # The classified-negative wraparound leaves the positive
                # edge; physically it is the +dim channel.
                if cur[dim] == k - 1 and k > 2:
                    negatives.append(Direction(dim, POSITIVE))
            elif delta > 0:
                if cur[dim] < k - 1:
                    positives.append(Direction(dim, POSITIVE))
                # The classified-positive wraparound (physically -dim) is
                # productive only when it lands exactly on the destination
                # coordinate.
                if cur[dim] == 0 and dst[dim] == k - 1 and k > 2:
                    positives.append(Direction(dim, NEGATIVE))
        chosen = negatives if negatives else positives
        return sort_canonical(chosen)

    def turn_model(self) -> TurnModel:
        return TurnModel.negative_first(self.topology.n_dims)
