"""p-cube routing for hypercubes (Section 5, Figures 11 and 12).

The hypercube special case of negative-first has a compact bitwise form.
With ``C`` the current address and ``D`` the destination:

* phase 1 routes along any dimension ``i`` with ``c_i = 1, d_i = 0``
  (clearing a 1 — the *negative* direction);
* once no such dimension remains, phase 2 routes along any dimension with
  ``c_i = 0, d_i = 1`` (setting a 0 — the *positive* direction).

The nonminimal variant (Figure 12's discussion) additionally lets phase 1
route along dimensions with ``c_i = 1, d_i = 1``: still a negative move,
at the cost of having to set the bit again later.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.turn_model import TurnModel
from ..topology.base import Direction, NEGATIVE, POSITIVE
from ..topology.hypercube import Hypercube
from .base import RoutingAlgorithm, sort_canonical


def _dims_of(mask: int, n: int) -> List[int]:
    return [i for i in range(n) if (mask >> i) & 1]


class PCube(RoutingAlgorithm):
    """Minimal p-cube routing (Figure 11)."""

    def __init__(self, topology: Hypercube) -> None:
        if not isinstance(topology, Hypercube) and set(topology.dims) != {2}:
            raise ValueError("p-cube routing requires a binary hypercube")
        super().__init__(topology)
        self._mask = (1 << topology.n_dims) - 1

    @property
    def name(self) -> str:
        return "p-cube"

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        if current == dest:
            return []
        r = current & ~dest & self._mask  # step 2: R = C AND NOT D
        if r:
            if in_direction is not None and in_direction.is_positive:
                # Unreachable under p-cube (phase-1 work is never pending
                # after a positive hop); report a dead end rather than a
                # prohibited positive-to-negative turn.
                return []
            return [Direction(i, NEGATIVE) for i in _dims_of(r, self.topology.n_dims)]
        r = ~current & dest & self._mask  # step 3: R = NOT C AND D
        return [Direction(i, POSITIVE) for i in _dims_of(r, self.topology.n_dims)]

    def turn_model(self) -> TurnModel:
        return TurnModel.negative_first(self.topology.n_dims)


class NonminimalPCube(PCube):
    """p-cube with the nonminimal phase-1 extension.

    ``escape_candidates`` returns the dimensions with ``c_i = 1, d_i = 1``
    while phase 1 is active: legal negative moves that leave the shortest
    path but increase adaptiveness and fault tolerance.
    """

    @property
    def name(self) -> str:
        return "p-cube-nonminimal"

    @property
    def is_minimal(self) -> bool:
        return False

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        if current == dest:
            return []
        if in_direction is not None and in_direction.is_positive:
            # A positive-to-negative turn is prohibited, so the nonminimal
            # extension is only reachable while still travelling phase 1.
            return []
        phase1 = current & ~dest & self._mask
        if not phase1:
            return []
        shared = current & dest & self._mask
        return sort_canonical(
            [Direction(i, NEGATIVE) for i in _dims_of(shared, self.topology.n_dims)]
        )
