"""Partially adaptive turn-model algorithms for n-dimensional meshes
(Section 4.1) and their 2D specialisations (Section 3).

All three share one *two-phase* shape: a packet first routes adaptively
among a distinguished set of directions (phase 1), and only once no
phase-1 direction is productive does it route adaptively among the rest.
The prohibition sets behind each phase split are built by
:class:`repro.core.turn_model.TurnModel`; the phase rule below is the
minimal-routing reading of "use only the allowed turns":

* **negative-first** — phase 1 is every negative direction;
* **all-but-one-negative-first (ABONF)** — phase 1 is the negative
  directions of dimensions ``0 .. n-2`` (*west-first* when n = 2);
* **all-but-one-positive-last (ABOPL)** — phase 1 is every negative
  direction plus the positive direction of dimension 0 (*north-last* when
  n = 2).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..core.turn_model import TurnModel
from ..topology.base import Direction, NEGATIVE, POSITIVE, Topology
from .base import RoutingAlgorithm, require_mesh_dims, sort_canonical


class TwoPhaseRouting(RoutingAlgorithm):
    """Minimal two-phase turn-model routing.

    ``candidates`` returns the productive phase-1 directions while any
    exist, then the remaining productive directions.  ``escape_candidates``
    offers the nonminimal moves the prohibition set allows (used only by
    nonminimal simulations; Section 6 routes minimally).
    """

    def __init__(
        self,
        topology: Topology,
        phase1: FrozenSet[Direction],
        name: str,
        model: TurnModel,
    ) -> None:
        super().__init__(topology)
        self._phase1 = frozenset(phase1)
        self._name = name
        self._model = model

    @property
    def name(self) -> str:
        return self._name

    @property
    def phase1_directions(self) -> FrozenSet[Direction]:
        return self._phase1

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        productive = self.topology.productive_directions(current, dest)
        first = [d for d in productive if d in self._phase1]
        chosen = first if first else productive
        if in_direction is not None:
            # A packet that followed this algorithm from injection never
            # arrives heading somewhere its next move cannot legally
            # follow; the filter makes the function honest on the
            # unreachable states too (it then reports a dead end instead
            # of proposing a prohibited turn).
            chosen = [
                d for d in chosen if self._model.is_allowed(in_direction, d)
            ]
        return sort_canonical(chosen)

    def _completable(self, node: int, dest: int, heading: Direction) -> bool:
        """Whether minimal routing can still finish from ``node`` when the
        packet arrives travelling ``heading``.

        All three paper models prohibit exactly the turns from a phase-2
        direction into phase 1 (plus reversals), so the reachable-state
        invariant is: while productive phase-1 work remains the heading
        must itself be a phase-1 direction, and the remaining work must
        not consist solely of the heading's reversal.
        """
        productive = self.topology.productive_directions(node, dest)
        if not productive:
            return True
        in_phase1 = [d for d in productive if d in self._phase1]
        if in_phase1:
            if heading not in self._phase1:
                return False
            if in_phase1 == [heading.opposite]:
                return False
            return True
        return productive != [heading.opposite]

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        productive = set(self.topology.productive_directions(current, dest))
        out: List[Direction] = []
        for direction in self.topology.directions():
            if direction in productive:
                continue
            if in_direction is not None and not self._model.is_allowed(
                in_direction, direction
            ):
                continue
            nbr = self.topology.neighbor(current, direction)
            if nbr is None:
                continue
            # Never escape into a state the turn model cannot route out
            # of — e.g. an eastward detour under west-first would create
            # westward work that only a prohibited turn could reach.
            if not self._completable(nbr, dest, direction):
                continue
            out.append(direction)
        return sort_canonical(out)

    def turn_model(self) -> TurnModel:
        return self._model


class NegativeFirst(TwoPhaseRouting):
    """Negative-first routing for n-dimensional meshes (and 2D meshes)."""

    def __init__(self, topology: Topology) -> None:
        n = topology.n_dims
        phase1 = frozenset(Direction(d, NEGATIVE) for d in range(n))
        super().__init__(
            topology, phase1, "negative-first", TurnModel.negative_first(n)
        )


class AllButOneNegativeFirst(TwoPhaseRouting):
    """ABONF: negative directions of all dimensions but the last go first.

    The 2D special case is the *west-first* algorithm (phase 1 = west).
    """

    def __init__(self, topology: Topology) -> None:
        n = topology.n_dims
        if n < 2:
            raise ValueError("ABONF needs at least two dimensions")
        phase1 = frozenset(Direction(d, NEGATIVE) for d in range(n - 1))
        name = "west-first" if n == 2 else "abonf"
        super().__init__(topology, phase1, name, TurnModel.west_first(n))


class AllButOnePositiveLast(TwoPhaseRouting):
    """ABOPL: every positive direction of dimensions ``1..n-1`` goes last.

    The 2D special case is the *north-last* algorithm (phase 2 = north).
    """

    def __init__(self, topology: Topology) -> None:
        n = topology.n_dims
        if n < 2:
            raise ValueError("ABOPL needs at least two dimensions")
        phase1 = frozenset(
            [Direction(d, NEGATIVE) for d in range(n)]
            + [Direction(0, POSITIVE)]
        )
        name = "north-last" if n == 2 else "abopl"
        super().__init__(topology, phase1, name, TurnModel.north_last(n))


class WestFirst(AllButOneNegativeFirst):
    """West-first routing for 2D meshes (Section 3.1)."""

    def _validate_topology(self) -> None:
        require_mesh_dims(self.topology, 2)


class NorthLast(AllButOnePositiveLast):
    """North-last routing for 2D meshes (Section 3.2)."""

    def _validate_topology(self) -> None:
        require_mesh_dims(self.topology, 2)
