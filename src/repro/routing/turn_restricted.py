"""Maximal minimal-adaptive routing under an arbitrary turn model.

Given any prohibition set, the *maximally adaptive* minimal routing
function offers every productive direction from which the rest of the
journey can still be completed without a prohibited turn.  Completability
is decided by a memoised search over ``(node, heading)`` states following
productive moves only — a DAG, since distance strictly decreases.

Two uses:

* with the paper's prohibition sets it reproduces the phase-structured
  algorithms exactly (a property the test suite checks), supporting the
  paper's claim that they are maximally adaptive;
* with a *bad* prohibition set (Figure 4) or an empty one (Figure 1) it
  yields a well-defined routing function that the simulator can drive
  into real deadlock, demonstrating why the turn model matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.turn_model import TurnModel
from ..topology.base import Direction, Topology
from .base import RoutingAlgorithm, sort_canonical


class TurnRestrictedMinimal(RoutingAlgorithm):
    """Minimal adaptive routing confined to a turn model's allowed turns.

    Deadlock freedom depends entirely on the supplied model: safe
    prohibition sets give deadlock-free routing, unsafe ones (like the
    Figure 4 pair) do not — which is the point.
    """

    def __init__(self, topology: Topology, model: TurnModel) -> None:
        super().__init__(topology)
        if model.n_dims != topology.n_dims:
            raise ValueError(
                f"model covers {model.n_dims} dims, topology has "
                f"{topology.n_dims}"
            )
        self.model = model
        # (node, heading, dest) -> completable; heading None = injection.
        self._memo: Dict[Tuple[int, Optional[Direction], int], bool] = {}

    @property
    def name(self) -> str:
        return f"turn-restricted({self.model.name})"

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        out = []
        for direction in self.topology.productive_directions(current, dest):
            if in_direction is not None and not self.model.is_allowed(
                in_direction, direction
            ):
                continue
            nbr = self.topology.neighbor(current, direction)
            if nbr is None:
                continue
            if self._completable(nbr, direction, dest):
                out.append(direction)
        return sort_canonical(out)

    def _completable(
        self, node: int, heading: Optional[Direction], dest: int
    ) -> bool:
        """Whether some minimal turn-legal path exists from this state."""
        if node == dest:
            return True
        key = (node, heading, dest)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = False
        for direction in self.topology.productive_directions(node, dest):
            if heading is not None and not self.model.is_allowed(
                heading, direction
            ):
                continue
            nbr = self.topology.neighbor(node, direction)
            if nbr is None:
                continue
            if self._completable(nbr, direction, dest):
                result = True
                break
        self._memo[key] = result
        return result

    def turn_model(self) -> TurnModel:
        return self.model
