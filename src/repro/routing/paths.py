"""Path utilities: walk, enumerate, and validate routes produced by a
routing algorithm.

Used by the adaptiveness cross-checks, the numbering property tests, and
the examples; the simulator does its own walking flit by flit.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..topology.base import Channel, Direction, Topology
from .base import RoutingAlgorithm


class RoutingDeadEnd(RuntimeError):
    """Raised when an algorithm offers no candidate before the destination."""


def walk(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    choose: Optional[Callable[[Sequence[Direction]], Direction]] = None,
    rng: Optional[random.Random] = None,
    max_hops: Optional[int] = None,
    initial_direction: Optional[Direction] = None,
) -> List[int]:
    """Follow the algorithm from ``src`` to ``dst``, returning the node path.

    ``choose`` picks among candidates (default: uniformly at random with
    ``rng``, or the first candidate when neither is given).
    ``initial_direction`` is the heading the packet arrives at ``src``
    with (None = injection).  Raises :class:`RoutingDeadEnd` if the
    algorithm strands the packet, and ``RuntimeError`` if ``max_hops`` is
    exceeded (livelock guard).
    """
    topology = algorithm.topology
    if max_hops is None:
        max_hops = 4 * sum(topology.dims) + 16
    if choose is None:
        if rng is not None:
            choose = rng.choice
        else:
            choose = lambda options: options[0]  # noqa: E731
    path = [src]
    current = src
    in_direction: Optional[Direction] = initial_direction
    hops = 0
    while current != dst:
        options = algorithm.candidates(current, dst, in_direction)
        if not options:
            raise RoutingDeadEnd(
                f"{algorithm.name} stranded a packet at node {current} "
                f"(dest {dst}, path so far {path})"
            )
        direction = choose(options)
        nxt = topology.neighbor(current, direction)
        if nxt is None:
            raise RoutingDeadEnd(
                f"{algorithm.name} pointed off the network: node {current} "
                f"has no neighbour in {direction!r}"
            )
        path.append(nxt)
        in_direction = direction
        current = nxt
        hops += 1
        if hops > max_hops:
            raise RuntimeError(
                f"{algorithm.name} exceeded {max_hops} hops from {src} to "
                f"{dst}; path so far {path}"
            )
    return path


def path_channels(topology: Topology, node_path: Sequence[int]) -> List[Channel]:
    """Convert a node path into the channel sequence it traverses."""
    channels: List[Channel] = []
    for here, there in zip(node_path, node_path[1:]):
        found = None
        for direction in topology.directions():
            if topology.neighbor(here, direction) == there:
                found = topology.channel(here, direction)
                break
        if found is None:
            raise ValueError(f"{here} and {there} are not neighbours")
        channels.append(found)
    return channels


def enumerate_minimal_paths(
    algorithm: RoutingAlgorithm,
    src: int,
    dst: int,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield every shortest node path the algorithm permits (DFS order).

    Only distance-reducing candidate moves are followed.  ``limit`` caps
    the number of paths yielded.
    """
    topology = algorithm.topology
    yielded = 0
    stack: List[Tuple[int, Tuple[int, ...]]] = [(src, (src,))]
    while stack:
        node, path = stack.pop()
        if node == dst:
            yield path
            yielded += 1
            if limit is not None and yielded >= limit:
                return
            continue
        here = topology.distance(node, dst)
        for direction in reversed(algorithm.candidates(node, dst)):
            nbr = topology.neighbor(node, direction)
            if nbr is None:
                continue
            if topology.distance(nbr, dst) == here - 1:
                stack.append((nbr, path + (nbr,)))


def directions_of_path(topology: Topology, node_path: Sequence[int]) -> List[Direction]:
    """The travel direction of each hop of a node path."""
    return [c.direction for c in path_channels(topology, node_path)]


def path_respects_turn_model(
    topology: Topology, node_path: Sequence[int], model
) -> bool:
    """Whether every consecutive direction change on the path is allowed."""
    dirs = directions_of_path(topology, node_path)
    return all(
        model.is_allowed(frm, to) for frm, to in zip(dirs, dirs[1:])
    )
