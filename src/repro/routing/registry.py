"""Name-based construction of routing algorithms.

The benchmark harness and examples refer to algorithms by the short names
the paper uses (``xy``, ``e-cube``, ``west-first``, ``north-last``,
``negative-first``, ``abonf``, ``abopl``, ``p-cube``); this registry maps
those names to constructors for a given topology.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.torus import KAryNCube
from .base import RoutingAlgorithm
from .dimension_order import DimensionOrder, ECube, XY
from .ndim import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    NegativeFirst,
    NorthLast,
    WestFirst,
)
from .pcube import NonminimalPCube, PCube
from .torus import ClassifiedNegativeFirst, FirstHopWraparound
from .virtual import DatelineDimensionOrder, EscapeVCAdaptive

Factory = Callable[[Topology], RoutingAlgorithm]

_FACTORIES: Dict[str, Factory] = {
    "xy": XY,
    "e-cube": ECube,
    "ecube": ECube,
    "dimension-order": DimensionOrder,
    "west-first": WestFirst,
    "north-last": NorthLast,
    "negative-first": NegativeFirst,
    "nf": NegativeFirst,
    "abonf": AllButOneNegativeFirst,
    "abopl": AllButOnePositiveLast,
    "p-cube": PCube,
    "pcube": PCube,
    "p-cube-nonminimal": NonminimalPCube,
    "negative-first-torus": ClassifiedNegativeFirst,
    "negative-first+wrap1": FirstHopWraparound,
    # The virtual-channel extension algorithms (need virtual_channels>=2
    # in the simulation config).
    "dateline-dimension-order": DatelineDimensionOrder,
    "dateline": DatelineDimensionOrder,
    "escape-vc-adaptive": EscapeVCAdaptive,
}


def algorithm_names() -> List[str]:
    """Canonical registry names (aliases collapsed)."""
    seen = {}
    for name, factory in _FACTORIES.items():
        seen.setdefault(factory, name)
    return sorted(seen.values())


def make_algorithm(name: str, topology: Topology) -> RoutingAlgorithm:
    """Build the named algorithm on ``topology``.

    Raises ``KeyError`` for unknown names and ``ValueError`` when the
    algorithm does not support the topology.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown routing algorithm {name!r}; known: {algorithm_names()}"
        )
    return _FACTORIES[key](topology)


def mesh_algorithms(topology: Topology) -> List[RoutingAlgorithm]:
    """The four algorithms the paper compares on the 16x16 mesh."""
    return [
        XY(topology),
        WestFirst(topology),
        NorthLast(topology),
        NegativeFirst(topology),
    ]


def hypercube_algorithms(topology: Hypercube) -> List[RoutingAlgorithm]:
    """The four algorithms the paper compares on the binary 8-cube.

    ABONF, ABOPL, and negative-first operate on the hypercube through the
    general n-dimensional mesh formulation (negative-first's hypercube
    special case is p-cube).
    """
    return [
        ECube(topology),
        AllButOneNegativeFirst(topology),
        AllButOnePositiveLast(topology),
        PCube(topology),
    ]


def torus_algorithms(topology: KAryNCube) -> List[RoutingAlgorithm]:
    """The Section 4.2 extensions plus a deterministic baseline."""
    return [
        FirstHopWraparound(topology),
        ClassifiedNegativeFirst(topology),
    ]
