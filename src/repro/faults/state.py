"""Live fault state: which channels and routers are dead *right now*.

The simulator owns one :class:`FaultState` per run and mutates it as the
:class:`~repro.faults.plan.FaultPlan` schedule fires; the
:class:`~repro.faults.routing.FaultAwareRouting` wrapper reads it on
every routing decision.  A channel is dead when it failed directly, when
its source router failed, or when it leads into a failed router — a dead
router takes all incident channels down with it, and healing the router
brings them back automatically (unless independently failed).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..topology.base import Direction, Topology

ChannelKey = Tuple[int, Direction]


class FaultState:
    """Mutable view of the currently-failed hardware."""

    __slots__ = ("_dst", "dead_channels", "dead_routers")

    def __init__(self, topology: Topology) -> None:
        self._dst: Dict[ChannelKey, int] = {
            (c.src, c.direction): c.dst for c in topology.channels()
        }
        self.dead_channels: Set[ChannelKey] = set()
        self.dead_routers: Set[int] = set()

    # -- mutation (driven by the engine's fault schedule) --------------------

    def fail_channel(self, src: int, direction: Direction) -> None:
        self.dead_channels.add((src, direction))

    def heal_channel(self, src: int, direction: Direction) -> None:
        self.dead_channels.discard((src, direction))

    def fail_router(self, node: int) -> None:
        self.dead_routers.add(node)

    def heal_router(self, node: int) -> None:
        self.dead_routers.discard(node)

    # -- queries -------------------------------------------------------------

    @property
    def any_faults(self) -> bool:
        return bool(self.dead_channels or self.dead_routers)

    def router_dead(self, node: int) -> bool:
        return node in self.dead_routers

    def channel_dead(self, src: int, direction: Direction) -> bool:
        """Whether the channel out of ``src`` in ``direction`` is unusable
        (failed itself, or touching a failed router)."""
        if (src, direction) in self.dead_channels:
            return True
        if src in self.dead_routers:
            return True
        dst = self._dst.get((src, direction))
        return dst is None or dst in self.dead_routers

    def __repr__(self) -> str:
        return (
            f"FaultState({len(self.dead_channels)} dead channels, "
            f"{len(self.dead_routers)} dead routers)"
        )
