"""Runtime fault injection for the wormhole simulator.

* :mod:`repro.faults.plan` — deterministic, seed-derived fault schedules
  (:class:`FaultPlan`, :class:`FaultEvent`) that serialize into
  :class:`~repro.simulation.config.SimulationConfig`;
* :mod:`repro.faults.state` — the live dead-channel/dead-router view a
  running simulation maintains;
* :mod:`repro.faults.routing` — :class:`FaultAwareRouting`, masking dead
  candidates out of any routing algorithm.

See ``docs/FAULTS.md`` for the fault model and the graceful-degradation
semantics (per-packet watchdog, source retry with bounded backoff).
"""

from .plan import (
    CHANNEL_FAULT,
    PERMANENT,
    ROUTER_FAULT,
    FaultEvent,
    FaultPlan,
)
from .routing import FaultAwareRouting
from .state import FaultState

__all__ = [
    "CHANNEL_FAULT",
    "FaultAwareRouting",
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "PERMANENT",
    "ROUTER_FAULT",
]
