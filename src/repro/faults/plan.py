"""Deterministic fault plans: *what* fails, *when*, and for how long.

The paper motivates adaptiveness by fault tolerance — adaptive algorithms
give packets "alternative paths ... around congested or faulty hardware".
:mod:`repro.verification.faults` checks that claim statically (BFS
reachability under a fixed fault set); this module is the dynamic
counterpart's input: a :class:`FaultPlan` is a schedule of channel and
router failures that the wormhole simulator applies *while packets are in
flight*.

Plans are plain frozen data:

* every event is a :class:`FaultEvent` — a channel or router, the cycle
  the fault appears, and the cycle it heals (``end == PERMANENT`` never
  heals), so transient faults are first-class;
* plans serialize to canonical JSON-friendly dicts and ride inside
  :class:`~repro.simulation.config.SimulationConfig`, which means the
  experiment runner's cache keys cover the full fault schedule;
* the random constructors (:meth:`FaultPlan.random_links`,
  :meth:`FaultPlan.random_routers`) derive everything from an explicit
  seed, so a fault campaign is reproducible point by point.

The empty plan is the common case and is guaranteed to leave the
simulator's behaviour bit-identical to a fault-free build (the engine
skips every fault hook when the plan is empty).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..topology.base import Channel, Direction, Topology

CHANNEL_FAULT = "channel"
ROUTER_FAULT = "router"

PERMANENT = -1
"""Sentinel ``end`` value: the fault never heals."""

FAIL = "fail"
HEAL = "heal"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled failure of a channel or a router.

    Channel events name the channel by ``(node, dim, sign)`` — the source
    router plus the direction — because that pair is the simulator's (and
    the topology's) channel identity.  Router events use ``node`` alone.
    """

    kind: str
    """``"channel"`` or ``"router"``."""

    start: int
    """Cycle the fault appears (inclusive)."""

    end: int = PERMANENT
    """Cycle the fault heals (exclusive), or ``PERMANENT``."""

    node: int = 0
    """The failed router, or the failed channel's source router."""

    dim: int = 0
    """Channel direction dimension (channel events only)."""

    sign: int = 1
    """Channel direction sign (channel events only)."""

    def __post_init__(self) -> None:
        if self.kind not in (CHANNEL_FAULT, ROUTER_FAULT):
            raise ValueError(
                f"kind must be {CHANNEL_FAULT!r} or {ROUTER_FAULT!r}, "
                f"got {self.kind!r}"
            )
        if self.start < 0:
            raise ValueError(f"start cycle must be non-negative, got {self.start}")
        if self.end != PERMANENT and self.end <= self.start:
            raise ValueError(
                f"a transient fault must heal after it appears "
                f"(start={self.start}, end={self.end})"
            )
        if self.node < 0:
            raise ValueError(f"node must be non-negative, got {self.node}")
        if self.kind == CHANNEL_FAULT:
            # Direction() re-validates dim/sign.
            Direction(self.dim, self.sign)

    @property
    def permanent(self) -> bool:
        return self.end == PERMANENT

    @property
    def direction(self) -> Direction:
        if self.kind != CHANNEL_FAULT:
            raise ValueError("router events have no direction")
        return Direction(self.dim, self.sign)

    def active_at(self, cycle: int) -> bool:
        """Whether the fault is present during ``cycle``."""
        return self.start <= cycle and (self.permanent or cycle < self.end)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "dim": self.dim,
            "sign": self.sign,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(**{k: data[k] for k in ("kind", "start", "end", "node", "dim", "sign")})  # type: ignore[arg-type]

    @classmethod
    def channel(
        cls, channel: Channel, start: int = 0, end: int = PERMANENT
    ) -> "FaultEvent":
        """Event failing ``channel`` (a topology :class:`Channel`)."""
        return cls(
            kind=CHANNEL_FAULT,
            start=start,
            end=end,
            node=channel.src,
            dim=channel.direction.dim,
            sign=channel.direction.sign,
        )

    @classmethod
    def router(cls, node: int, start: int = 0, end: int = PERMANENT) -> "FaultEvent":
        """Event failing the router ``node`` (and every incident channel)."""
        return cls(kind=ROUTER_FAULT, start=start, end=end, node=node)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, canonically-ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events))
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
        object.__setattr__(self, "events", events)

    # -- inspection ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def channel_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == CHANNEL_FAULT]

    def router_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == ROUTER_FAULT]

    def faulty_channels(
        self, topology: Topology, at: Optional[int] = None
    ) -> Set[Channel]:
        """The set of topology channels this plan ever fails (or fails at
        cycle ``at``), with router events expanded to every channel
        incident on the router.  This is the bridge to the *static*
        analysis in :mod:`repro.verification.faults`."""
        out: Set[Channel] = set()
        dead_routers = set()
        for event in self.events:
            if at is not None and not event.active_at(at):
                continue
            if event.kind == ROUTER_FAULT:
                dead_routers.add(event.node)
            else:
                channel = topology.channel(event.node, event.direction)
                if channel is not None:
                    out.add(channel)
        if dead_routers:
            for channel in topology.channels():
                if channel.src in dead_routers or channel.dst in dead_routers:
                    out.add(channel)
        return out

    def schedule(self) -> Dict[int, List[Tuple[str, FaultEvent]]]:
        """Engine-consumable schedule: cycle -> ordered ``(action, event)``
        changes, where action is ``"fail"`` or ``"heal"``.  Heals apply at
        the event's (exclusive) ``end`` cycle."""
        out: Dict[int, List[Tuple[str, FaultEvent]]] = {}
        for event in self.events:
            out.setdefault(event.start, []).append((FAIL, event))
            if not event.permanent:
                out.setdefault(event.end, []).append((HEAL, event))
        return out

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        events = tuple(
            FaultEvent.from_dict(entry)  # type: ignore[arg-type]
            for entry in data.get("events", ())
        )
        return cls(events=events)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def of_channels(
        cls,
        channels: Iterable[Channel],
        start: int = 0,
        end: int = PERMANENT,
    ) -> "FaultPlan":
        """Plan failing the given channels over one window."""
        return cls(
            events=tuple(FaultEvent.channel(c, start, end) for c in channels)
        )

    @classmethod
    def random_links(
        cls,
        topology: Topology,
        count: int,
        seed: int,
        start: int = 0,
        end: int = PERMANENT,
    ) -> "FaultPlan":
        """``count`` distinct unidirectional channels failed over one
        window, sampled by a private generator seeded with ``seed``."""
        channels = list(topology.channels())
        if count > len(channels):
            raise ValueError(
                f"cannot fail {count} of {len(channels)} channels"
            )
        rng = random.Random(seed)
        return cls.of_channels(rng.sample(channels, count), start, end)

    @classmethod
    def random_routers(
        cls,
        topology: Topology,
        count: int,
        seed: int,
        start: int = 0,
        end: int = PERMANENT,
    ) -> "FaultPlan":
        """``count`` distinct routers failed over one window."""
        if count > topology.num_nodes:
            raise ValueError(
                f"cannot fail {count} of {topology.num_nodes} routers"
            )
        rng = random.Random(seed)
        nodes = rng.sample(range(topology.num_nodes), count)
        return cls(
            events=tuple(FaultEvent.router(node, start, end) for node in nodes)
        )
