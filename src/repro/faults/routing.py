"""Fault masking for any routing algorithm.

:class:`FaultAwareRouting` wraps a :class:`~repro.routing.base.
RoutingAlgorithm` and filters every candidate list against a live
:class:`~repro.faults.state.FaultState`: dead channels simply stop being
offered.  An adaptive algorithm then routes around the fault with its
remaining candidates; a deterministic algorithm (xy) whose only candidate
died is left with an empty list and stalls — which is exactly the
behavioural difference the paper's fault-tolerance motivation predicts,
and what the per-packet watchdog turns into a clean drop instead of a
hang.

The wrapper is transparent: same ``name``, same turn model, same
adaptivity flags.  With a fault-free state it returns the inner
algorithm's candidates unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.turn_model import TurnModel
from ..routing.base import RoutingAlgorithm
from ..topology.base import Direction
from .state import FaultState


class FaultAwareRouting(RoutingAlgorithm):
    """Masks dead candidates out of an inner algorithm's answers."""

    def __init__(self, inner: RoutingAlgorithm, state: FaultState) -> None:
        self.inner = inner
        self.state = state
        super().__init__(inner.topology)

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def is_minimal(self) -> bool:
        return self.inner.is_minimal

    @property
    def is_adaptive(self) -> bool:
        return self.inner.is_adaptive

    def candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        return [
            direction
            for direction in self.inner.candidates(current, dest, in_direction)
            if not self.state.channel_dead(current, direction)
        ]

    def escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction] = None,
    ) -> List[Direction]:
        return [
            direction
            for direction in self.inner.escape_candidates(
                current, dest, in_direction
            )
            if not self.state.channel_dead(current, direction)
        ]

    def vc_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        return [
            (direction, vc)
            for direction, vc in self.inner.vc_candidates(
                current, dest, in_direction, in_vc, num_vc
            )
            if not self.state.channel_dead(current, direction)
        ]

    def vc_escape_candidates(
        self,
        current: int,
        dest: int,
        in_direction: Optional[Direction],
        in_vc: Optional[int],
        num_vc: int,
    ) -> List[Tuple[Direction, int]]:
        return [
            (direction, vc)
            for direction, vc in self.inner.vc_escape_candidates(
                current, dest, in_direction, in_vc, num_vc
            )
            if not self.state.channel_dead(current, direction)
        ]

    def turn_model(self) -> Optional[TurnModel]:
        return self.inner.turn_model()

    def __repr__(self) -> str:
        return f"FaultAwareRouting({self.inner!r}, {self.state!r})"
