"""Lightweight wall-clock profiling of the engine's hot phases.

Python-level simulation cost is dominated by a handful of inner loops;
:class:`PhaseProfiler` times them with ``time.perf_counter`` pairs and
near-zero bookkeeping so a profiled run stays representative:

* ``generate`` — message generation (interarrival draws, queueing);
* ``inject`` — source-queue heads claiming injection channels;
* ``route`` — the routing decision: candidate-channel computation,
  including escape candidates (nested inside ``allocate``);
* ``allocate`` — switch allocation: arbitration of contending headers
  and channel grants (*includes* ``route``; the report subtracts);
* ``advance`` — flit movement: every worm shifting one buffer forward;
* ``faults``/``retries``/``watchdog`` — fault-plan application, retry
  requeueing, and per-packet timeout scans, when those subsystems are
  active;
* ``collect`` — the streaming collectors' end-of-cycle pass (array
  backend only; the event engine's collector hooks are inlined into the
  stages above).

The array backend (``backend="array"``) reports the same phases per
batched kernel pass, with ``route`` folded into ``allocate`` (the LUT
gathers happen inside the arbitration kernel).  Profiling only observes
the clock around each pass, so profiled runs stay bit-identical on both
backends.

The profiler is engine-agnostic: ``add(phase, seconds)`` accumulates,
``report()`` renders.  It attaches only when the caller passes one to
:class:`~repro.simulation.engine.WormholeSimulator` (the CLI's
``--profile`` flag); an unprofiled run never touches the clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional

ENGINE_PHASES = (
    "faults",
    "retries",
    "generate",
    "inject",
    "route",
    "allocate",
    "advance",
    "watchdog",
    "collect",
)
"""Phase names the wormhole engine reports, in pipeline order."""


class PhaseProfiler:
    """Accumulates (calls, seconds) per named phase."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Fold one timed interval into ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @property
    def total_seconds(self) -> float:
        """Sum of all *top-level* phase times.

        ``route`` is nested inside ``allocate`` (the routing decision
        happens during arbitration), so it is excluded from the total to
        avoid double counting.
        """
        return sum(
            seconds for phase, seconds in self.seconds.items() if phase != "route"
        )

    def exclusive_seconds(self, phase: str) -> float:
        """Time in ``phase`` minus its nested sub-phase (``allocate``
        excludes ``route``)."""
        seconds = self.seconds.get(phase, 0.0)
        if phase == "allocate":
            seconds -= self.seconds.get("route", 0.0)
        return max(seconds, 0.0)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"seconds": ..., "calls": ...}`` (JSON-ready)."""
        return {
            phase: {
                "seconds": self.seconds[phase],
                "calls": self.calls.get(phase, 0),
            }
            for phase in sorted(self.seconds)
        }

    def report(self, order: Optional[List[str]] = None) -> str:
        """A fixed-width text table, hottest phases first by default."""
        phases = order or sorted(
            self.seconds, key=lambda p: self.exclusive_seconds(p), reverse=True
        )
        total = self.total_seconds
        lines = ["phase       seconds    share      calls    us/call"]
        for phase in phases:
            if phase not in self.seconds:
                continue
            exclusive = self.exclusive_seconds(phase)
            calls = self.calls.get(phase, 0)
            share = exclusive / total if total > 0 else 0.0
            per_call = 1e6 * exclusive / calls if calls else 0.0
            nested = "  (within allocate)" if phase == "route" else ""
            lines.append(
                f"{phase:10s} {exclusive:8.3f}   {share:6.1%} "
                f"{calls:10d} {per_call:10.2f}{nested}"
            )
        lines.append(f"{'total':10s} {total:8.3f}")
        return "\n".join(lines)
