"""Streaming metrics collectors folded into the simulation result.

Three collectors, each individually enabled by a
:class:`~repro.simulation.config.SimulationConfig` knob and each
streaming — they accumulate as the simulation runs, never buffering the
raw event firehose:

* **per-channel utilization time series**
  (``config.channel_series_period > 0``): flits crossed per channel per
  fixed-width bucket of the measurement window, so saturation studies
  can see *where and when* load concentrates, not just end-of-run
  totals;
* **per-router blocked-cycle counters**
  (``config.collect_router_blocked``): cycles each router spent hosting
  a header that was waiting for an output grant or the ejection port —
  the paper's "blocked messages" made measurable per router;
* **exact latency histogram** (``config.collect_latency_histogram``):
  creation-to-delivery latency in cycles, exact counts per value, so
  percentiles are exact (nearest-rank), not estimates.

The engine drives one :class:`MetricsCollectors` bundle through three
hooks (:meth:`MetricsCollectors.on_cycle_end`,
:meth:`MetricsCollectors.on_delivery`, :meth:`MetricsCollectors.finish`)
plus direct increments of :attr:`MetricsCollectors.channel_counts` on
the flit-advance hot path.  With every knob off the engine holds ``None``
instead of a bundle and skips all of it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


class MetricsCollectors:
    """The engine-side bundle of enabled collectors for one run."""

    __slots__ = (
        "period",
        "channel_counts",
        "channel_series",
        "router_blocked",
        "latency_histogram",
        "_cycles_in_bucket",
    )

    def __init__(
        self,
        num_channels: int,
        num_nodes: int,
        channel_series_period: int = 0,
        collect_router_blocked: bool = False,
        collect_latency_histogram: bool = False,
    ) -> None:
        self.period = channel_series_period
        self.channel_counts: Optional[List[int]] = (
            [0] * num_channels if channel_series_period > 0 else None
        )
        self.channel_series: List[List[int]] = []
        self.router_blocked: Optional[List[int]] = (
            [0] * num_nodes if collect_router_blocked else None
        )
        self.latency_histogram: Optional[Dict[int, int]] = (
            {} if collect_latency_histogram else None
        )
        self._cycles_in_bucket = 0

    @property
    def any_enabled(self) -> bool:
        return (
            self.channel_counts is not None
            or self.router_blocked is not None
            or self.latency_histogram is not None
        )

    def on_cycle_end(self, waiting) -> None:
        """Account one *measured* cycle (engine calls this only inside
        the measurement window, after arbitration and movement).

        ``waiting`` is the engine's live ordered mapping of headers that
        still need a grant: every one of them spent this cycle blocked
        at its ``head_node``.
        """
        blocked = self.router_blocked
        if blocked is not None:
            for packet in waiting:
                blocked[packet.head_node] += 1
        counts = self.channel_counts
        if counts is not None:
            self._cycles_in_bucket += 1
            if self._cycles_in_bucket >= self.period:
                self.channel_series.append(counts.copy())
                for i in range(len(counts)):
                    counts[i] = 0
                self._cycles_in_bucket = 0

    def on_delivery(self, latency_cycles: int) -> None:
        """Account one measured delivery (exact histogram)."""
        hist = self.latency_histogram
        if hist is not None:
            hist[latency_cycles] = hist.get(latency_cycles, 0) + 1

    def finish(self, result) -> None:
        """Fold everything collected into a
        :class:`~repro.simulation.metrics.SimulationResult`."""
        counts = self.channel_counts
        if counts is not None:
            if self._cycles_in_bucket > 0:
                self.channel_series.append(counts.copy())
                self._cycles_in_bucket = 0
            result.channel_util_series = self.channel_series
            result.channel_series_period = self.period
        if self.router_blocked is not None:
            result.router_blocked_cycles = self.router_blocked
        if self.latency_histogram is not None:
            result.latency_histogram = self.latency_histogram


# ---------------------------------------------------------------------------
# Exact percentiles over integer histograms
# ---------------------------------------------------------------------------


def exact_percentile(histogram: Dict[int, int], percentile: float) -> Optional[int]:
    """The nearest-rank percentile of an integer-valued histogram.

    Exact by construction: the histogram holds every observation, so the
    value returned is an actual observed latency, and
    ``exact_percentile(h, 100)`` is the true maximum.  Returns ``None``
    for an empty histogram.
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    total = sum(histogram.values())
    if total == 0:
        return None
    rank = math.ceil(percentile / 100.0 * total)
    seen = 0
    for value in sorted(histogram):
        seen += histogram[value]
        if seen >= rank:
            return value
    raise AssertionError("unreachable: rank exceeds histogram mass")


def latency_percentiles(
    histogram: Dict[int, int],
    percentiles: Sequence[float] = (50, 90, 99, 100),
) -> Dict[str, Optional[int]]:
    """Named exact percentiles (``{"p50": ..., "p99": ...}``)."""
    out: Dict[str, Optional[int]] = {}
    for p in percentiles:
        label = f"p{p:g}"
        out[label] = exact_percentile(histogram, p)
    return out
