"""Flit-level observability: trace events, metrics collectors, profiling.

The paper's evaluation (Sections 5-6) explains *why* the partially
adaptive algorithms diverge from xy — blocked headers, uneven channel
utilization, adaptivity actually exercised — and this package turns the
simulator into an instrument that can show those mechanisms instead of
only end-of-run aggregates:

* :mod:`repro.observability.events` — typed, schema-versioned
  packet-lifecycle trace events with JSONL encoding;
* :mod:`repro.observability.sinks` — the :class:`TraceSink` protocol the
  engine emits into, with in-memory, JSONL, and filtering sinks;
* :mod:`repro.observability.collectors` — streaming metrics folded into
  :class:`~repro.simulation.metrics.SimulationResult`: per-channel
  utilization time series, per-router blocked-cycle counters, exact
  latency histograms/percentiles;
* :mod:`repro.observability.profiler` — wall-clock timing of the
  engine's hot phases (routing decision, switch allocation, flit
  advance) behind the ``--profile`` flag;
* :mod:`repro.observability.summary` — trace-file analysis for the
  ``repro trace`` CLI subcommand.

Everything is strictly opt-in: with no sink attached and the collector
knobs at their defaults, the engine's behaviour and its measured results
are bit-identical to a build without this package (the golden-fingerprint
regression tests pin that down).  See docs/OBSERVABILITY.md.
"""

from .events import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    TraceEvent,
    parse_jsonl,
    parse_jsonl_line,
)
from .sinks import (
    FilteringSink,
    JsonlTraceSink,
    ListSink,
    TraceSink,
    trace_header,
)
from .collectors import (
    exact_percentile,
    latency_percentiles,
)
from .profiler import PhaseProfiler
from .summary import TraceSummary, read_trace, summarize_trace

__all__ = [
    "EVENT_KINDS",
    "FilteringSink",
    "JsonlTraceSink",
    "ListSink",
    "PhaseProfiler",
    "TRACE_SCHEMA",
    "TraceEvent",
    "TraceSink",
    "TraceSummary",
    "exact_percentile",
    "latency_percentiles",
    "parse_jsonl",
    "parse_jsonl_line",
    "read_trace",
    "summarize_trace",
    "trace_header",
]
