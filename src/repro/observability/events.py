"""Typed, schema-versioned packet-lifecycle trace events.

One :class:`TraceEvent` records one thing the engine did on one cycle.
The vocabulary is fixed (:data:`EVENT_KINDS`) so downstream tooling can
rely on it:

``injected``
    A header left its source processor's queue and entered the network
    (claimed the injection channel).  ``node`` is the source.
``channel_allocated``
    Arbitration granted an output channel to a waiting header.  ``node``
    is the router that granted it, ``channel`` the runtime channel id,
    ``direction`` the channel's direction.
``header_advance``
    The header flit arrived at the next router.  ``node`` is the router
    it arrived at.
``blocked``
    A header requested outputs and found none free (or found the
    ejection port busy).  Emitted once per stall episode — the packet
    must receive a grant before it can emit ``blocked`` again — so the
    event count is "how often worms stalled", not "cycles spent
    stalled" (the per-router blocked-cycle *counters* measure the
    latter).
``delivered``
    The tail flit drained into the destination processor.  ``node`` is
    the destination.
``dropped``
    The packet was abandoned, ``cause`` says why (``link-failure``,
    ``router-failure``, ``timeout-stall``, ``timeout-deadlock``,
    ``dead-destination``); a retry re-enters as a fresh ``injected``
    event with a new packet id.
``killed``
    An in-flight worm was torn out of the network by a fault (always
    followed by a ``dropped`` event for the same packet).
``fault_applied``
    A :class:`~repro.faults.plan.FaultPlan` event fired.  ``cause`` is
    ``fail:channel`` / ``heal:router`` etc.; ``node``/``direction``
    locate the failed resource.

Events encode to single JSON objects (one per line in a JSONL trace
file) with ``None`` fields omitted, and decode back to identical
:class:`TraceEvent` values — the round-trip is exact and tested.  A
trace file's first line is a header record carrying
:data:`TRACE_SCHEMA`; readers reject schemas they do not understand
instead of misparsing them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

TRACE_SCHEMA = 1
"""Version of the trace event vocabulary and encoding.  Bumped whenever
an event kind or field changes meaning; written into every trace
header and checked by :func:`repro.observability.summary.read_trace`."""

INJECTED = "injected"
HEADER_ADVANCE = "header_advance"
CHANNEL_ALLOCATED = "channel_allocated"
BLOCKED = "blocked"
DELIVERED = "delivered"
DROPPED = "dropped"
KILLED = "killed"
FAULT_APPLIED = "fault_applied"

EVENT_KINDS = (
    INJECTED,
    HEADER_ADVANCE,
    CHANNEL_ALLOCATED,
    BLOCKED,
    DELIVERED,
    DROPPED,
    KILLED,
    FAULT_APPLIED,
)
"""Every event kind the engine can emit, in rough lifecycle order."""

_FIELDS = ("kind", "cycle", "pid", "node", "channel", "direction", "cause")


@dataclass(frozen=True)
class TraceEvent:
    """One engine event, cycle-stamped.

    ``direction`` is the compact signed-dimension form (``"+d0"`` is
    east, ``"-d1"`` is south, ...) so events stay plain strings/ints and
    never drag live topology objects into a trace file.
    """

    kind: str
    cycle: int
    pid: Optional[int] = None
    node: Optional[int] = None
    channel: Optional[int] = None
    direction: Optional[str] = None
    cause: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.cycle < 0:
            raise ValueError(f"cycle must be non-negative, got {self.cycle}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping with ``None`` fields omitted."""
        out: Dict[str, object] = {}
        for name in _FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        unknown = set(data) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown trace event fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]

    def to_json_line(self) -> str:
        """One deterministic JSONL line (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def parse_jsonl_line(line: str) -> TraceEvent:
    """Decode one JSONL line back into a :class:`TraceEvent`."""
    data = json.loads(line)
    if not isinstance(data, dict):
        raise ValueError(f"trace line is not a JSON object: {line!r}")
    return TraceEvent.from_dict(data)


def parse_jsonl(lines: Iterable[str]) -> Iterator[TraceEvent]:
    """Decode an iterable of JSONL lines, skipping blank lines."""
    for line in lines:
        line = line.strip()
        if line:
            yield parse_jsonl_line(line)
