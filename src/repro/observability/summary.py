"""Analysis of JSONL trace files for the ``repro trace`` subcommand.

:func:`read_trace` validates a file's header (schema check) and streams
its events; :func:`summarize_trace` folds an event stream into a
:class:`TraceSummary` — counts by kind, drops by cause, the most
stall-prone routers, and network-transit statistics computed by pairing
each packet's ``injected`` and ``delivered`` events.  The summary
renders as text or JSON, so a CI bench-smoke job can archive the JSON
and a human can read the text.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .collectors import latency_percentiles
from .events import (
    BLOCKED,
    DELIVERED,
    DROPPED,
    INJECTED,
    TRACE_SCHEMA,
    TraceEvent,
    parse_jsonl_line,
)
from .sinks import HEADER_KIND


def read_trace(path) -> Tuple[Dict[str, object], Iterator[TraceEvent]]:
    """Open a JSONL trace: return ``(header, event_iterator)``.

    Raises :class:`ValueError` if the first line is not a trace header
    or declares a schema this reader does not understand.  The iterator
    streams, so multi-gigabyte traces never load whole.
    """
    path = Path(path)
    stream = path.open("r", encoding="utf-8")
    first = stream.readline()
    try:
        header = json.loads(first) if first.strip() else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("kind") != HEADER_KIND:
        stream.close()
        raise ValueError(
            f"{path}: not a trace file (first line must be a "
            f"{HEADER_KIND!r} record)"
        )
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        stream.close()
        raise ValueError(
            f"{path}: trace schema {schema!r} is not supported "
            f"(this reader understands schema {TRACE_SCHEMA})"
        )

    def events() -> Iterator[TraceEvent]:
        with stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield parse_jsonl_line(line)

    return header, events()


@dataclass
class TraceSummary:
    """What a trace says happened, aggregated."""

    total_events: int = 0
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    blocked_by_node: Dict[int, int] = field(default_factory=dict)
    first_cycle: Optional[int] = None
    last_cycle: Optional[int] = None
    transit_histogram: Dict[int, int] = field(default_factory=dict)
    """Injection-to-delivery cycles per delivered packet (paired from
    the packet's ``injected`` and ``delivered`` events)."""

    @property
    def transit_percentiles(self) -> Dict[str, Optional[int]]:
        return latency_percentiles(self.transit_histogram)

    def top_blocked_nodes(self, top: int = 5) -> List[Tuple[int, int]]:
        """The ``top`` routers with the most ``blocked`` events, as
        (node, stall episodes), descending."""
        ranked = sorted(self.blocked_by_node.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events,
            "counts_by_kind": {
                kind: self.counts_by_kind[kind]
                for kind in sorted(self.counts_by_kind)
            },
            "drops_by_cause": {
                cause: self.drops_by_cause[cause]
                for cause in sorted(self.drops_by_cause)
            },
            "top_blocked_nodes": [
                {"node": node, "stalls": stalls}
                for node, stalls in self.top_blocked_nodes()
            ],
            "first_cycle": self.first_cycle,
            "last_cycle": self.last_cycle,
            "transit_percentiles": self.transit_percentiles,
        }

    def render(self) -> str:
        lines = [
            f"trace: {self.total_events} events, "
            f"cycles {self.first_cycle}..{self.last_cycle}"
        ]
        for kind in sorted(self.counts_by_kind):
            lines.append(f"  {kind:18s} {self.counts_by_kind[kind]:8d}")
        if self.drops_by_cause:
            lines.append("drops by cause:")
            for cause in sorted(self.drops_by_cause):
                lines.append(f"  {cause:18s} {self.drops_by_cause[cause]:8d}")
        if self.transit_histogram:
            pct = self.transit_percentiles
            lines.append(
                "network transit (injection->delivery, cycles): "
                + ", ".join(f"{k}={v}" for k, v in pct.items())
            )
        if self.blocked_by_node:
            lines.append("most stall-prone routers (node: stall episodes):")
            for node, stalls in self.top_blocked_nodes():
                lines.append(f"  node {node:5d}: {stalls}")
        return "\n".join(lines)


def summarize_trace(events: Iterable[TraceEvent]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary` (streaming)."""
    summary = TraceSummary()
    injected_at: Dict[int, int] = {}
    for event in events:
        summary.total_events += 1
        summary.counts_by_kind[event.kind] = (
            summary.counts_by_kind.get(event.kind, 0) + 1
        )
        if summary.first_cycle is None:
            summary.first_cycle = event.cycle
        summary.last_cycle = event.cycle
        if event.kind == INJECTED and event.pid is not None:
            injected_at[event.pid] = event.cycle
        elif event.kind == DELIVERED and event.pid is not None:
            start = injected_at.pop(event.pid, None)
            if start is not None:
                transit = event.cycle - start
                summary.transit_histogram[transit] = (
                    summary.transit_histogram.get(transit, 0) + 1
                )
        elif event.kind == DROPPED and event.cause is not None:
            summary.drops_by_cause[event.cause] = (
                summary.drops_by_cause.get(event.cause, 0) + 1
            )
        elif event.kind == BLOCKED and event.node is not None:
            summary.blocked_by_node[event.node] = (
                summary.blocked_by_node.get(event.node, 0) + 1
            )
    return summary
