"""Trace sinks: where the engine's event stream goes.

The engine is wired against the tiny :class:`TraceSink` protocol — one
``emit(event)`` call per event, one ``close()`` at teardown — so traces
can go to memory (tests, interactive analysis), to a JSONL file (the
``repro trace`` CLI), or through a kind filter into either.  With no
sink attached the engine performs a single ``is None`` check per
*potential* event and nothing else: tracing is zero-overhead when
disabled, and never perturbs simulation state either way.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, Iterable, List, Optional, Protocol, runtime_checkable

from .events import TRACE_SCHEMA, TraceEvent

HEADER_KIND = "trace-header"
"""The ``kind`` tag of a trace file's first (header) record."""


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive the engine's event stream."""

    def emit(self, event: TraceEvent) -> None:
        """Receive one event (called mid-simulation; must not raise)."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...  # pragma: no cover - protocol stub


def trace_header(
    topology: Optional[str] = None,
    algorithm: Optional[str] = None,
    pattern: Optional[str] = None,
    config_hash: Optional[str] = None,
) -> Dict[str, object]:
    """The header record written as a trace file's first line.

    Carries the schema version plus enough provenance to know what run
    produced the file; ``None`` entries are omitted.
    """
    header: Dict[str, object] = {"kind": HEADER_KIND, "schema": TRACE_SCHEMA}
    for key, value in (
        ("topology", topology),
        ("algorithm", algorithm),
        ("pattern", pattern),
        ("config_hash", config_hash),
    ):
        if value is not None:
            header[key] = value
    return header


class ListSink:
    """Collects events in memory (tests and interactive inspection)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.closed = False

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]


class JsonlTraceSink:
    """Streams events to a JSONL file, header line first.

    Accepts a path (opened/closed by the sink) or an open text stream
    (flushed but left open, so callers can pass ``sys.stdout``).  Usable
    as a context manager.
    """

    def __init__(
        self,
        target,
        header: Optional[Dict[str, object]] = None,
    ) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._stream: io.TextIOBase = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.path = target if isinstance(target, (str, os.PathLike)) else None
        self.emitted = 0
        self._closed = False
        record = header if header is not None else trace_header()
        self._write_line(json.dumps(record, sort_keys=True, separators=(",", ":")))

    def _write_line(self, line: str) -> None:
        self._stream.write(line)
        self._stream.write("\n")

    def emit(self, event: TraceEvent) -> None:
        self._write_line(event.to_json_line())
        self.emitted += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FilteringSink:
    """Forwards only the named event kinds to an inner sink.

    Keeps big traces small: a channel-utilization study needs
    ``channel_allocated``/``blocked`` but not every ``header_advance``.
    """

    def __init__(self, inner: TraceSink, kinds: Iterable[str]) -> None:
        self.inner = inner
        self.kinds = frozenset(kinds)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if event.kind in self.kinds:
            self.inner.emit(event)
        else:
            self.dropped += 1

    def close(self) -> None:
        self.inner.close()
