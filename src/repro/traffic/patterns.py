"""Traffic patterns (Section 6 workloads, plus extras for ablations).

The paper evaluates three workloads on 256-node networks:

* **uniform** — each message goes to any other processor with equal
  probability;
* **matrix transpose** — in the mesh, node ``(i, j)`` sends to ``(j, i)``;
  in the hypercube the 16x16 mesh is embedded so mesh neighbours are cube
  neighbours, giving ``(x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3)``;
* **reverse flip** — hypercube node ``(x0..x7)`` sends to
  ``(~x7, ~x6, ..., ~x0)``.

Nodes whose destination equals themselves (the transpose diagonal, the
patterns' fixed points) generate no traffic; the paper's reported average
path lengths (11.34 mesh hops for transpose, 4.27 cube hops for reverse
flip) confirm that convention — see ``average_hops`` below, which
reproduces them exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from fractions import Fraction
from typing import List, Optional

from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D


class TrafficPattern(ABC):
    """A destination rule for message generation."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier, e.g. ``"uniform"``."""

    @abstractmethod
    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        """Destination for a message from ``src`` (None = no traffic)."""

    def active_sources(self, topology: Topology) -> List[int]:
        """Nodes that generate traffic (fixed points excluded)."""
        probe = random.Random(0)
        out = []
        for node in topology.nodes():
            dst = self.dest(node, probe)
            if dst is not None and dst != node:
                out.append(node)
        return out

    def is_deterministic(self) -> bool:
        """Whether every source has a single fixed destination."""
        return True

    def average_hops(self) -> Fraction:
        """Exact mean minimal path length over the generated traffic."""
        if not self.is_deterministic():
            raise NotImplementedError(
                "average_hops has a closed form only for deterministic "
                "patterns; use uniform_average_hops for the uniform pattern"
            )
        probe = random.Random(0)
        total = Fraction(0)
        count = 0
        for src in self.active_sources(self.topology):
            dst = self.dest(src, probe)
            total += self.topology.distance(src, dst)
            count += 1
        return total / count


class UniformPattern(TrafficPattern):
    """Every other node is an equally likely destination."""

    @property
    def name(self) -> str:
        return "uniform"

    def dest(self, src: int, rng: random.Random) -> int:
        n = self.topology.num_nodes
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    def is_deterministic(self) -> bool:
        return False


def uniform_average_hops(topology: Topology) -> Fraction:
    """Exact mean minimal distance over ordered pairs with src != dst."""
    total = Fraction(0)
    n = topology.num_nodes
    for src in topology.nodes():
        for dst in topology.nodes():
            if src != dst:
                total += topology.distance(src, dst)
    return total / (n * (n - 1))


class MeshTransposePattern(TrafficPattern):
    """Node ``(i, j)`` sends to ``(j, i)`` in a square 2D mesh."""

    def __init__(self, topology: Mesh2D) -> None:
        if topology.n_dims != 2 or topology.dims[0] != topology.dims[1]:
            raise ValueError("matrix transpose requires a square 2D mesh")
        super().__init__(topology)

    @property
    def name(self) -> str:
        return "transpose"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        x, y = self.topology.coords(src)
        if x == y:
            return None  # diagonal nodes are fixed points
        return self.topology.node_at((y, x))


class HypercubeTransposePattern(TrafficPattern):
    """The mesh transpose mapped onto the hypercube (Section 6).

    For an n-cube with even n, the low n/2 address bits encode the mesh
    row and the high n/2 bits the column; transposing swaps and
    complements per the paper's formula, which for n = 8 is
    ``(x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3)``.
    """

    def __init__(self, topology: Hypercube) -> None:
        if topology.order % 2 != 0:
            raise ValueError("hypercube transpose requires an even order")
        super().__init__(topology)

    @property
    def name(self) -> str:
        return "transpose"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        n = self.topology.order
        half = n // 2
        bits = self.topology.bits(src)
        out = list(bits)
        # d0 = ~x_half, d_half = ~x_0; the remaining bits of each half
        # shift across unchanged.
        out[0] = 1 - bits[half]
        out[half] = 1 - bits[0]
        for i in range(1, half):
            out[i] = bits[half + i]
            out[half + i] = bits[i]
        dst = self.topology.node_from_bits(out)
        return None if dst == src else dst


class ReverseFlipPattern(TrafficPattern):
    """Hypercube node ``(x0..x_{n-1})`` sends to the complemented
    bit-reversal ``(~x_{n-1}, ..., ~x0)``."""

    def __init__(self, topology: Hypercube) -> None:
        super().__init__(topology)

    @property
    def name(self) -> str:
        return "reverse-flip"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        n = self.topology.order
        bits = self.topology.bits(src)
        out = [1 - bits[n - 1 - i] for i in range(n)]
        dst = self.topology.node_from_bits(out)
        return None if dst == src else dst


class BitComplementPattern(TrafficPattern):
    """Every node sends to its bitwise complement (extra workload)."""

    def __init__(self, topology: Hypercube) -> None:
        super().__init__(topology)

    @property
    def name(self) -> str:
        return "bit-complement"

    def dest(self, src: int, rng: random.Random) -> int:
        return src ^ ((1 << self.topology.order) - 1)


class MeshComplementPattern(TrafficPattern):
    """Every node sends to its coordinate complement:
    ``(x0, ..., x_{n-1}) -> (k0-1-x0, ..., k_{n-1}-1-x_{n-1})``.

    The mesh analogue of bit-complement: all traffic crosses the centre
    of every dimension, the worst case for bisection load.  Works on any
    n-dimensional mesh; used by the 3D-mesh extension study.
    """

    @property
    def name(self) -> str:
        return "complement"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        coords = self.topology.coords(src)
        flipped = tuple(
            k - 1 - c for c, k in zip(coords, self.topology.dims)
        )
        dst = self.topology.node_at(flipped)
        return None if dst == src else dst


class HotspotPattern(TrafficPattern):
    """Uniform traffic with a fraction of messages aimed at one node
    (extra workload, for the adaptivity-under-hotspot example)."""

    def __init__(
        self, topology: Topology, hotspot: int, fraction: float = 0.2
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        super().__init__(topology)
        self.hotspot = hotspot
        self.fraction = fraction

    @property
    def name(self) -> str:
        return f"hotspot{self.fraction:.0%}"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        n = self.topology.num_nodes
        dst = rng.randrange(n - 1)
        dst = dst if dst < src else dst + 1
        return dst

    def is_deterministic(self) -> bool:
        return False


class PermutationPattern(TrafficPattern):
    """An arbitrary fixed permutation supplied as a mapping."""

    def __init__(self, topology: Topology, mapping) -> None:
        super().__init__(topology)
        self.mapping = dict(mapping)
        for src, dst in self.mapping.items():
            if not (0 <= src < topology.num_nodes) or not (
                0 <= dst < topology.num_nodes
            ):
                raise ValueError(f"mapping entry {src}->{dst} out of range")

    @property
    def name(self) -> str:
        return "permutation"

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        dst = self.mapping.get(src)
        return None if dst is None or dst == src else dst
