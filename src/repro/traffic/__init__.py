"""Traffic workloads: the paper's patterns and extras."""

from .patterns import (
    BitComplementPattern,
    HotspotPattern,
    HypercubeTransposePattern,
    MeshComplementPattern,
    MeshTransposePattern,
    PermutationPattern,
    ReverseFlipPattern,
    TrafficPattern,
    UniformPattern,
    uniform_average_hops,
)

__all__ = [
    "BitComplementPattern",
    "HotspotPattern",
    "HypercubeTransposePattern",
    "MeshComplementPattern",
    "MeshTransposePattern",
    "PermutationPattern",
    "ReverseFlipPattern",
    "TrafficPattern",
    "UniformPattern",
    "uniform_average_hops",
]
