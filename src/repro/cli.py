"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list`` — available algorithms, patterns, and figures;
* ``verify`` — CDG deadlock check + connectivity for an algorithm;
* ``turns`` — render a named prohibition set (Figures 3/5a/9a/10a);
* ``simulate`` — one operating point (algorithm, pattern, load);
* ``sweep`` — a latency/throughput curve over several loads;
* ``figure`` — regenerate one of the paper's figures (13-16);
* ``faults`` — a seeded fault-injection campaign: delivery ratio, drops
  by cause, and retries vs. the number of failed links, per algorithm
  (see docs/FAULTS.md);
* ``trace`` — run one operating point with flit-level observability on:
  JSONL event trace, text/JSON summary (latency percentiles, stall-prone
  routers, hottest channels), and per-direction channel-utilization
  heatmaps (see docs/OBSERVABILITY.md);
* ``selection`` — compare output-selection policies (xy, round-robin,
  max-credits, threshold) across algorithms, patterns, and a shared
  fault plan, with saturation/latency deltas vs the xy baseline (see
  docs/SELECTION.md);
* ``saturation`` — batched bisection searches for the maximum
  sustainable load of each (algorithm x pattern) pair;
* ``bench`` — time the engine on the canonical operating points and
  (optionally) gate against the committed perf trajectory
  ``BENCH_engine.json`` (see docs/PERFORMANCE.md).

``simulate`` and ``trace`` accept ``--profile`` to time the engine's hot
phases (routing decision, switch allocation, flit advance).
``simulate``/``sweep``/``trace``/``figure``/``faults`` accept
``--selection``/``--selection-threshold`` to swap the output-selection
policy.

``sweep``, ``figure``, ``faults``, ``selection``, and ``saturation``
route through the parallel experiment runner: ``--jobs N`` fans the
operating points over N supervised worker processes and
``--cache``/``--no-cache``/``--cache-dir``/``--force`` control the
on-disk result cache (results are bit-identical either way; see
docs/PERFORMANCE.md).  The supervision knobs — ``--point-timeout``,
``--max-point-retries``, ``--keep-going``/``--fail-fast``,
``--journal``, ``--resume`` — make long campaigns survive worker
crashes, hangs, and interruptions (docs/RESILIENCE.md).

Topology specs: ``mesh:16x16`` (any ``AxBxC...``), ``cube:8`` (binary
n-cube), ``torus:8x2`` (k-ary n-cube, k then n).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .analysis import FAST, FIGURE_HARNESSES, FULL, format_figure
from .analysis.bench import (
    batch_bench_points,
    bench_points,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)
from .analysis.faultsweep import (
    DEFAULT_ALGORITHMS,
    campaign_config,
    run_fault_campaign,
)
from .analysis.selection import (
    DEFAULT_COMPARE_ALGORITHMS,
    DEFAULT_COMPARE_PATTERNS,
    DEFAULT_POLICIES,
    comparison_config,
    run_selection_comparison,
)
from .analysis.runner import (
    PATTERN_NAMES,
    ParallelSweepRunner,
    ResultCache,
    make_pattern as _make_pattern,
    parse_topology_spec,
)
from .analysis.sweep import run_sweep
from .core.turn_model import TurnModel
from .observability import (
    EVENT_KINDS,
    FilteringSink,
    JsonlTraceSink,
    PhaseProfiler,
    read_trace,
    summarize_trace,
    trace_header,
)
from .routing.registry import algorithm_names, make_algorithm
from .simulation.array_engine import make_simulator
from .simulation.config import BACKENDS, SimulationConfig
from .simulation.selection import output_policy_names
from .topology.base import Topology
from .topology.mesh import Mesh2D
from .verification import check_connectivity, verify_algorithm
from .viz import hottest_channels, render_turn_set, render_utilization_heatmaps

TURN_MODELS = {
    "xy": TurnModel.xy,
    "west-first": TurnModel.west_first,
    "north-last": TurnModel.north_last,
    "negative-first": TurnModel.negative_first,
}

def parse_topology(spec: str) -> Topology:
    """Parse ``mesh:16x16`` / ``cube:8`` / ``torus:8x2`` specs."""
    try:
        return parse_topology_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def make_pattern(name: str, topology: Topology):
    try:
        return _make_pattern(name, topology)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def cmd_list(args) -> int:
    print("algorithms :", ", ".join(algorithm_names()))
    print("patterns   :", ", ".join(PATTERN_NAMES))
    print("turn models:", ", ".join(sorted(TURN_MODELS)))
    print("figures    :", ", ".join(sorted(FIGURE_HARNESSES)))
    print("selection  :", ", ".join(output_policy_names()))
    return 0


def cmd_verify(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    verdict = verify_algorithm(algorithm)
    print(
        f"{algorithm.name} on {topology!r}: "
        f"deadlock free = {verdict.deadlock_free} "
        f"({verdict.num_channels} channels, "
        f"{verdict.num_dependencies} dependencies)"
    )
    if verdict.cycle:
        print("witness cycle:")
        for channel in verdict.cycle:
            print(f"  {channel!r}")
    if args.connectivity:
        report = check_connectivity(algorithm)
        print(
            f"connectivity: {report.delivered_pairs}/{report.total_pairs} "
            f"pairs reachable; minimal everywhere: "
            f"{report.minimal_everywhere}"
        )
    return 0 if verdict.deadlock_free else 1


def cmd_turns(args) -> int:
    factory = TURN_MODELS.get(args.model)
    if factory is None:
        raise SystemExit(
            f"unknown turn model {args.model!r}; choose from "
            f"{sorted(TURN_MODELS)}"
        )
    print(render_turn_set(factory()))
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer that must be strictly positive."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float that must be strictly positive."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}"
        )
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer that must be >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _config(args) -> SimulationConfig:
    return SimulationConfig(
        offered_load=getattr(args, "load", 1.0),
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        buffer_depth=args.buffer_depth,
        virtual_channels=getattr(args, "vc", 1),
        output_selection=getattr(args, "selection", "xy"),
        selection_threshold=getattr(args, "selection_threshold", 2),
        deadlock_threshold=getattr(args, "deadlock_threshold", 5_000),
        packet_timeout=getattr(args, "packet_timeout", 0),
        max_retries=getattr(args, "max_retries", 0),
        retry_backoff_base=getattr(args, "retry_backoff_base", 32),
        retry_backoff_cap=getattr(args, "retry_backoff_cap", 2_048),
        backend=getattr(args, "backend", "event"),
    )


def cmd_simulate(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    pattern = make_pattern(args.pattern, topology)
    profiler = PhaseProfiler() if args.profile else None
    result = make_simulator(
        algorithm, pattern, _config(args), profiler=profiler
    ).run()
    print(result.summary())
    if result.avg_hops is not None:
        print(
            f"hops={result.avg_hops:.2f} "
            f"net-latency={result.avg_network_latency_us:.2f}us "
            f"delivered={result.delivered_packets} packets"
        )
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def cmd_trace(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    pattern = make_pattern(args.pattern, topology)
    kinds = None
    if args.events:
        kinds = [part.strip() for part in args.events.split(",") if part.strip()]
        unknown = sorted(set(kinds) - set(EVENT_KINDS))
        if unknown:
            raise SystemExit(
                f"unknown trace event kinds {unknown}; "
                f"choose from {list(EVENT_KINDS)}"
            )
    config = _config(args).with_observability(
        channel_series_period=args.series_period
    )
    header = trace_header(
        topology=args.topology,
        algorithm=algorithm.name,
        pattern=getattr(pattern, "name", type(pattern).__name__),
        config_hash=config.stable_hash(),
    )
    sink = JsonlTraceSink(args.out, header=header)
    if kinds is not None:
        sink = FilteringSink(sink, kinds)
    profiler = PhaseProfiler() if args.profile else None
    simulator = make_simulator(
        algorithm, pattern, config, sink=sink, profiler=profiler
    )
    result = simulator.run()
    sink.close()

    # Summarize by reading the file back: every `repro trace` run also
    # exercises the full emit -> JSONL -> parse round-trip.
    _, events = read_trace(args.out)
    summary = summarize_trace(events)

    util = result.channel_utilization()
    totals = (
        [int(round(u * result.measure_cycles)) for u in util]
        if util is not None
        else None
    )
    heatmap_text = None
    if args.heatmap is not None:
        if not isinstance(topology, Mesh2D):
            raise SystemExit(
                "--heatmap requires a 2D mesh topology (mesh:AxB)"
            )
        if totals is None:
            raise SystemExit(
                "--heatmap needs a non-empty utilization series (the run "
                "aborted before its measurement window?)"
            )
        heatmap_text = render_utilization_heatmaps(
            topology, simulator.channels, totals, result.measure_cycles
        )
        if args.heatmap == "-":
            print(heatmap_text)
        else:
            with open(args.heatmap, "w", encoding="utf-8") as fh:
                fh.write(heatmap_text + "\n")

    if args.json:
        payload = {
            "point": {
                "topology": args.topology,
                "algorithm": algorithm.name,
                "pattern": getattr(pattern, "name", type(pattern).__name__),
                "offered_load": config.offered_load,
                "config_hash": config.stable_hash(),
            },
            "result": result.to_dict(),
            "trace": summary.to_dict(),
            "trace_file": str(args.out),
        }
        if profiler is not None:
            payload["profile"] = profiler.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(result.summary())
    print()
    print(summary.render())
    pct = {
        f"p{p:g}": result.latency_percentile(p) for p in (50, 90, 99, 100)
    }
    if pct["p50"] is not None:
        shown = ", ".join(f"{k}={v}" for k, v in pct.items())
        print(f"creation->delivery latency (cycles): {shown}")
    if totals is not None:
        print("hottest channels (flits crossed in the measurement window):")
        for channel, flits in hottest_channels(simulator.channels, totals):
            print(f"  {channel!r}: {flits}")
    print(f"trace written to {args.out} ({summary.total_events} events)")
    if heatmap_text is not None and args.heatmap != "-":
        print(f"heatmaps written to {args.heatmap}")
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def _make_runner(args) -> ParallelSweepRunner:
    """Build the experiment runner the sweep/figure commands route
    through, from the shared ``--jobs``/``--cache*``/``--force`` flags
    and the supervision knobs (docs/RESILIENCE.md)."""
    cache = None
    if getattr(args, "cache", True):
        cache = ResultCache(getattr(args, "cache_dir", None))
    try:
        return ParallelSweepRunner(
            jobs=getattr(args, "jobs", 1),
            cache=cache,
            force=getattr(args, "force", False),
            point_timeout=getattr(args, "point_timeout", None),
            max_point_retries=getattr(args, "max_point_retries", 0),
            keep_going=getattr(args, "keep_going", False),
            journal=getattr(args, "journal", None),
            resume=getattr(args, "resume", False),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _print_array_coverage(args, configs, force: bool = False) -> None:
    """For ``--backend array`` runs: print what fraction of the points
    ride the vectorized kernels (and why the rest demoted to the
    scalar-member fallback), so silent fast-path loss is visible."""
    if not force and getattr(args, "backend", "event") != "array":
        return
    if not configs or getattr(args, "json", False):
        return
    from .simulation.array_engine import demotion_reasons

    reasons_per_point = [demotion_reasons(config) for config in configs]
    vectorized = sum(1 for reasons in reasons_per_point if not reasons)
    line = (
        f"[array backend: {vectorized}/{len(configs)} point(s) "
        f"vectorized ({vectorized / len(configs):.0%})"
    )
    if vectorized < len(configs):
        counts: Dict[str, int] = {}
        for reasons in reasons_per_point:
            for reason in reasons:
                counts[reason] = counts.get(reason, 0) + 1
        line += "; demoted by " + ", ".join(
            f"{reason} x{count}" for reason, count in sorted(counts.items())
        )
    print(line + "]")


def _finish_runner(runner: ParallelSweepRunner, args) -> int:
    """Print the runner's stats line and failure manifest; close the
    journal.  Returns the command exit code: 0 clean, 3 when points
    permanently failed under ``--keep-going`` (partial results were
    still printed)."""
    quiet = getattr(args, "json", False)
    if not quiet:
        print(f"[{runner.stats.summary()}]")
    if runner.failures:
        print(
            f"{len(runner.failures)} point(s) permanently failed:",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        manifest = getattr(args, "failure_manifest", None)
        if manifest:
            with open(manifest, "w", encoding="utf-8") as fh:
                for failure in runner.failures:
                    fh.write(
                        json.dumps(
                            failure.to_dict(), sort_keys=True, default=str
                        )
                        + "\n"
                    )
            print(f"failure manifest written to {manifest}", file=sys.stderr)
        runner.close()
        return 3
    runner.close()
    return 0


def cmd_sweep(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    pattern = make_pattern(args.pattern, topology)
    loads = [float(part) for part in args.loads.split(",")]
    runner = _make_runner(args)
    series = run_sweep(
        algorithm,
        pattern,
        loads,
        _config(args),
        progress=lambda r: print("  ", r.summary(), flush=True),
        runner=runner,
    )
    print()
    for row in series.rows():
        print(row)
    print(
        f"max sustainable throughput: "
        f"{series.max_sustainable_throughput():.1f} flits/us"
    )
    _print_array_coverage(args, [_config(args)] * len(loads))
    return _finish_runner(runner, args)


def _resolve_figure(name: str):
    """Accept both ``fig13`` and the bare paper number ``13``."""
    harness = FIGURE_HARNESSES.get(name)
    if harness is None:
        harness = FIGURE_HARNESSES.get(f"fig{name}")
        if harness is not None:
            name = f"fig{name}"
    if harness is None:
        raise SystemExit(
            f"unknown figure {name!r}; choose from "
            f"{sorted(FIGURE_HARNESSES)}"
        )
    return name, harness


def cmd_figure(args) -> int:
    from dataclasses import replace

    name, harness = _resolve_figure(args.name)
    preset = FULL if (args.full or args.preset == "full") else FAST
    overrides = {
        knob: getattr(args, knob)
        for knob in ("deadlock_threshold", "packet_timeout", "max_retries")
        if getattr(args, knob) != getattr(preset, knob)
    }
    if args.selection != preset.output_selection:
        overrides["output_selection"] = args.selection
    if args.selection_threshold != preset.selection_threshold:
        overrides["selection_threshold"] = args.selection_threshold
    if args.backend != preset.backend:
        overrides["backend"] = args.backend
    if overrides:
        preset = replace(preset, **overrides)
    runner = _make_runner(args)
    series = harness(
        preset,
        progress=lambda r: print("  ...", r.summary(), flush=True),
        runner=runner,
    )
    print()
    print(format_figure(name, series))
    return _finish_runner(runner, args)


def cmd_faults(args) -> int:
    algorithms = [part.strip() for part in args.algorithms.split(",") if part.strip()]
    if not algorithms:
        raise SystemExit("--algorithms must name at least one algorithm")
    try:
        fault_counts = [int(part) for part in args.faults.split(",")]
    except ValueError:
        raise SystemExit(f"bad --faults list {args.faults!r}")
    config = campaign_config(
        offered_load=args.load,
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        packet_timeout=args.packet_timeout,
        max_retries=args.max_retries,
        drain_cycles=args.drain,
        retry_backoff_base=args.retry_backoff_base,
        retry_backoff_cap=args.retry_backoff_cap,
        deadlock_threshold=args.deadlock_threshold,
        output_selection=args.selection,
        selection_threshold=args.selection_threshold,
        backend=args.backend,
    )
    runner = _make_runner(args)
    progress = None
    if not args.json:
        progress = lambda r: print("  ...", r.summary(), flush=True)  # noqa: E731
    try:
        campaign = run_fault_campaign(
            topology=args.topology,
            algorithms=algorithms,
            pattern=args.pattern,
            fault_counts=fault_counts,
            trials=args.trials,
            base_config=config,
            seed=args.campaign_seed,
            fault_start=args.fault_start,
            runner=runner,
            progress=progress,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(campaign.to_dict(), indent=2, sort_keys=True))
    else:
        print()
        for row in campaign.rows():
            print(row)
    _print_array_coverage(args, [config])
    return _finish_runner(runner, args)


def cmd_selection(args) -> int:
    def _csv(text: str) -> List[str]:
        return [part.strip() for part in text.split(",") if part.strip()]

    algorithms = _csv(args.algorithms)
    patterns = _csv(args.patterns)
    policies = _csv(args.policies)
    try:
        loads = [float(part) for part in args.loads.split(",")]
    except ValueError:
        raise SystemExit(f"bad --loads list {args.loads!r}")
    config = comparison_config(
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        backend=args.backend,
    )
    runner = _make_runner(args)
    progress = None
    if not args.json:
        progress = lambda r: print("  ...", r.summary(), flush=True)  # noqa: E731
    try:
        comparison = run_selection_comparison(
            topology=args.topology,
            algorithms=algorithms,
            patterns=patterns,
            policies=policies,
            loads=loads,
            base_config=config,
            fault_links=args.fault_links,
            fault_seed=args.fault_seed,
            selection_threshold=args.selection_threshold,
            runner=runner,
            progress=progress,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print()
        for row in comparison.rows():
            print(row)
    return _finish_runner(runner, args)


def cmd_saturation(args) -> int:
    from .analysis import find_saturation_many, format_saturation_points

    algorithms = [
        part.strip() for part in args.algorithms.split(",") if part.strip()
    ]
    if not algorithms:
        raise SystemExit("--algorithms must name at least one algorithm")
    patterns = [
        part.strip() for part in args.patterns.split(",") if part.strip()
    ]
    if not patterns:
        raise SystemExit("--patterns must name at least one pattern")
    topology = parse_topology(args.topology)
    try:
        pairs = [
            (make_algorithm(algorithm, topology), _make_pattern(p, topology))
            for algorithm in algorithms
            for p in patterns
        ]
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    runner = _make_runner(args)
    points = find_saturation_many(
        pairs,
        base_config=_config(args),
        low=args.low,
        high=args.high,
        iterations=args.iterations,
        runner=runner,
    )
    if args.json:
        payload = {
            "topology": args.topology,
            "points": [
                {
                    "algorithm": p.algorithm,
                    "pattern": p.pattern,
                    "max_sustainable_load": p.max_sustainable_load,
                    "throughput_flits_per_us": p.throughput_flits_per_us,
                    "latency_us": p.latency_us,
                    "probes": p.probes,
                }
                for p in points
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_saturation_points(points))
    return _finish_runner(runner, args)


def cmd_bench(args) -> int:
    baseline = load_report(args.baseline) if args.baseline else None
    points = []
    if args.backend in ("event", "both"):
        points.extend(bench_points(quick=args.quick))
    if args.backend in ("array", "both"):
        points.extend(bench_points(quick=args.quick, backend="array"))
    batch = []
    if args.backend != "event" and not args.no_batch:
        batch = batch_bench_points(quick=args.quick)
    print(
        f"benchmarking {len(points)} point(s) + {len(batch)} batch "
        f"point(s), best of {args.repeats} repeat(s) each ...",
        flush=True,
    )
    report = run_bench(
        points,
        repeats=args.repeats,
        baseline=baseline,
        label=args.label,
        progress=lambda m: print(
            f"  {m.point.id:30s} {m.cycles_per_s:12.0f} cycles/s "
            f"({m.wall_s:.3f}s)",
            flush=True,
        ),
        batch_points=batch,
        batch_progress=lambda m: print(
            f"  {m.point.id:30s} {m.points_per_s:12.2f} pts/s "
            f"({m.speedup:.2f}x event)",
            flush=True,
        ),
    )
    print()
    print(report.render())
    if args.backend != "event":
        configs = [
            p.config() for p in points if p.backend == "array"
        ] + [p.config(p.base_seed, "array") for p in batch]
        _print_array_coverage(args, configs, force=True)
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check_against:
        committed = load_report(args.check_against)
        problems = compare_reports(
            report, committed, fail_threshold=args.fail_threshold
        )
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check_against}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Turn-model adaptive routing: verify, simulate, reproduce.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available algorithms/patterns/figures")

    p = sub.add_parser("verify", help="deadlock-freedom check (CDG)")
    p.add_argument("algorithm")
    p.add_argument("--topology", default="mesh:8x8")
    p.add_argument(
        "--connectivity", action="store_true", help="also walk all pairs"
    )

    p = sub.add_parser("turns", help="render a prohibition set")
    p.add_argument("model")

    for name, helptext in (
        ("simulate", "one operating point"),
        ("sweep", "latency/throughput curve"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("algorithm")
        p.add_argument("--topology", default="mesh:16x16")
        p.add_argument("--pattern", default="uniform")
        p.add_argument("--warmup", type=int, default=2_000)
        p.add_argument("--cycles", type=int, default=8_000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--buffer-depth", type=int, default=1)
        p.add_argument(
            "--vc", type=int, default=1, help="virtual channels per link"
        )
        _add_robustness_flags(p)
        _add_selection_flags(p)
        _add_backend_flag(p)
        if name == "simulate":
            p.add_argument("--load", type=float, default=1.0)
            p.add_argument(
                "--profile",
                action="store_true",
                help="time the engine's hot phases and print the report",
            )
        else:
            p.add_argument("--loads", default="0.5,1.0,1.5,2.0")
            _add_runner_flags(p)

    p = sub.add_parser(
        "trace",
        help="flit-level event trace of one operating point "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument("algorithm")
    p.add_argument("--topology", default="mesh:8x8")
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--cycles", type=int, default=2_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--buffer-depth", type=int, default=1)
    p.add_argument(
        "--vc", type=int, default=1, help="virtual channels per link"
    )
    p.add_argument(
        "--out",
        default="trace.jsonl",
        help="JSONL trace file to write (default trace.jsonl)",
    )
    p.add_argument(
        "--events",
        default=None,
        help="comma-separated event kinds to keep (default: all)",
    )
    p.add_argument(
        "--series-period",
        type=_positive_int,
        default=100,
        help="bucket width, in cycles, of the utilization time series",
    )
    p.add_argument(
        "--heatmap",
        default=None,
        help="write per-direction channel-utilization heatmaps to this "
        "file ('-' prints them; 2D meshes only)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the run + trace summary as JSON instead of text",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="time the engine's hot phases and print the report",
    )
    _add_robustness_flags(p)
    _add_selection_flags(p)
    _add_backend_flag(p)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", help="fig13..fig16, or the bare number")
    p.add_argument(
        "--preset",
        choices=("fast", "full"),
        default="fast",
        help="experiment preset (fast: reduced grid; full: denser/longer)",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="alias for --preset full (kept for compatibility)",
    )
    _add_robustness_flags(p)
    _add_selection_flags(p)
    _add_backend_flag(p)
    _add_runner_flags(p)

    p = sub.add_parser(
        "faults", help="seeded fault-injection campaign (docs/FAULTS.md)"
    )
    p.add_argument("--topology", default="mesh:16x16")
    p.add_argument(
        "--algorithms",
        default=",".join(DEFAULT_ALGORITHMS),
        help="comma-separated routing algorithms to compare",
    )
    p.add_argument("--pattern", default="uniform")
    p.add_argument(
        "--faults",
        default="1,2,4,8",
        help="comma-separated failed-link counts to sweep",
    )
    p.add_argument(
        "--trials",
        type=_positive_int,
        default=3,
        help="fault plans drawn per fault count (default 3)",
    )
    p.add_argument("--load", type=float, default=0.5)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--cycles", type=int, default=4_000)
    p.add_argument(
        "--drain",
        type=_non_negative_int,
        default=3_000,
        help="post-measurement cycles to let in-flight packets resolve",
    )
    p.add_argument("--seed", type=int, default=1, help="simulation seed")
    p.add_argument(
        "--campaign-seed",
        type=int,
        default=0,
        help="seed the per-trial fault plans derive from",
    )
    p.add_argument(
        "--fault-start",
        type=_non_negative_int,
        default=0,
        help="cycle the failures appear at (0 = broken from the start)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the campaign as JSON instead of the text report",
    )
    _add_robustness_flags(
        p, packet_timeout_default=800, max_retries_default=2
    )
    _add_selection_flags(p)
    _add_backend_flag(p)
    _add_runner_flags(p)

    p = sub.add_parser(
        "selection",
        help="compare output-selection policies across algorithms, "
        "patterns, and a fault plan (docs/SELECTION.md)",
    )
    p.add_argument("--topology", default="mesh:16x16")
    p.add_argument(
        "--algorithms",
        default=",".join(DEFAULT_COMPARE_ALGORITHMS),
        help="comma-separated routing algorithms to compare under",
    )
    p.add_argument(
        "--patterns",
        default=",".join(DEFAULT_COMPARE_PATTERNS),
        help="comma-separated traffic patterns",
    )
    p.add_argument(
        "--policies",
        default=",".join(DEFAULT_POLICIES),
        help="comma-separated selection policies (xy is the baseline)",
    )
    p.add_argument(
        "--loads",
        default="0.6,1.2,2.0",
        help="comma-separated offered loads (flits/us/node)",
    )
    p.add_argument("--warmup", type=int, default=800)
    p.add_argument("--cycles", type=int, default=3_000)
    p.add_argument("--seed", type=int, default=1, help="simulation seed")
    p.add_argument(
        "--fault-links",
        type=_non_negative_int,
        default=4,
        help="also run every cell against this many dead links "
        "(0 skips the faulted half)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed the shared fault plan derives from",
    )
    p.add_argument(
        "--selection-threshold",
        type=_non_negative_int,
        default=2,
        help="downstream occupancy at which the 'threshold' policy "
        "reroutes",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as JSON instead of the text report",
    )
    _add_backend_flag(p)
    _add_runner_flags(p)

    p = sub.add_parser(
        "saturation",
        help="batched bisection search for each (algorithm x pattern) "
        "pair's maximum sustainable load",
    )
    p.add_argument(
        "--topology", default="mesh:16x16"
    )
    p.add_argument(
        "--algorithms",
        default=",".join(DEFAULT_ALGORITHMS),
        help="comma-separated routing algorithms to search",
    )
    p.add_argument(
        "--patterns",
        default="uniform",
        help="comma-separated traffic patterns",
    )
    p.add_argument("--low", type=float, default=0.0,
                   help="known-sustainable lower bound (flits/us/node)")
    p.add_argument("--high", type=float, default=8.0,
                   help="assumed-unsustainable upper bound")
    p.add_argument(
        "--iterations",
        type=_positive_int,
        default=6,
        help="bisection probes per pair (resolution (high-low)/2**n)",
    )
    p.add_argument("--warmup", type=int, default=2_000)
    p.add_argument("--cycles", type=int, default=8_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--buffer-depth", type=int, default=1)
    p.add_argument(
        "--vc", type=int, default=1, help="virtual channels per link"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the saturation points as JSON instead of the table",
    )
    _add_robustness_flags(p)
    _add_selection_flags(p)
    _add_backend_flag(p)
    _add_runner_flags(p)

    p = sub.add_parser(
        "bench",
        help="engine benchmark on the canonical operating points "
        "(docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="run only the quick CI subset of points",
    )
    p.add_argument(
        "--backend", choices=("event", "array", "both"), default="event",
        help="engine backend(s) to benchmark; array/both also run the "
        "batched-sweep points-per-second points (default event)",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="skip the batched-sweep points",
    )
    p.add_argument(
        "--repeats", type=_positive_int, default=2,
        help="timed repeats per point; the best wall is kept (default 2)",
    )
    p.add_argument("--out", default=None, help="write the JSON report here")
    p.add_argument(
        "--label", default="", help="free-text label stored in the report"
    )
    p.add_argument(
        "--baseline", default=None,
        help="prior report folded in as per-point baselines (speedup column)",
    )
    p.add_argument(
        "--check-against", default=None,
        help="committed report to gate against (fingerprints + cycles/s)",
    )
    p.add_argument(
        "--fail-threshold", type=float, default=0.30,
        help="max allowed cycles/s regression vs --check-against "
        "(default 0.30)",
    )

    return parser


def _add_robustness_flags(
    p: argparse.ArgumentParser,
    packet_timeout_default: int = 0,
    max_retries_default: int = 0,
) -> None:
    """The watchdog/retry knobs shared by simulate/sweep/figure/faults.

    Validation lives in the argparse types: non-positive
    ``--deadlock-threshold`` or backoff values are rejected with a clear
    error instead of surfacing as a config ValueError deep in a worker.
    """
    p.add_argument(
        "--deadlock-threshold",
        type=_positive_int,
        default=5_000,
        help="cycles of global silence before declaring deadlock",
    )
    p.add_argument(
        "--packet-timeout",
        type=_non_negative_int,
        default=packet_timeout_default,
        help="per-packet stall watchdog in cycles (0 disables)",
    )
    p.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=max_retries_default,
        help="source retries after a drop (0 disables)",
    )
    p.add_argument(
        "--retry-backoff-base",
        type=_positive_int,
        default=32,
        help="cycles before the first retry (doubles per attempt)",
    )
    p.add_argument(
        "--retry-backoff-cap",
        type=_positive_int,
        default=2_048,
        help="upper bound on the retry backoff delay",
    )


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """The engine-backend selector shared by the simulation commands.

    Both backends are bit-identical (docs/SIMULATOR.md); ``array``
    requires the optional numpy extra and shines on batched sweeps.
    """
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default="event",
        help="engine backend (default: event; array requires numpy)",
    )


def _add_selection_flags(p: argparse.ArgumentParser) -> None:
    """The output-selection knobs shared by simulate/sweep/trace/figure/
    faults (docs/SELECTION.md).  ``choices`` makes argparse reject an
    unknown policy name with the valid list."""
    p.add_argument(
        "--selection",
        default="xy",
        choices=output_policy_names(),
        help="output-selection policy among the free legal candidates "
        "(default xy, the paper's rule)",
    )
    p.add_argument(
        "--selection-threshold",
        type=_non_negative_int,
        default=2,
        help="downstream occupancy at which the 'threshold' policy "
        "reroutes (other policies ignore it)",
    )


def _add_runner_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the operating points (default 1)",
    )
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve/record results in the on-disk cache (default on)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="re-simulate even on cache hits (refreshes the cache)",
    )
    p.add_argument(
        "--point-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per operating point; a worker past it is "
        "killed and the point retried or recorded as a timeout failure "
        "(docs/RESILIENCE.md)",
    )
    p.add_argument(
        "--max-point-retries",
        type=_non_negative_int,
        default=0,
        help="re-dispatch attempts after a point crashes, hangs, or "
        "raises, with exponential backoff (default 0)",
    )
    p.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        default=False,
        help="record permanently failed points in a failure manifest and "
        "finish the batch (exit code 3 if any failed)",
    )
    p.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="abort the batch on the first permanent failure (default)",
    )
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL campaign journal checkpointing each completed point "
        "(fsync'd per line, so SIGKILL loses nothing journaled)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip points already recorded in --journal, serving them "
        "from the result cache",
    )
    p.add_argument(
        "--failure-manifest",
        default=None,
        metavar="PATH",
        help="also write permanently failed points to this JSONL file",
    )


COMMANDS = {
    "list": cmd_list,
    "verify": cmd_verify,
    "turns": cmd_turns,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "figure": cmd_figure,
    "faults": cmd_faults,
    "trace": cmd_trace,
    "selection": cmd_selection,
    "saturation": cmd_saturation,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
