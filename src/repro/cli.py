"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list`` — available algorithms, patterns, and figures;
* ``verify`` — CDG deadlock check + connectivity for an algorithm;
* ``turns`` — render a named prohibition set (Figures 3/5a/9a/10a);
* ``simulate`` — one operating point (algorithm, pattern, load);
* ``sweep`` — a latency/throughput curve over several loads;
* ``figure`` — regenerate one of the paper's figures (13-16).

Topology specs: ``mesh:16x16`` (any ``AxBxC...``), ``cube:8`` (binary
n-cube), ``torus:8x2`` (k-ary n-cube, k then n).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import FAST, FIGURE_HARNESSES, FULL, format_figure
from .analysis.sweep import run_sweep
from .core.turn_model import TurnModel
from .routing.registry import algorithm_names, make_algorithm
from .simulation.config import SimulationConfig
from .simulation.engine import WormholeSimulator
from .topology.base import Topology
from .topology.hypercube import Hypercube
from .topology.mesh import mesh
from .topology.torus import KAryNCube
from .traffic.patterns import (
    BitComplementPattern,
    HypercubeTransposePattern,
    MeshTransposePattern,
    ReverseFlipPattern,
    UniformPattern,
)
from .verification import check_connectivity, verify_algorithm
from .viz import render_turn_set

TURN_MODELS = {
    "xy": TurnModel.xy,
    "west-first": TurnModel.west_first,
    "north-last": TurnModel.north_last,
    "negative-first": TurnModel.negative_first,
}

PATTERN_NAMES = (
    "uniform",
    "transpose",
    "reverse-flip",
    "bit-complement",
)


def parse_topology(spec: str) -> Topology:
    """Parse ``mesh:16x16`` / ``cube:8`` / ``torus:8x2`` specs."""
    try:
        kind, _, shape = spec.partition(":")
        if kind == "mesh":
            dims = tuple(int(part) for part in shape.split("x"))
            return mesh(dims)
        if kind == "cube":
            return Hypercube(int(shape))
        if kind == "torus":
            k, n = (int(part) for part in shape.split("x"))
            return KAryNCube(k, n)
    except (ValueError, TypeError):
        pass
    raise SystemExit(
        f"bad topology spec {spec!r}; expected mesh:AxB, cube:N, or torus:KxN"
    )


def make_pattern(name: str, topology: Topology):
    if name == "uniform":
        return UniformPattern(topology)
    if name == "transpose":
        if isinstance(topology, Hypercube):
            return HypercubeTransposePattern(topology)
        return MeshTransposePattern(topology)
    if name == "reverse-flip":
        return ReverseFlipPattern(topology)
    if name == "bit-complement":
        return BitComplementPattern(topology)
    raise SystemExit(
        f"unknown pattern {name!r}; choose from {PATTERN_NAMES}"
    )


def cmd_list(args) -> int:
    print("algorithms :", ", ".join(algorithm_names()))
    print("patterns   :", ", ".join(PATTERN_NAMES))
    print("turn models:", ", ".join(sorted(TURN_MODELS)))
    print("figures    :", ", ".join(sorted(FIGURE_HARNESSES)))
    return 0


def cmd_verify(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    verdict = verify_algorithm(algorithm)
    print(
        f"{algorithm.name} on {topology!r}: "
        f"deadlock free = {verdict.deadlock_free} "
        f"({verdict.num_channels} channels, "
        f"{verdict.num_dependencies} dependencies)"
    )
    if verdict.cycle:
        print("witness cycle:")
        for channel in verdict.cycle:
            print(f"  {channel!r}")
    if args.connectivity:
        report = check_connectivity(algorithm)
        print(
            f"connectivity: {report.delivered_pairs}/{report.total_pairs} "
            f"pairs reachable; minimal everywhere: "
            f"{report.minimal_everywhere}"
        )
    return 0 if verdict.deadlock_free else 1


def cmd_turns(args) -> int:
    factory = TURN_MODELS.get(args.model)
    if factory is None:
        raise SystemExit(
            f"unknown turn model {args.model!r}; choose from "
            f"{sorted(TURN_MODELS)}"
        )
    print(render_turn_set(factory()))
    return 0


def _config(args) -> SimulationConfig:
    return SimulationConfig(
        offered_load=getattr(args, "load", 1.0),
        warmup_cycles=args.warmup,
        measure_cycles=args.cycles,
        seed=args.seed,
        buffer_depth=args.buffer_depth,
        virtual_channels=getattr(args, "vc", 1),
    )


def cmd_simulate(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    pattern = make_pattern(args.pattern, topology)
    result = WormholeSimulator(algorithm, pattern, _config(args)).run()
    print(result.summary())
    if result.avg_hops is not None:
        print(
            f"hops={result.avg_hops:.2f} "
            f"net-latency={result.avg_network_latency_us:.2f}us "
            f"delivered={result.delivered_packets} packets"
        )
    return 0


def cmd_sweep(args) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm, topology)
    pattern = make_pattern(args.pattern, topology)
    loads = [float(part) for part in args.loads.split(",")]
    series = run_sweep(
        algorithm,
        pattern,
        loads,
        _config(args),
        progress=lambda r: print("  ", r.summary(), flush=True),
    )
    print()
    for row in series.rows():
        print(row)
    print(
        f"max sustainable throughput: "
        f"{series.max_sustainable_throughput():.1f} flits/us"
    )
    return 0


def cmd_figure(args) -> int:
    harness = FIGURE_HARNESSES.get(args.name)
    if harness is None:
        raise SystemExit(
            f"unknown figure {args.name!r}; choose from "
            f"{sorted(FIGURE_HARNESSES)}"
        )
    preset = FULL if args.full else FAST
    series = harness(
        preset, progress=lambda r: print("  ...", r.summary(), flush=True)
    )
    print()
    print(format_figure(args.name, series))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Turn-model adaptive routing: verify, simulate, reproduce.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available algorithms/patterns/figures")

    p = sub.add_parser("verify", help="deadlock-freedom check (CDG)")
    p.add_argument("algorithm")
    p.add_argument("--topology", default="mesh:8x8")
    p.add_argument(
        "--connectivity", action="store_true", help="also walk all pairs"
    )

    p = sub.add_parser("turns", help="render a prohibition set")
    p.add_argument("model")

    for name, helptext in (
        ("simulate", "one operating point"),
        ("sweep", "latency/throughput curve"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("algorithm")
        p.add_argument("--topology", default="mesh:16x16")
        p.add_argument("--pattern", default="uniform")
        p.add_argument("--warmup", type=int, default=2_000)
        p.add_argument("--cycles", type=int, default=8_000)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--buffer-depth", type=int, default=1)
        p.add_argument(
            "--vc", type=int, default=1, help="virtual channels per link"
        )
        if name == "simulate":
            p.add_argument("--load", type=float, default=1.0)
        else:
            p.add_argument("--loads", default="0.5,1.0,1.5,2.0")

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name")
    p.add_argument("--full", action="store_true")

    return parser


COMMANDS = {
    "list": cmd_list,
    "verify": cmd_verify,
    "turns": cmd_turns,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "figure": cmd_figure,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
