"""repro — a reproduction of Glass & Ni, *The Turn Model for Adaptive
Routing*.

The package provides:

* :mod:`repro.topology` — n-dimensional meshes, k-ary n-cubes, hypercubes;
* :mod:`repro.core` — the turn model itself: turns, abstract cycles,
  prohibition sets, executable channel-numbering proofs, and the
  degree-of-adaptiveness analysis;
* :mod:`repro.routing` — xy / e-cube baselines and the partially adaptive
  algorithms (west-first, north-last, negative-first, ABONF, ABOPL,
  p-cube, torus extensions);
* :mod:`repro.verification` — Dally-Seitz channel-dependency-graph
  deadlock-freedom checking and connectivity reports;
* :mod:`repro.simulation` — a flit-level wormhole network simulator with
  the paper's router microarchitecture;
* :mod:`repro.traffic` — uniform, matrix-transpose, and reverse-flip
  workloads (plus extras);
* :mod:`repro.analysis` — load sweeps, saturation search, and one harness
  per paper figure/table;
* :mod:`repro.faults` — deterministic fault-injection plans, runtime
  fault state, and fault-aware routing wrappers (see docs/FAULTS.md);
* :mod:`repro.observability` — flit-level event tracing, streaming
  channel/router metrics collectors, and engine phase profiling (see
  docs/OBSERVABILITY.md).

Quickstart::

    from repro import Mesh2D, WestFirst, verify_algorithm
    mesh = Mesh2D(16, 16)
    algorithm = WestFirst(mesh)
    assert verify_algorithm(algorithm).deadlock_free

    from repro import SimulationConfig, UniformPattern, WormholeSimulator
    sim = WormholeSimulator(
        algorithm, UniformPattern(mesh), SimulationConfig(offered_load=1.0)
    )
    result = sim.run()
    print(result.avg_latency_us, result.throughput_flits_per_us)
"""

from .core import (
    Turn,
    TurnModel,
    pcube_choice_table,
    s_fully_adaptive,
    s_negative_first,
    s_north_last,
    s_pcube,
    s_west_first,
)
from .routing import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    ClassifiedNegativeFirst,
    DatelineDimensionOrder,
    DimensionOrder,
    EscapeVCAdaptive,
    ECube,
    FirstHopWraparound,
    NegativeFirst,
    NonminimalPCube,
    NorthLast,
    PCube,
    RoutingAlgorithm,
    WestFirst,
    XY,
    make_algorithm,
)
from .faults import (
    FaultAwareRouting,
    FaultEvent,
    FaultPlan,
    FaultState,
)
from .observability import (
    JsonlTraceSink,
    ListSink,
    PhaseProfiler,
    TraceEvent,
)
from .simulation import (
    ArrayWormholeSimulator,
    BatchSimulator,
    SimulationConfig,
    SimulationResult,
    WormholeSimulator,
    detect_deadlock,
    make_simulator,
    numpy_available,
)
from .topology import (
    Channel,
    Direction,
    Hypercube,
    KAryNCube,
    Mesh,
    Mesh2D,
    Topology,
)
from .traffic import (
    HypercubeTransposePattern,
    MeshTransposePattern,
    ReverseFlipPattern,
    TrafficPattern,
    UniformPattern,
)
from .verification import (
    fault_tolerance,
    generate_certificate,
    verify_algorithm,
    verify_escape_discipline,
    verify_turn_set,
    verify_vc_algorithm,
)

__version__ = "1.0.0"

__all__ = [
    "AllButOneNegativeFirst",
    "AllButOnePositiveLast",
    "ArrayWormholeSimulator",
    "BatchSimulator",
    "Channel",
    "ClassifiedNegativeFirst",
    "DatelineDimensionOrder",
    "DimensionOrder",
    "Direction",
    "ECube",
    "EscapeVCAdaptive",
    "FaultAwareRouting",
    "FaultEvent",
    "FaultPlan",
    "FaultState",
    "FirstHopWraparound",
    "Hypercube",
    "HypercubeTransposePattern",
    "JsonlTraceSink",
    "KAryNCube",
    "ListSink",
    "Mesh",
    "Mesh2D",
    "MeshTransposePattern",
    "NegativeFirst",
    "NonminimalPCube",
    "NorthLast",
    "PCube",
    "PhaseProfiler",
    "ReverseFlipPattern",
    "RoutingAlgorithm",
    "SimulationConfig",
    "SimulationResult",
    "Topology",
    "TraceEvent",
    "TrafficPattern",
    "Turn",
    "TurnModel",
    "UniformPattern",
    "WestFirst",
    "WormholeSimulator",
    "XY",
    "detect_deadlock",
    "fault_tolerance",
    "generate_certificate",
    "make_algorithm",
    "make_simulator",
    "numpy_available",
    "pcube_choice_table",
    "s_fully_adaptive",
    "s_negative_first",
    "s_north_last",
    "s_pcube",
    "s_west_first",
    "verify_algorithm",
    "verify_escape_discipline",
    "verify_turn_set",
    "verify_vc_algorithm",
]
