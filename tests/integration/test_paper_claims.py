"""Integration tests for the paper's quantitative claims that are cheap
enough for the unit-test suite (the full-figure shape claims live in the
benchmark harness).

Each test names the paper artifact it checks.
"""

import math
from fractions import Fraction

from repro.core import (
    TurnModel,
    average_adaptiveness_ratio,
    count_shortest_paths,
    s_negative_first,
    s_north_last,
    s_pcube,
    s_west_first,
    two_turn_prohibitions_2d,
)
from repro.routing import TurnRestrictedMinimal, mesh_algorithms
from repro.simulation import SimulationConfig, WormholeSimulator, detect_deadlock
from repro.topology import Hypercube, Mesh2D
from repro.traffic import UniformPattern
from repro.verification import turn_set_is_deadlock_free, verify_algorithm


class TestSection2:
    def test_theorem_1_quarter_of_turns(self):
        """Theorem 1 via Theorem 6: prohibiting the n(n-1) turns of the
        negative-first set is sufficient (CDG acyclic), and n(n-1) is a
        quarter of 4n(n-1)."""
        from repro.topology import Mesh

        for n, dims in ((2, (4, 4)), (3, (3, 3, 3))):
            model = TurnModel.negative_first(n)
            assert len(model.prohibited) == n * (n - 1)
            assert turn_set_is_deadlock_free(Mesh(dims), model)

    def test_theorem_1_necessity_fewer_turns_deadlock(self):
        """Prohibiting fewer than one turn per abstract cycle cannot be
        deadlock free: every single-turn prohibition leaves a cycle."""
        from repro.core.turns import ninety_degree_turns

        mesh = Mesh2D(3, 3)
        for turn in ninety_degree_turns(2):
            model = TurnModel.from_prohibited("single", 2, {turn})
            assert not turn_set_is_deadlock_free(mesh, model)


class TestSection3:
    def test_twelve_of_sixteen(self):
        """Section 3: 12 of the 16 two-turn prohibitions prevent deadlock."""
        mesh = Mesh2D(4, 4)
        free = sum(
            1
            for pair in two_turn_prohibitions_2d()
            if turn_set_is_deadlock_free(
                mesh, TurnModel.from_prohibited("pair", 2, pair)
            )
        )
        assert free == 12

    def test_section_3_4_at_least_half_of_pairs_single_path(self):
        """'S_p = 1 for at least half of the source-destination pairs.'"""
        mesh = Mesh2D(6, 6)
        for formula in (s_west_first, s_north_last, s_negative_first):
            single = sum(
                1
                for s in mesh.nodes()
                for d in mesh.nodes()
                if s != d and formula(mesh, s, d) == 1
            )
            total = mesh.num_nodes * (mesh.num_nodes - 1)
            assert single >= total / 2 - mesh.num_nodes  # diagonal slack

    def test_section_3_4_average_ratio_above_half(self):
        mesh = Mesh2D(6, 6)
        for formula in (s_west_first, s_north_last, s_negative_first):
            assert average_adaptiveness_ratio(mesh, formula) > Fraction(1, 2)


class TestSection5:
    def test_pcube_36_shortest_paths_for_the_example(self):
        """'One of the 36 possible shortest paths is shown.'"""
        cube = Hypercube(10)
        src = cube.node_from_address_str("1011010100")
        dst = cube.node_from_address_str("0010111001")
        assert s_pcube(cube, src, dst) == 36

    def test_pcube_ratio_formula(self):
        """S_pcube / S_f = 1 / C(h, h1)."""
        cube = Hypercube(6)
        for src in (0b101010, 0b111000):
            for dst in (0b010101, 0b000111):
                if src == dst:
                    continue
                h = cube.hamming(src, dst)
                h1 = bin(src & ~dst).count("1")
                assert s_pcube(cube, src, dst) * math.comb(
                    h, h1
                ) == math.factorial(h)


class TestFigure1And4Dynamics:
    """The motivating deadlocks, reproduced live in the simulator."""

    def test_figure_1_scenario_deadlocks_without_turn_restrictions(self):
        mesh = Mesh2D(6, 6)
        anything_goes = TurnRestrictedMinimal(
            mesh, TurnModel.from_prohibited("none", 2, set())
        )
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=40_000,
            deadlock_threshold=1_500,
            seed=2,
        )
        sim = WormholeSimulator(anything_goes, UniformPattern(mesh), config)
        result = sim.run()
        assert result.deadlock
        assert detect_deadlock(sim).deadlocked

    def test_safe_two_turn_prohibitions_never_deadlock_in_simulation(self):
        """Spot-check: simulate a safe non-paper prohibition (east-last:
        both turns out of east banned) at overload — no deadlock."""
        from repro.core import Turn
        from repro.topology import EAST, NORTH, SOUTH

        mesh = Mesh2D(6, 6)
        model = TurnModel.from_prohibited(
            "east-last", 2, {Turn(EAST, NORTH), Turn(EAST, SOUTH)}
        )
        assert turn_set_is_deadlock_free(mesh, model)
        algorithm = TurnRestrictedMinimal(mesh, model)
        assert verify_algorithm(algorithm).deadlock_free
        config = SimulationConfig(
            offered_load=6.0,
            warmup_cycles=0,
            measure_cycles=10_000,
            deadlock_threshold=1_500,
            seed=2,
        )
        result = WormholeSimulator(
            algorithm, UniformPattern(mesh), config
        ).run()
        assert not result.deadlock


class TestMaximalAdaptivenessExhaustive:
    def test_phase_algorithms_equal_maximal_relation_exhaustively(self):
        """On a 4x4 mesh, every (node, dest) candidate set of the paper's
        three algorithms equals the maximal turn-restricted relation."""
        mesh = Mesh2D(4, 4)
        pairs = [
            (alg, TurnRestrictedMinimal(mesh, alg.turn_model()))
            for alg in mesh_algorithms(mesh)[1:]  # skip xy
        ]
        for algorithm, maximal in pairs:
            for src in mesh.nodes():
                for dst in mesh.nodes():
                    if src == dst:
                        continue
                    assert algorithm.candidates(src, dst) == maximal.candidates(
                        src, dst
                    ), (algorithm.name, mesh.coords(src), mesh.coords(dst))
                    counted = count_shortest_paths(
                        lambda a, b: maximal.candidates(a, b), mesh, src, dst
                    )
                    assert counted >= 1
