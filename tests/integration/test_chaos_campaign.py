"""Chaos campaigns: the supervision layer under deliberate sabotage.

A chaos campaign wraps real operating points in
:class:`~repro.analysis.chaos.ChaosPointSpec`, whose worker-side
execution deterministically crashes, hangs, or raises on a seeded
fraction of points.  These tests pin the resilience guarantees the CI
``chaos`` job enforces (docs/RESILIENCE.md):

* every healthy point of a chaotic ``keep_going`` campaign is
  bit-identical to a clean serial run of the underlying specs;
* every unhealthy point lands in the failure manifest with the cause
  its injected misbehaviour predicts;
* a campaign SIGKILLed mid-flight and resumed from its journal
  re-executes exactly the not-yet-journaled complement.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis import (
    CampaignJournal,
    ParallelSweepRunner,
    PointSpec,
    ResultCache,
    chaos_batch,
)
from repro.simulation import SimulationConfig

TINY = SimulationConfig(warmup_cycles=50, measure_cycles=200, seed=5)


def campaign_specs(n_points: int):
    """``n_points`` real (tiny) operating points across the four mesh
    algorithms and a ladder of offered loads."""
    algorithms = ("xy", "west-first", "north-last", "negative-first")
    loads = [0.2 + 0.05 * i for i in range((n_points + 3) // 4)]
    specs = [
        PointSpec("mesh:4x4", algorithm, "uniform", TINY.with_load(load))
        for load in loads
        for algorithm in algorithms
    ]
    return specs[:n_points]


@pytest.mark.slow
@pytest.mark.chaos
class TestChaosCampaign:
    def test_200_point_campaign_survives_10pct_chaos(self, tmp_path):
        """The acceptance campaign: >=200 points, ~10% injected
        failures, keep_going — healthy results bit-identical to a clean
        serial run, every casualty diagnosed in the manifest."""
        specs = chaos_batch(
            campaign_specs(200),
            chaos_seed=42,
            failure_rate=0.1,
            fail_attempts=10 ** 9,  # permanently sick: no retry escape
        )
        expected_modes = [spec.chaos_mode() for spec in specs]
        assert any(expected_modes), "chaos seed injected no failures"

        runner = ParallelSweepRunner(
            jobs=4,
            cache=None,
            keep_going=True,
            point_timeout=2.0,
        )
        report = runner.run_batch(specs)

        # Every unhealthy point is in the manifest with the right cause
        # (an injected hang surfaces as the supervisor's timeout kill).
        cause_of = {"crash": "crash", "hang": "timeout",
                    "exception": "exception"}
        expected_failures = {
            i: cause_of[mode]
            for i, mode in enumerate(expected_modes)
            if mode is not None
        }
        assert {f.index: f.cause for f in report.failures} == (
            expected_failures
        )
        assert len(expected_failures) >= 10  # ~10% of 200

        # Every healthy point is bit-identical to a clean serial run.
        for i, spec in enumerate(specs):
            if expected_modes[i] is None:
                assert report.results[i] == spec.clean().execute()
            else:
                assert report.results[i] is None

        # CI uploads the manifest as a build artifact.
        manifest_dir = os.environ.get("CHAOS_MANIFEST_DIR")
        if manifest_dir:
            manifest = os.path.join(manifest_dir, "chaos_manifest.jsonl")
            os.makedirs(manifest_dir, exist_ok=True)
            with open(manifest, "w", encoding="utf-8") as fh:
                fh.write("\n".join(report.manifest_lines()) + "\n")

    def test_retries_cure_transient_chaos(self):
        """fail_attempts=1 makes every chaotic point healthy on its
        second attempt, so with a retry budget the campaign completes
        with zero permanent failures — and still bit-identically."""
        specs = chaos_batch(
            campaign_specs(40),
            chaos_seed=7,
            failure_rate=0.2,
            fail_attempts=1,
        )
        modes = [spec.chaos_mode() for spec in specs]
        assert any(modes), "chaos seed injected no failures"
        runner = ParallelSweepRunner(
            jobs=4,
            cache=None,
            keep_going=True,
            point_timeout=2.0,
            max_point_retries=1,
            retry_backoff_base=0.01,
        )
        report = runner.run_batch(specs)
        assert report.ok
        assert runner.stats.retried == sum(1 for m in modes if m)
        for spec, result in zip(specs, report.results):
            assert result == spec.clean().execute()

    def test_sigkilled_campaign_resumes_from_the_journal(self, tmp_path):
        """SIGKILL a journaled campaign mid-flight; resuming re-executes
        exactly the complement of what the journal recorded."""
        specs = campaign_specs(40)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "campaign.jsonl"
        script = textwrap.dedent(
            """
            import sys
            from repro.analysis import ParallelSweepRunner, ResultCache
            sys.path.insert(0, sys.argv[1])
            import test_chaos_campaign as camp

            runner = ParallelSweepRunner(
                jobs=2,
                cache=ResultCache(sys.argv[2]),
                journal=sys.argv[3],
            )
            runner.run_points(camp.campaign_specs(40))
            runner.close()
            print("COMPLETED", flush=True)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                str(
                    os.path.join(
                        os.path.dirname(os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))
                        )),
                        "src",
                    )
                ),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-c", script,
                os.path.dirname(os.path.abspath(__file__)),
                str(cache_dir), str(journal_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Kill -9 once a few points are durably journaled (but well
        # before all 40 could plausibly finish being written).
        deadline = time.monotonic() + 60
        journaled = 0
        while time.monotonic() < deadline:
            if journal_path.exists():
                journaled = sum(
                    1 for r in CampaignJournal.read(journal_path)
                    if r.get("kind") == "point"
                )
                if journaled >= 4:
                    break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        out, err = proc.communicate(timeout=60)
        completed = b"COMPLETED" in out

        journaled_keys = {
            r["key"] for r in CampaignJournal.read(journal_path)
            if r.get("kind") == "point"
        }
        assert journaled_keys, (completed, err.decode()[-500:])
        all_keys = {spec.cache_key() for spec in specs}
        assert journaled_keys <= all_keys

        # force=True makes the accounting exact: a point the SIGKILL
        # caught between cache.put and the journal fsync is cached but
        # not journaled, and would otherwise surface as an ordinary
        # cache hit. Under force, only journaled points may be served
        # from the cache, so executed/cached counts are deterministic.
        resumed = ParallelSweepRunner(
            jobs=2,
            cache=ResultCache(cache_dir),
            force=True,
            journal=journal_path,
            resume=True,
        )
        results = resumed.run_points(specs)
        resumed.close()

        # Exactly the complement was re-executed; journaled points were
        # served from the cache the first run populated.
        assert resumed.stats.executed == len(all_keys - journaled_keys)
        assert resumed.stats.cached == len(journaled_keys)
        assert all(r is not None for r in results)
        for spec, result in zip(specs[:4], results[:4]):
            assert result == spec.execute()
        final = {
            r["key"] for r in CampaignJournal.read(journal_path)
            if r.get("kind") == "point"
        }
        assert final == all_keys


@pytest.mark.chaos
class TestChaosDeterminism:
    """Fast chaos checks that run in the default (non-slow) suite."""

    def test_chaos_mode_is_a_pure_function_of_the_seed(self):
        specs = chaos_batch(campaign_specs(60), chaos_seed=3)
        assert [s.chaos_mode() for s in specs] == [
            s.chaos_mode() for s in specs
        ]
        reseeded = chaos_batch(campaign_specs(60), chaos_seed=4)
        assert [s.chaos_mode() for s in specs] != [
            s.chaos_mode() for s in reseeded
        ]

    def test_chaos_knobs_enter_the_cache_key(self):
        plain = campaign_specs(1)[0]
        chaotic = chaos_batch([plain], chaos_seed=1)[0]
        other = chaos_batch([plain], chaos_seed=2)[0]
        keys = {plain.cache_key(), chaotic.cache_key(), other.cache_key()}
        assert len(keys) == 3

    def test_manifest_lines_are_json(self):
        specs = chaos_batch(
            campaign_specs(20),
            chaos_seed=11,
            failure_rate=0.5,
            fail_attempts=10 ** 9,
        )
        exceptional = [
            s for s in specs if s.chaos_mode() == "exception"
        ]
        assert exceptional, "seed 11 should inject at least one raise"
        runner = ParallelSweepRunner(jobs=2, cache=None, keep_going=True)
        report = runner.run_batch(exceptional[:2])
        assert not report.ok
        for line in report.manifest_lines():
            record = json.loads(line)
            assert record["cause"] == "exception"
            assert "ChaosError" in record["traceback"]
