"""End-to-end integration: public API, full simulation pipelines, and
cross-layer consistency."""

import pytest

import repro
from repro import (
    Hypercube,
    Mesh2D,
    SimulationConfig,
    UniformPattern,
    WormholeSimulator,
    make_algorithm,
    verify_algorithm,
)
from repro.routing import hypercube_algorithms, mesh_algorithms
from repro.traffic import HypercubeTransposePattern, MeshTransposePattern


class TestPublicAPI:
    def test_quickstart_from_the_package_docstring(self):
        mesh = repro.Mesh2D(16, 16)
        algorithm = repro.WestFirst(mesh)
        assert repro.verify_algorithm(algorithm).deadlock_free
        sim = repro.WormholeSimulator(
            algorithm,
            repro.UniformPattern(mesh),
            repro.SimulationConfig(
                offered_load=1.0, warmup_cycles=200, measure_cycles=800
            ),
        )
        result = sim.run()
        assert result.avg_latency_us is not None
        assert result.throughput_flits_per_us > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__


class TestCrossLayerConsistency:
    def test_simulated_hops_match_pattern_average(self):
        """The simulator's measured mean hop count equals the workload's
        analytic mean (minimal routing cannot do otherwise)."""
        mesh = Mesh2D(16, 16)
        pattern = MeshTransposePattern(mesh)
        config = SimulationConfig(
            offered_load=0.3, warmup_cycles=500, measure_cycles=4_000, seed=11
        )
        result = WormholeSimulator(
            make_algorithm("xy", mesh), pattern, config
        ).run()
        assert result.avg_hops == pytest.approx(
            float(pattern.average_hops()), rel=0.05
        )

    def test_no_misroutes_under_minimal_routing(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=200, measure_cycles=2_000, seed=3
        )
        for algorithm in mesh_algorithms(mesh):
            result = WormholeSimulator(
                algorithm, UniformPattern(mesh), config
            ).run()
            assert result.total_misroutes == 0, algorithm.name

    def test_every_simulated_algorithm_is_verified_deadlock_free(self):
        """The lineup used in the figures passes the CDG check."""
        for algorithm in mesh_algorithms(Mesh2D(5, 5)) + hypercube_algorithms(
            Hypercube(4)
        ):
            assert verify_algorithm(algorithm).deadlock_free, algorithm.name


class TestLongRunStability:
    @pytest.mark.parametrize("name", ["xy", "west-first", "negative-first"])
    def test_overload_runs_complete_without_deadlock(self, name):
        """Far past saturation, turn-model routing keeps making progress
        (the watchdog never fires)."""
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=8_000,
            deadlock_threshold=1_500,
            seed=13,
        )
        result = WormholeSimulator(
            make_algorithm(name, mesh), UniformPattern(mesh), config
        ).run()
        assert not result.deadlock
        assert result.delivered_packets > 0

    def test_cube_transpose_overload_stable(self):
        cube = Hypercube(6)
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=6_000,
            deadlock_threshold=1_500,
            seed=13,
        )
        for algorithm in hypercube_algorithms(cube):
            result = WormholeSimulator(
                algorithm, HypercubeTransposePattern(cube), config
            ).run()
            assert not result.deadlock, algorithm.name
