"""Tests for n-dimensional meshes and the 2D specialisation."""

import pytest

from repro.topology import Direction, EAST, Mesh, Mesh2D, NORTH, SOUTH, WEST, mesh


class TestMesh2D:
    def test_node_count(self):
        assert Mesh2D(16, 16).num_nodes == 256
        assert Mesh2D(4, 3).num_nodes == 12

    def test_square_default(self):
        m = Mesh2D(5)
        assert m.dims == (5, 5)

    def test_coords_roundtrip(self):
        m = Mesh2D(7, 3)
        for node in m.nodes():
            assert m.node_at(m.coords(node)) == node

    def test_id_layout_x_fastest(self):
        m = Mesh2D(4, 4)
        assert m.node_xy(0, 0) == 0
        assert m.node_xy(1, 0) == 1
        assert m.node_xy(0, 1) == 4
        assert m.xy(5) == (1, 1)

    def test_neighbors_interior(self):
        m = Mesh2D(4, 4)
        node = m.node_xy(1, 1)
        assert m.neighbor(node, EAST) == m.node_xy(2, 1)
        assert m.neighbor(node, WEST) == m.node_xy(0, 1)
        assert m.neighbor(node, NORTH) == m.node_xy(1, 2)
        assert m.neighbor(node, SOUTH) == m.node_xy(1, 0)

    def test_edges_have_no_neighbor(self):
        m = Mesh2D(4, 4)
        assert m.neighbor(m.node_xy(0, 0), WEST) is None
        assert m.neighbor(m.node_xy(0, 0), SOUTH) is None
        assert m.neighbor(m.node_xy(3, 3), EAST) is None
        assert m.neighbor(m.node_xy(3, 3), NORTH) is None

    def test_channel_count(self):
        # m x n mesh: (m-1)*n horizontal pairs + m*(n-1) vertical pairs,
        # two unidirectional channels each.
        m = Mesh2D(16, 16)
        assert m.num_channels() == 2 * (15 * 16 + 16 * 15)

    def test_channels_never_wraparound(self):
        assert not any(c.wraparound for c in Mesh2D(3, 3).channels())

    def test_distance_is_manhattan(self):
        m = Mesh2D(8, 8)
        assert m.distance(m.node_xy(0, 0), m.node_xy(7, 7)) == 14
        assert m.distance(m.node_xy(3, 4), m.node_xy(3, 4)) == 0
        assert m.distance(m.node_xy(2, 5), m.node_xy(5, 1)) == 7

    def test_productive_directions(self):
        m = Mesh2D(8, 8)
        src, dst = m.node_xy(4, 4), m.node_xy(2, 6)
        assert m.productive_directions(src, dst) == [WEST, NORTH]
        assert m.productive_directions(src, src) == []

    def test_channel_lookup(self):
        m = Mesh2D(4, 4)
        ch = m.channel(m.node_xy(1, 1), EAST)
        assert ch is not None
        assert ch.dst == m.node_xy(2, 1)
        assert m.channel(m.node_xy(3, 1), EAST) is None


class TestMeshND:
    def test_3d_neighbor_arithmetic(self):
        m = Mesh((3, 4, 5))
        node = m.node_at((1, 2, 3))
        assert m.coords(m.neighbor(node, Direction(2, +1))) == (1, 2, 4)
        assert m.coords(m.neighbor(node, Direction(0, -1))) == (0, 2, 3)

    def test_boundary_in_each_dimension(self):
        m = Mesh((3, 3, 3))
        corner = m.node_at((0, 0, 0))
        for dim in range(3):
            assert m.neighbor(corner, Direction(dim, -1)) is None
            assert m.neighbor(corner, Direction(dim, +1)) is not None

    def test_channel_count_formula(self):
        # For dims (k0..kn-1): channels = 2 * sum_i (k_i - 1) * prod_{j!=i} k_j
        m = Mesh((3, 4, 5))
        expected = 2 * ((3 - 1) * 20 + (4 - 1) * 15 + (5 - 1) * 12)
        assert m.num_channels() == expected

    def test_distance_multidim(self):
        m = Mesh((5, 5, 5))
        assert m.distance(m.node_at((0, 0, 0)), m.node_at((4, 3, 2))) == 9

    def test_degree_bounds(self):
        # Every node has between n and 2n neighbours (Section 1).
        m = Mesh((3, 3, 3))
        for node in m.nodes():
            degree = sum(
                1 for d in m.directions() if m.neighbor(node, d) is not None
            )
            assert 3 <= degree <= 6

    def test_dimension_length_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            Mesh((1, 4))
        with pytest.raises(ValueError):
            Mesh(())

    def test_out_of_range_direction_rejected(self):
        m = Mesh((3, 3))
        with pytest.raises(ValueError):
            m.neighbor(0, Direction(2, +1))

    def test_mesh_factory_specialises_2d(self):
        assert isinstance(mesh((4, 4)), Mesh2D)
        assert not isinstance(mesh((4, 4, 4)), Mesh2D)

    def test_coords_out_of_range(self):
        m = Mesh((3, 3))
        with pytest.raises(ValueError):
            m.coords(9)
        with pytest.raises(ValueError):
            m.node_at((3, 0))
        with pytest.raises(ValueError):
            m.node_at((0, 0, 0))
