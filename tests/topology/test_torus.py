"""Tests for k-ary n-cubes (tori)."""

import pytest

from repro.topology import EAST, KAryNCube, WEST


class TestKAryNCube:
    def test_node_count(self):
        assert KAryNCube(4, 2).num_nodes == 16
        assert KAryNCube(3, 3).num_nodes == 27

    def test_every_node_has_2n_neighbors_when_k_gt_2(self):
        t = KAryNCube(4, 2)
        for node in t.nodes():
            degree = sum(
                1 for d in t.directions() if t.neighbor(node, d) is not None
            )
            assert degree == 4

    def test_wraparound_neighbors(self):
        t = KAryNCube(5, 2)
        west_edge = t.node_at((0, 2))
        east_edge = t.node_at((4, 2))
        assert t.neighbor(west_edge, WEST) == east_edge
        assert t.neighbor(east_edge, EAST) == west_edge

    def test_wraparound_flags(self):
        t = KAryNCube(5, 2)
        wrap = t.wraparound_channels()
        mesh_chs = t.mesh_channels()
        # 2 wraparound channels per ring, k rings... per dimension: k rings
        # of the other dimension, 2 directions.
        assert len(wrap) == 2 * 5 * 2
        assert len(wrap) + len(mesh_chs) == t.num_channels()
        assert all(c.wraparound for c in wrap)
        assert all(not c.wraparound for c in mesh_chs)

    def test_channel_count_is_2n_per_node(self):
        t = KAryNCube(5, 2)
        assert t.num_channels() == t.num_nodes * 4

    def test_offset_uses_shortest_way_around(self):
        t = KAryNCube(8, 1)
        assert t.offset(t.node_at((0,)), t.node_at((3,)), 0) == 3
        assert t.offset(t.node_at((0,)), t.node_at((5,)), 0) == -3
        assert t.offset(t.node_at((0,)), t.node_at((7,)), 0) == -1

    def test_offset_tie_breaks_positive_for_even_k(self):
        t = KAryNCube(8, 1)
        assert t.offset(t.node_at((0,)), t.node_at((4,)), 0) == 4

    def test_distance_with_wraparound(self):
        t = KAryNCube(8, 2)
        assert t.distance(t.node_at((0, 0)), t.node_at((7, 7))) == 2
        assert t.distance(t.node_at((0, 0)), t.node_at((4, 4))) == 8

    def test_radix_two_matches_hypercube_degree(self):
        t = KAryNCube(2, 4)
        for node in t.nodes():
            degree = sum(
                1 for d in t.directions() if t.neighbor(node, d) is not None
            )
            assert degree == 4  # n neighbours when k == 2 (Section 1)

    def test_radix_two_offsets_are_plain_differences(self):
        t = KAryNCube(2, 2)
        assert t.offset(t.node_at((0, 0)), t.node_at((1, 1)), 0) == 1
        assert t.offset(t.node_at((1, 1)), t.node_at((0, 0)), 0) == -1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KAryNCube(1, 2)
        with pytest.raises(ValueError):
            KAryNCube(4, 0)

    def test_productive_directions_wrap(self):
        t = KAryNCube(8, 2)
        src, dst = t.node_at((7, 0)), t.node_at((1, 0))
        # Shortest way is eastward across the wraparound.
        assert t.productive_directions(src, dst) == [EAST]
