"""Tests for the binary hypercube."""

import pytest

from repro.topology import Direction, Hypercube


class TestHypercube:
    def test_node_count(self):
        assert Hypercube(8).num_nodes == 256
        assert Hypercube(3).num_nodes == 8

    def test_every_node_has_n_neighbors(self):
        h = Hypercube(4)
        for node in h.nodes():
            degree = sum(
                1 for d in h.directions() if h.neighbor(node, d) is not None
            )
            assert degree == 4

    def test_neighbor_flips_one_bit(self):
        h = Hypercube(5)
        for node in h.nodes():
            for d in h.directions():
                nbr = h.neighbor(node, d)
                if nbr is not None:
                    assert bin(node ^ nbr).count("1") == 1
                    assert (node ^ nbr) == 1 << d.dim

    def test_direction_sign_encodes_bit_transition(self):
        h = Hypercube(3)
        # From a 0 bit only the positive direction exists; from a 1 bit
        # only the negative one.
        assert h.neighbor(0b000, Direction(1, +1)) == 0b010
        assert h.neighbor(0b000, Direction(1, -1)) is None
        assert h.neighbor(0b010, Direction(1, -1)) == 0b000
        assert h.neighbor(0b010, Direction(1, +1)) is None

    def test_distance_is_hamming(self):
        h = Hypercube(8)
        assert h.distance(0b10110101, 0b00101110) == h.hamming(
            0b10110101, 0b00101110
        )
        assert h.distance(0, 255) == 8

    def test_bits_roundtrip(self):
        h = Hypercube(6)
        for node in h.nodes():
            assert h.node_from_bits(h.bits(node)) == node

    def test_bits_are_little_endian_coordinates(self):
        h = Hypercube(4)
        assert h.bits(0b0001) == (1, 0, 0, 0)
        assert h.bits(0b1000) == (0, 0, 0, 1)

    def test_address_str_matches_paper_notation(self):
        h = Hypercube(10)
        node = h.node_from_address_str("1011010100")
        assert h.address_str(node) == "1011010100"
        # Flipping dimension 2 changes the third character from the right,
        # as in the Section 5 table.
        flipped = node ^ (1 << 2)
        assert h.address_str(flipped) == "1011010000"

    def test_address_str_validation(self):
        h = Hypercube(4)
        with pytest.raises(ValueError):
            h.node_from_address_str("10101")
        with pytest.raises(ValueError):
            h.node_from_address_str("10x1")

    def test_differing_dimensions(self):
        h = Hypercube(8)
        assert h.differing_dimensions(0b1010, 0b0110) == [2, 3]
        assert h.differing_dimensions(5, 5) == []

    def test_channel_count(self):
        h = Hypercube(8)
        # n * 2^n unidirectional channels.
        assert h.num_channels() == 8 * 256

    def test_bits_validation(self):
        h = Hypercube(3)
        with pytest.raises(ValueError):
            h.node_from_bits((0, 1))
        with pytest.raises(ValueError):
            h.node_from_bits((0, 1, 2))
