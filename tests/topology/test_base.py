"""Tests for the shared topology abstractions (Direction, Channel, ids)."""

import pytest

from repro.topology import (
    COMPASS_NAMES,
    Direction,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    all_directions,
)
from repro.topology.base import Channel


class TestDirection:
    def test_compass_constants_match_paper_conventions(self):
        assert WEST == Direction(0, -1)
        assert EAST == Direction(0, +1)
        assert SOUTH == Direction(1, -1)
        assert NORTH == Direction(1, +1)

    def test_compass_names(self):
        assert COMPASS_NAMES[WEST] == "west"
        assert COMPASS_NAMES[NORTH] == "north"

    def test_opposite_is_involution(self):
        for d in all_directions(4):
            assert d.opposite.opposite == d
            assert d.opposite.dim == d.dim
            assert d.opposite.sign == -d.sign

    def test_sign_predicates(self):
        assert WEST.is_negative and not WEST.is_positive
        assert EAST.is_positive and not EAST.is_negative

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Direction(0, 0)
        with pytest.raises(ValueError):
            Direction(0, 2)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            Direction(-1, 1)

    def test_ordering_is_dim_then_sign(self):
        dirs = sorted([NORTH, EAST, WEST, SOUTH])
        assert dirs == [WEST, EAST, SOUTH, NORTH]

    def test_all_directions_count(self):
        for n in range(1, 6):
            assert len(all_directions(n)) == 2 * n

    def test_direction_is_hashable_and_interns_equal(self):
        assert len({Direction(2, 1), Direction(2, 1)}) == 1

    def test_repr(self):
        assert repr(WEST) == "-d0"
        assert repr(NORTH) == "+d1"


class TestChannel:
    def test_channel_fields(self):
        ch = Channel(src=3, dst=4, direction=EAST)
        assert ch.src == 3 and ch.dst == 4
        assert not ch.wraparound

    def test_channel_hashable(self):
        a = Channel(0, 1, EAST)
        b = Channel(0, 1, EAST)
        assert a == b and len({a, b}) == 1

    def test_wraparound_flag_distinguishes(self):
        a = Channel(0, 1, EAST)
        b = Channel(0, 1, EAST, wraparound=True)
        assert a != b
