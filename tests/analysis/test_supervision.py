"""Tests for the supervised pool, campaign journal, and failure records.

The toy specs here script their own misbehaviour per attempt, so every
supervision path — crash detection, hang kill, exception capture, retry
recovery, fail-fast abort, keep-going manifests — is exercised cheaply
and deterministically, without real simulations.
"""

import json
import os
import pickle
import time
from dataclasses import dataclass, field

import pytest

from repro.analysis import (
    BatchReport,
    CampaignJournal,
    ParallelSweepRunner,
    PointExecutionError,
    PointFailure,
    ResultCache,
    SupervisedPool,
)
from repro.analysis.supervision import JOURNAL_SCHEMA


@dataclass(frozen=True)
class ScriptSpec:
    """A spec whose attempts follow a script.

    ``script[a - 1]`` is attempt ``a``'s behaviour — ``"ok"``,
    ``"crash"`` (``os._exit``), ``"hang"`` (sleep far past any test
    timeout), or ``"raise"``; attempts beyond the script succeed.
    """

    value: int
    script: tuple = ()

    def behavior(self, attempt: int) -> str:
        if 1 <= attempt <= len(self.script):
            return self.script[attempt - 1]
        return "ok"

    def execute_attempt(self, attempt: int):
        behavior = self.behavior(attempt)
        if behavior == "crash":
            os._exit(7)
        if behavior == "hang":
            time.sleep(300)
        if behavior == "raise":
            raise RuntimeError(f"scripted failure #{self.value}")
        return ("result", self.value, attempt)

    def execute(self):
        return self.execute_attempt(1)

    def to_dict(self):
        return {"value": self.value, "script": list(self.script)}

    def cache_key(self) -> str:
        return f"script-{self.value}-{'-'.join(self.script) or 'ok'}"


def run_pool(specs, pool=None, keep_going=False, **pool_kwargs):
    """Run ScriptSpecs through a SupervisedPool, collecting outcomes."""
    if pool is None:
        pool = SupervisedPool(workers=2, **pool_kwargs)
    results = {}
    retries = []

    def on_point(index, result, attempts, duration):
        results[index] = (result, attempts, duration)

    failures = pool.run(
        list(enumerate(specs)),
        keep_going=keep_going,
        on_point=on_point,
        on_retry=lambda i, cause, attempt: retries.append((i, cause, attempt)),
    )
    return results, failures, retries


class TestSupervisedPool:
    def test_all_ok_batch_completes(self):
        specs = [ScriptSpec(i) for i in range(5)]
        results, failures, retries = run_pool(specs)
        assert failures == [] and retries == []
        assert {i: r[0] for i, r in results.items()} == {
            i: ("result", i, 1) for i in range(5)
        }

    def test_crash_is_detected_and_retried(self):
        specs = [ScriptSpec(0), ScriptSpec(1, ("crash",)), ScriptSpec(2)]
        results, failures, retries = run_pool(
            specs, max_retries=1, retry_backoff_base=0.01
        )
        assert failures == []
        assert retries == [(1, "crash", 1)]
        result, attempts, _ = results[1]
        assert result == ("result", 1, 2) and attempts == 2

    def test_exception_failure_carries_traceback(self):
        specs = [ScriptSpec(0, ("raise",))]
        _, failures, _ = run_pool(specs, keep_going=True)
        (failure,) = failures
        assert failure.cause == "exception"
        assert failure.attempts == 1
        assert "scripted failure #0" in failure.message
        assert "RuntimeError" in failure.traceback

    def test_hung_worker_is_killed_as_timeout(self):
        specs = [ScriptSpec(0), ScriptSpec(1, ("hang",))]
        started = time.monotonic()
        results, failures, _ = run_pool(
            specs, keep_going=True, point_timeout=1.0
        )
        assert time.monotonic() - started < 60
        assert 0 in results
        (failure,) = failures
        assert failure.index == 1 and failure.cause == "timeout"
        assert "wall-clock" in failure.message

    def test_fail_fast_raises_point_execution_error(self):
        specs = [ScriptSpec(0), ScriptSpec(1, ("crash",)), ScriptSpec(2)]
        with pytest.raises(PointExecutionError) as excinfo:
            run_pool(specs)
        assert excinfo.value.failure.cause == "crash"
        assert excinfo.value.failure.index == 1

    def test_keep_going_runs_everything_and_sorts_failures(self):
        specs = [
            ScriptSpec(0, ("raise", "raise")),
            ScriptSpec(1),
            ScriptSpec(2, ("crash", "crash")),
            ScriptSpec(3),
        ]
        results, failures, _ = run_pool(
            specs, keep_going=True, max_retries=1, retry_backoff_base=0.01
        )
        assert sorted(results) == [1, 3]
        assert [f.index for f in failures] == [0, 2]
        assert [f.cause for f in failures] == ["exception", "crash"]
        assert all(f.attempts == 2 for f in failures)

    def test_recovery_after_mixed_failure_script(self):
        # crash, then raise, then succeed: two retries needed.
        specs = [ScriptSpec(0, ("crash", "raise"))]
        results, failures, retries = run_pool(
            specs, max_retries=2, retry_backoff_base=0.01
        )
        assert failures == []
        assert [cause for _, cause, _ in retries] == ["crash", "exception"]
        assert results[0][0] == ("result", 0, 3)

    def test_backoff_is_bounded_exponential(self):
        pool = SupervisedPool(
            workers=1, retry_backoff_base=0.5, retry_backoff_cap=4.0
        )
        assert [pool.backoff(a) for a in (2, 3, 4, 5, 6)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            4.0,
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SupervisedPool(workers=0)
        with pytest.raises(ValueError):
            SupervisedPool(workers=1, point_timeout=0)
        with pytest.raises(ValueError):
            SupervisedPool(workers=1, max_retries=-1)
        with pytest.raises(ValueError):
            SupervisedPool(workers=1, retry_backoff_base=0)

    def test_results_do_not_depend_on_worker_count(self):
        specs = [ScriptSpec(i) for i in range(8)]
        single, _, _ = run_pool(specs, pool=SupervisedPool(workers=1))
        many, _, _ = run_pool(specs, pool=SupervisedPool(workers=4))
        assert {i: r[0] for i, r in single.items()} == {
            i: r[0] for i, r in many.items()
        }


class TestPointFailure:
    def test_describe_and_to_dict(self):
        failure = PointFailure(
            index=3,
            spec=ScriptSpec(3, ("raise",)),
            cause="exception",
            attempts=2,
            duration=0.5,
            message="RuntimeError: boom",
            traceback="Traceback ...",
        )
        text = failure.describe()
        assert "point #3" in text and "exception" in text
        assert "2 attempt(s)" in text
        payload = failure.to_dict()
        assert payload["spec"] == {"value": 3, "script": ["raise"]}
        assert payload["cause"] == "exception"
        json.dumps(payload)  # JSONL-serializable as-is

    def test_point_execution_error_carries_failure(self):
        failure = PointFailure(
            index=0, spec=None, cause="crash", attempts=1, duration=0.0,
            message="worker exited with code 7 mid-point",
        )
        error = PointExecutionError(failure)
        assert error.failure is failure
        assert "crash" in str(error)


class TestBatchReport:
    def test_complete_report(self):
        report = BatchReport(results=[1, 2, 3])
        assert report.ok and report.completed == 3
        assert report.require_complete() == [1, 2, 3]
        assert report.manifest_lines() == []

    def test_failed_report(self):
        failure = PointFailure(
            index=1, spec=ScriptSpec(1), cause="timeout", attempts=3,
            duration=2.0, message="limit",
        )
        report = BatchReport(results=[1, None, 3], failures=[failure])
        assert not report.ok and report.completed == 2
        with pytest.raises(PointExecutionError):
            report.require_complete()
        (line,) = report.manifest_lines()
        assert json.loads(line)["cause"] == "timeout"


class TestCampaignJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_point("aa", attempts=1, duration=0.5)
            journal.record_point("bb", attempts=2, duration=1.0, cached=True)
        records = list(CampaignJournal.read(path))
        assert records[0]["kind"] == "campaign"
        assert records[0]["schema"] == JOURNAL_SCHEMA
        assert [r["key"] for r in records[1:]] == ["aa", "bb"]

        resumed = CampaignJournal(path, resume=True)
        assert resumed.done("aa") and resumed.done("bb")
        assert not resumed.done("cc")
        assert len(resumed) == 2 and resumed.done_keys == {"aa", "bb"}
        resumed.close()

    def test_record_point_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_point("aa")
            journal.record_point("aa")
        point_lines = [
            r for r in CampaignJournal.read(path) if r["kind"] == "point"
        ]
        assert len(point_lines) == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_point("aa")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "point", "key": "tr')  # SIGKILL mid-write
        journal = CampaignJournal(path, resume=True)
        assert journal.done("aa")
        assert not journal.done("tr")
        assert journal.torn_lines == 1
        # Appending after a torn line still yields parseable records.
        journal.record_point("bb")
        journal.close()
        resumed = CampaignJournal(path, resume=True)
        assert resumed.done_keys == {"aa", "bb"}
        resumed.close()

    def test_without_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_point("aa")
        with CampaignJournal(path, resume=False) as journal:
            assert not journal.done("aa")
        keys = [
            r["key"] for r in CampaignJournal.read(path)
            if r["kind"] == "point"
        ]
        assert keys == []

    def test_records_failures(self, tmp_path):
        path = tmp_path / "j.jsonl"
        failure = PointFailure(
            index=0, spec=ScriptSpec(0), cause="crash", attempts=1,
            duration=0.1, message="gone",
        )
        with CampaignJournal(path) as journal:
            journal.record_failure(failure)
        (record,) = [
            r for r in CampaignJournal.read(path) if r["kind"] == "failure"
        ]
        assert record["cause"] == "crash" and record["index"] == 0

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record_point("aa")
        assert path.exists()


class TestRunnerSupervision:
    """ParallelSweepRunner routing batches through the supervised pool.

    ScriptSpec quacks enough like a PointSpec (``execute``, ``to_dict``,
    ``cache_key``) to drive every supervision path without simulating.
    """

    def test_keep_going_leaves_holes_and_manifest(self):
        runner = ParallelSweepRunner(jobs=2, cache=None, keep_going=True)
        specs = [
            ScriptSpec(0),
            ScriptSpec(1, ("crash",)),
            ScriptSpec(2),
            ScriptSpec(3, ("raise",)),
        ]
        report = runner.run_batch(specs)
        assert report.results[0] == ("result", 0, 1)
        assert report.results[1] is None
        assert report.results[2] == ("result", 2, 1)
        assert report.results[3] is None
        assert [f.index for f in report.failures] == [1, 3]
        assert [f.cause for f in report.failures] == ["crash", "exception"]
        assert runner.stats.failed == 2
        # runner.failures accumulates in completion order (crash
        # detection can lag a fast exception); the report is index-sorted.
        assert sorted(
            runner.failures, key=lambda f: f.index
        ) == report.failures

    def test_fail_fast_raises_through_runner(self):
        runner = ParallelSweepRunner(jobs=2, cache=None, max_point_retries=0)
        with pytest.raises(PointExecutionError):
            runner.run_points([ScriptSpec(0), ScriptSpec(1, ("raise",))])
        assert runner.stats.failed == 1
        # Wall-clock accounting committed despite the abort.
        assert runner.stats.wall_seconds > 0

    def test_retry_recovers_and_is_counted(self):
        runner = ParallelSweepRunner(
            jobs=2,
            cache=None,
            max_point_retries=2,
            retry_backoff_base=0.01,
        )
        results = runner.run_points(
            [ScriptSpec(0, ("crash",)), ScriptSpec(1, ("raise", "raise"))]
        )
        assert results == [("result", 0, 2), ("result", 1, 3)]
        assert runner.stats.retried == 3
        assert runner.stats.failed == 0
        assert "retried" in runner.stats.summary()

    def test_journal_checkpoints_and_resume_skips(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "campaign.jsonl"
        specs = [ScriptSpec(i) for i in range(4)]

        first = ParallelSweepRunner(
            jobs=2, cache=cache, journal=journal_path
        )
        results = first.run_points(specs)
        first.close()
        assert first.stats.executed == 4
        done = {
            r["key"] for r in CampaignJournal.read(journal_path)
            if r["kind"] == "point"
        }
        assert done == {spec.cache_key() for spec in specs}

        # Resume (even with force=True) re-executes nothing.
        second = ParallelSweepRunner(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            force=True,
            journal=journal_path,
            resume=True,
        )
        resumed = second.run_points(specs)
        second.close()
        assert second.stats.executed == 0
        assert second.stats.cached == 4
        assert resumed == results

    def test_resume_executes_only_the_complement(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "campaign.jsonl"
        specs = [ScriptSpec(i) for i in range(6)]

        first = ParallelSweepRunner(
            jobs=2, cache=cache, journal=journal_path
        )
        first.run_points(specs[:2])  # the campaign dies after 2 points
        first.close()

        second = ParallelSweepRunner(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            journal=journal_path,
            resume=True,
        )
        results = second.run_points(specs)
        second.close()
        assert second.stats.executed == 4
        assert second.stats.cached == 2
        assert results == [("result", i, 1) for i in range(6)]

    def test_resume_requires_journal_and_cache(self, tmp_path):
        with pytest.raises(ValueError):
            ParallelSweepRunner(jobs=1, resume=True)
        with pytest.raises(ValueError):
            ParallelSweepRunner(
                jobs=1,
                cache=None,
                journal=tmp_path / "j.jsonl",
                resume=True,
            )
        # Neither error may leave a journal file behind.
        assert not (tmp_path / "j.jsonl").exists()

    def test_unsupervised_default_stays_inline(self):
        """No supervision knob -> jobs=1 batches never fork workers."""
        runner = ParallelSweepRunner(jobs=1, cache=None)
        assert not runner.supervised
        pid_spec = PidSpec()
        (result,) = runner.run_points([pid_spec])
        assert result == os.getpid()

    def test_supervision_forces_worker_even_for_jobs_1(self):
        runner = ParallelSweepRunner(jobs=1, cache=None, keep_going=True)
        assert runner.supervised
        (result,) = runner.run_points([PidSpec()])
        assert result != os.getpid()

    def test_progress_callback_raising_never_loses_the_point(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelSweepRunner(jobs=1, cache=cache)
        spec = ScriptSpec(0)
        with pytest.raises(RuntimeError):
            runner.run_points(
                [spec], progress=lambda r: (_ for _ in ()).throw(
                    RuntimeError("observer broke")
                )
            )
        # The completed point was counted and cached before the callback.
        assert runner.stats.executed == 1
        assert runner.stats.wall_seconds > 0
        assert cache.get(spec) == ("result", 0, 1)


@dataclass(frozen=True)
class PidSpec:
    """Reports which process executed it."""

    marker: int = 0
    extra: tuple = field(default_factory=tuple)

    def execute(self):
        return os.getpid()

    def to_dict(self):
        return {"marker": self.marker}

    def cache_key(self) -> str:
        return f"pid-{self.marker}"


class TestScriptSpecPlumbing:
    def test_script_spec_pickles(self):
        spec = ScriptSpec(3, ("crash", "raise"))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_behavior_past_script_is_ok(self):
        spec = ScriptSpec(0, ("crash",))
        assert spec.behavior(1) == "crash"
        assert spec.behavior(2) == "ok"
