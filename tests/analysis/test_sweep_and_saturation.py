"""Tests for the sweep and saturation harness (small, fast runs)."""

import pytest

from repro.analysis import (
    SweepSeries,
    adaptive_vs_nonadaptive,
    compare_algorithms,
    find_saturation,
    format_figure,
    format_saturation_points,
    format_saturation_summary,
    paper_hop_counts,
    run_sweep,
)
from repro.routing import WestFirst, XY
from repro.simulation import SimulationConfig
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


FAST = SimulationConfig(warmup_cycles=200, measure_cycles=800, seed=1)


class TestSweep:
    def test_run_sweep_collects_one_result_per_load(self):
        mesh = Mesh2D(6, 6)
        series = run_sweep(
            XY(mesh), UniformPattern(mesh), [0.2, 0.5], FAST
        )
        assert len(series.results) == 2
        assert [r.offered_load for r in series.results] == [0.2, 0.5]
        assert series.algorithm == "xy"

    def test_points_and_rows(self):
        mesh = Mesh2D(6, 6)
        series = run_sweep(XY(mesh), UniformPattern(mesh), [0.3], FAST)
        (thr, lat), = series.points()
        assert thr >= 0
        rows = series.rows()
        assert any("xy" in r for r in rows)

    def test_rows_distinguish_close_low_loads(self):
        # Regression: a one-decimal offered-load column collapsed 0.02
        # and 0.04 flits/us/node into identical rows on small networks.
        mesh = Mesh2D(4, 4)
        series = run_sweep(
            XY(mesh), UniformPattern(mesh), [0.002, 0.004], FAST
        )
        offered_cells = [
            row.split()[0] for row in series.rows()[1:]
        ]
        assert len(set(offered_cells)) == 2, (
            f"rows collapsed distinct offered loads: {offered_cells}"
        )

    def test_max_sustainable_picks_sustainable_points_only(self):
        results = run_sweep(
            XY(Mesh2D(5, 5)), UniformPattern(Mesh2D(5, 5)), [0.2], FAST
        ).results
        series = SweepSeries("xy", "uniform", results)
        assert series.max_sustainable_throughput() >= 0

    def test_compare_algorithms_builds_per_algorithm_series(self):
        mesh = Mesh2D(5, 5)
        series = compare_algorithms(
            [XY(mesh), WestFirst(mesh)],
            lambda topo: UniformPattern(topo),
            [0.3],
            FAST,
        )
        assert [s.algorithm for s in series] == ["xy", "west-first"]

    def test_progress_callback_invoked(self):
        mesh = Mesh2D(5, 5)
        seen = []
        run_sweep(
            XY(mesh), UniformPattern(mesh), [0.2, 0.4], FAST,
            progress=seen.append,
        )
        assert len(seen) == 2


class TestSaturation:
    def test_bisection_brackets_the_knee(self):
        mesh = Mesh2D(6, 6)
        point = find_saturation(
            XY(mesh),
            UniformPattern(mesh),
            FAST,
            low=0.0,
            high=16.0,
            iterations=4,
        )
        assert 0.0 < point.max_sustainable_load < 16.0
        assert point.probes >= 4

    def test_sustainable_ceiling_is_reported(self):
        mesh = Mesh2D(4, 4)
        point = find_saturation(
            XY(mesh),
            UniformPattern(mesh),
            FAST,
            low=0.0,
            high=0.01,  # trivially sustainable
            iterations=2,
        )
        assert point.max_sustainable_load >= 0.01


class TestClaimsHelpers:
    def test_adaptive_vs_nonadaptive_ratio(self):
        a = SweepSeries("xy", "transpose", [])
        b = SweepSeries("west-first", "transpose", [])
        a.max_sustainable_throughput = lambda: 100.0  # noqa: E731
        b.max_sustainable_throughput = lambda: 180.0  # noqa: E731
        ratio = adaptive_vs_nonadaptive([a, b])
        assert ratio.ratio == pytest.approx(1.8)
        assert ratio.best_adaptive == "west-first"

    def test_adaptive_vs_nonadaptive_requires_baseline(self):
        with pytest.raises(ValueError):
            adaptive_vs_nonadaptive([SweepSeries("west-first", "t", [])])

    def test_paper_hop_counts_match_section6(self):
        hops = paper_hop_counts()
        assert float(hops["mesh-transpose"]) == pytest.approx(11.34, abs=0.01)
        assert float(hops["cube-uniform"]) == pytest.approx(4.01, abs=0.01)
        assert float(hops["cube-reverse-flip"]) == pytest.approx(4.27, abs=0.01)
        assert float(hops["mesh-uniform"]) == pytest.approx(10.67, abs=0.01)

    def test_formatters_render(self):
        mesh = Mesh2D(5, 5)
        series = compare_algorithms(
            [XY(mesh), WestFirst(mesh)],
            lambda topo: UniformPattern(topo),
            [0.3],
            FAST,
        )
        text = format_figure("Figure X", series, note="unit test")
        assert "Figure X" in text and "west-first" in text
        summary = format_saturation_summary(series)
        assert "max sustainable" in summary

    def test_format_saturation_points(self):
        mesh = Mesh2D(4, 4)
        point = find_saturation(
            XY(mesh), UniformPattern(mesh), FAST, high=8.0, iterations=2
        )
        text = format_saturation_points([point])
        assert "xy" in text


class TestLatencyChart:
    def test_chart_renders_markers_and_legend(self):
        from repro.analysis import render_latency_chart

        mesh = Mesh2D(5, 5)
        series = compare_algorithms(
            [XY(mesh), WestFirst(mesh)],
            lambda topo: UniformPattern(topo),
            [0.3, 0.6],
            FAST,
        )
        chart = render_latency_chart(series)
        assert "x=xy" in chart and "o=west-first" in chart
        assert "flits/us delivered" in chart
        assert "x" in chart.splitlines()[2] or any(
            "x" in line for line in chart.splitlines()
        )

    def test_chart_handles_empty_series(self):
        from repro.analysis import render_latency_chart
        from repro.analysis.sweep import SweepSeries

        chart = render_latency_chart([SweepSeries("xy", "uniform", [])])
        assert "no delivered traffic" in chart

    def test_figure_includes_chart(self):
        mesh = Mesh2D(5, 5)
        series = compare_algorithms(
            [XY(mesh)], lambda topo: UniformPattern(topo), [0.3], FAST
        )
        text = format_figure("F", series)
        assert "legend:" in text
        plain = format_figure("F", series, chart=False)
        assert "legend:" not in plain
