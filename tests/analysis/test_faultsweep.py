"""Fault-campaign harness: pairing, determinism, aggregation, and the
paper's graceful-degradation headline on the full-size mesh."""

import pytest

from repro.analysis.faultsweep import (
    DEFAULT_ALGORITHMS,
    FaultCampaign,
    campaign_config,
    plan_seed,
    run_fault_campaign,
)
from repro.analysis.runner import ParallelSweepRunner, ResultCache


def small_campaign(**overrides):
    kwargs = dict(
        topology="mesh:5x5",
        algorithms=("xy", "west-first"),
        fault_counts=(0, 2),
        trials=2,
        base_config=campaign_config(
            warmup_cycles=200, measure_cycles=1_000, drain_cycles=1_000
        ),
        seed=0,
    )
    kwargs.update(overrides)
    return run_fault_campaign(**kwargs)


class TestCampaignStructure:
    def test_grid_covers_every_cell(self):
        campaign = small_campaign()
        assert campaign.algorithms() == ["xy", "west-first"]
        assert campaign.fault_counts() == [0, 2]
        for algorithm in campaign.algorithms():
            for count in campaign.fault_counts():
                cell = campaign.cell(algorithm, count)
                assert len(cell.results) == campaign.trials

    def test_unknown_cell_raises(self):
        campaign = small_campaign()
        with pytest.raises(KeyError):
            campaign.cell("xy", 99)

    def test_zero_faults_cell_delivers_everything(self):
        campaign = small_campaign()
        for algorithm in campaign.algorithms():
            cell = campaign.cell(algorithm, 0)
            assert cell.delivery_ratio == 1.0
            assert cell.dropped == 0
            assert cell.killed == 0
            assert cell.drops_by_cause == {}

    def test_campaign_is_deterministic(self):
        a = small_campaign()
        b = small_campaign()
        assert a.to_dict() == b.to_dict()

    def test_pairing_same_plans_across_algorithms(self):
        """Per (count, trial), every algorithm faces the same fault plan;
        the seeds differ only by the campaign-level derivation."""
        assert plan_seed(0, 2, 0) != plan_seed(0, 2, 1)
        assert plan_seed(0, 2, 0) != plan_seed(1, 2, 0)
        campaign = small_campaign()
        xy = campaign.cell("xy", 2)
        wf = campaign.cell("west-first", 2)
        # Paired trials generate identical traffic (same config seeds).
        assert [r.generated_packets for r in xy.results] == [
            r.generated_packets for r in wf.results
        ]

    def test_rows_and_to_dict_report_every_cell(self):
        campaign = small_campaign()
        text = "\n".join(campaign.rows())
        for algorithm in campaign.algorithms():
            assert algorithm in text
        data = campaign.to_dict()
        assert len(data["cells"]) == 4
        assert set(data["overall"]) == {"xy", "west-first"}

    def test_input_validation(self):
        with pytest.raises(ValueError):
            small_campaign(trials=0)
        with pytest.raises(ValueError):
            small_campaign(fault_counts=(-1,))
        with pytest.raises(ValueError):
            small_campaign(fault_start=-1)

    def test_duplicates_are_collapsed(self):
        campaign = small_campaign(
            algorithms=("xy", "xy", "west-first"), fault_counts=(2, 2)
        )
        assert campaign.algorithms() == ["xy", "west-first"]
        assert campaign.fault_counts() == [2]
        assert len(campaign.cell("xy", 2).results) == campaign.trials

    def test_runner_path_matches_serial(self, tmp_path):
        serial = small_campaign()
        runner = ParallelSweepRunner(
            jobs=1, cache=ResultCache(str(tmp_path))
        )
        cached = small_campaign(runner=runner)
        assert cached.to_dict() == serial.to_dict()
        # Second pass must be served from cache — fault plans included
        # in the key, so hits mean the schedule was part of the hash.
        runner2 = ParallelSweepRunner(
            jobs=1, cache=ResultCache(str(tmp_path))
        )
        again = small_campaign(runner=runner2)
        assert again.to_dict() == serial.to_dict()
        assert runner2.stats.executed == 0
        assert runner2.stats.cached == runner2.stats.points > 0


@pytest.mark.slow
class TestFullSizeDegradation:
    def test_adaptive_algorithms_degrade_more_gracefully_than_xy(self):
        """The acceptance headline: on the paper's 16x16 mesh with 1-8
        failed links, every partially-adaptive algorithm sustains a
        strictly higher overall delivery ratio than deterministic xy."""
        campaign = run_fault_campaign(
            topology="mesh:16x16",
            algorithms=DEFAULT_ALGORITHMS,
            fault_counts=(1, 2, 4, 8),
            trials=3,
            seed=0,
        )
        assert isinstance(campaign, FaultCampaign)
        xy_ratio = campaign.overall_delivery_ratio("xy")
        assert xy_ratio < 1.0  # xy demonstrably loses pairs
        for algorithm in DEFAULT_ALGORITHMS:
            if algorithm == "xy":
                continue
            assert campaign.overall_delivery_ratio(algorithm) > xy_ratio, (
                f"{algorithm} did not degrade more gracefully than xy"
            )
