"""Tests for the per-figure experiment harnesses (tiny presets)."""

from repro.analysis import (
    FIGURE_HARNESSES,
    ExperimentPreset,
    section5_pcube_table,
)


TINY = ExperimentPreset(
    warmup_cycles=100,
    measure_cycles=400,
    mesh_loads=(0.3,),
    cube_loads=(0.5,),
)


class TestFigureHarnesses:
    def test_registry_contains_every_figure(self):
        assert set(FIGURE_HARNESSES) == {"fig13", "fig14", "fig15", "fig16"}

    def test_fig13_runs_the_mesh_lineup(self):
        series = FIGURE_HARNESSES["fig13"](TINY)
        assert [s.algorithm for s in series] == [
            "xy", "west-first", "north-last", "negative-first",
        ]
        assert all(s.pattern == "uniform" for s in series)

    def test_fig14_uses_transpose(self):
        series = FIGURE_HARNESSES["fig14"](TINY)
        assert all(s.pattern == "transpose" for s in series)

    def test_fig15_runs_the_cube_lineup(self):
        series = FIGURE_HARNESSES["fig15"](TINY)
        assert [s.algorithm for s in series] == [
            "e-cube", "abonf", "abopl", "p-cube",
        ]
        assert all(s.pattern == "transpose" for s in series)

    def test_fig16_uses_reverse_flip(self):
        series = FIGURE_HARNESSES["fig16"](TINY)
        assert all(s.pattern == "reverse-flip" for s in series)

    def test_every_series_has_one_result_per_load(self):
        for name, harness in FIGURE_HARNESSES.items():
            for s in harness(TINY):
                assert len(s.results) == 1, name


class TestSection5Harness:
    def test_table_matches_paper(self):
        rows = section5_pcube_table()
        assert [r.minimal_choices for r in rows] == [3, 2, 1, 3, 2, 1, 0]
        assert [r.nonminimal_extra for r in rows] == [2, 2, 2, 0, 0, 0, 0]
        assert rows[0].address == "1011010100"
        assert rows[-1].address == "0010111001"
