"""Tests for the parallel experiment runner and its on-disk cache."""

import dataclasses

import pytest

from repro.analysis import (
    ExperimentPreset,
    ParallelSweepRunner,
    PointSpec,
    ResultCache,
    compare_algorithms,
    figure13_mesh_uniform,
    find_saturation,
    find_saturation_many,
    point_spec,
    run_sweep,
)
from repro.analysis.runner import (
    make_pattern,
    parse_topology_spec,
    topology_spec,
)
from repro.faults import FaultEvent, FaultPlan
from repro.routing import WestFirst, XY
from repro.simulation import SimulationConfig
from repro.simulation.array_engine import numpy_available
from repro.topology import Hypercube, KAryNCube, Mesh2D
from repro.traffic import UniformPattern

FAST = SimulationConfig(warmup_cycles=200, measure_cycles=800, seed=1)

# Figure 13's harness (16x16 mesh, all four algorithms) at a reduced
# fast preset so the equivalence tests stay in test-suite budget.
TINY_FIG13 = ExperimentPreset(
    warmup_cycles=200,
    measure_cycles=600,
    mesh_loads=(0.3, 0.6),
    cube_loads=(0.5, 1.0),
    seed=3,
)


def _spec(load=0.3, config=FAST, topo="mesh:5x5", alg="xy", pat="uniform"):
    return PointSpec(topo, alg, pat, config.with_load(load))


class TestSpecs:
    def test_topology_spec_round_trips(self):
        for topo in (Mesh2D(5, 3), Hypercube(4), KAryNCube(4, 2)):
            spec = topology_spec(topo)
            rebuilt = parse_topology_spec(spec)
            assert type(rebuilt) is type(topo)
            assert rebuilt.dims == topo.dims

    def test_parse_rejects_bad_specs(self):
        for bad in ("mesh", "ring:5", "mesh:ax2", "cube:"):
            with pytest.raises(ValueError):
                parse_topology_spec(bad)

    def test_make_pattern_dispatches_transpose(self):
        assert (
            type(make_pattern("transpose", Mesh2D(4, 4))).__name__
            == "MeshTransposePattern"
        )
        assert (
            type(make_pattern("transpose", Hypercube(4))).__name__
            == "HypercubeTransposePattern"
        )
        with pytest.raises(ValueError):
            make_pattern("nope", Mesh2D(4, 4))

    def test_point_spec_from_live_objects(self):
        mesh = Mesh2D(5, 5)
        spec = point_spec(WestFirst(mesh), UniformPattern(mesh), FAST)
        assert spec == PointSpec("mesh:5x5", "west-first", "uniform", FAST)
        algorithm, pattern = spec.build()
        assert algorithm.name == "west-first"
        assert pattern.name == "uniform"

    def test_point_spec_rejects_unregistered_algorithm(self):
        mesh = Mesh2D(4, 4)
        rogue = XY(mesh)
        rogue.__class__ = type(
            "Rogue", (XY,), {"name": property(lambda self: "rogue")}
        )
        with pytest.raises(ValueError):
            point_spec(rogue, UniformPattern(mesh), FAST)

    def test_execute_matches_direct_simulation(self):
        from repro.simulation import WormholeSimulator

        mesh = Mesh2D(5, 5)
        spec = _spec()
        direct = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), FAST.with_load(0.3)
        ).run()
        assert spec.execute() == direct


class TestCacheKey:
    def test_key_is_deterministic(self):
        assert _spec().cache_key() == _spec().cache_key()

    def test_every_config_field_is_in_the_key(self):
        base = _spec()
        changed = {
            "channel_bandwidth": 10.0,
            "buffer_depth": 2,
            "virtual_channels": 2,
            "message_lengths": (16,),
            "offered_load": 0.123,
            "warmup_cycles": 201,
            "measure_cycles": 801,
            "seed": 2,
            "input_selection": "random",
            "output_selection": "random",
            "selection_threshold": 3,
            "misroute_limit": 1,
            "deadlock_threshold": 4_999,
            "queue_sample_period": 99,
            "track_channel_load": True,
            "max_queue_per_node": 499,
            "drain_cycles": 100,
            "fault_plan": FaultPlan((FaultEvent.router(0),)),
            "packet_timeout": 700,
            "max_retries": 1,
            "retry_backoff_base": 64,
            "retry_backoff_cap": 4_096,
            "channel_series_period": 100,
            "collect_router_blocked": True,
            "collect_latency_histogram": True,
            "backend": "array",
        }
        assert set(changed) == {
            f.name for f in dataclasses.fields(SimulationConfig)
        }
        for name, value in changed.items():
            config = dataclasses.replace(base.config, **{name: value})
            assert (
                dataclasses.replace(base, config=config).cache_key()
                != base.cache_key()
            ), f"changing {name} should change the cache key"

    def test_topology_algorithm_pattern_in_the_key(self):
        base = _spec()
        assert _spec(topo="mesh:6x5").cache_key() != base.cache_key()
        assert _spec(alg="west-first").cache_key() != base.cache_key()
        assert _spec(pat="transpose").cache_key() != base.cache_key()

    def test_config_stable_serialization_round_trips(self):
        config = FAST.with_load(0.7)
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.canonical_json() == config.canonical_json()
        assert rebuilt.stable_hash() == config.stable_hash()


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        result = spec.execute()
        cache.put(spec, result)
        assert cache.get(spec) == result
        assert len(cache) == 1

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        assert cache.get(_spec(load=0.4)) is None
        assert cache.get(_spec(config=FAST.with_seed(2))) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, spec.execute())
        path.write_bytes(b"not a pickle")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, spec.execute())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_clear_sweeps_orphaned_tmp_files_and_empty_shards(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, spec.execute())
        # A writer crashing between mkstemp and the atomic rename leaves
        # a *.tmp orphan that __len__ never counts.
        orphan = path.parent / "leftover1234.tmp"
        orphan.write_bytes(b"partial write")
        assert cache.clear() == 1
        assert not orphan.exists()
        # The emptied shard directory is pruned too.
        assert not path.parent.exists()
        assert len(cache) == 0

    def test_truncated_entry_is_a_miss_then_repaired_by_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = spec.execute()
        path = cache.put(spec, result)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn mid-write
        assert cache.get(spec) is None
        cache.put(spec, result)
        assert cache.get(spec) == result

    def test_key_spec_mismatch_is_a_miss_then_overwritten(self, tmp_path):
        # An entry stored under the wrong key (hash collision, or a file
        # copied between shards) must degrade to a miss, never serve the
        # other point's result.
        cache = ResultCache(tmp_path)
        spec_a, spec_b = _spec(load=0.3), _spec(load=0.4)
        result_a, result_b = spec_a.execute(), spec_b.execute()
        path_a = cache.put(spec_a, result_a)
        path_b = cache.path_for(spec_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(path_a.read_bytes())
        assert cache.get(spec_b) is None
        cache.put(spec_b, result_b)
        assert cache.get(spec_b) == result_b
        assert cache.get(spec_a) == result_a

    def test_unreadable_shard_degrades_to_a_miss(self, tmp_path):
        # The shard path existing as a regular file makes every read
        # under it raise (NotADirectoryError, an OSError); the cache
        # treats that as a miss and recovers once the obstruction goes.
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = spec.execute()
        shard = cache.path_for(spec).parent
        shard.write_bytes(b"not a directory")
        assert cache.get(spec) is None
        shard.unlink()
        cache.put(spec, result)
        assert cache.get(spec) == result


class TestRunner:
    def test_parallel_results_bit_identical_to_serial(self):
        mesh = Mesh2D(16, 16)
        loads = TINY_FIG13.mesh_loads
        config = TINY_FIG13.config()
        serial = run_sweep(XY(mesh), UniformPattern(mesh), loads, config)
        runner = ParallelSweepRunner(jobs=2, cache=None)
        parallel = run_sweep(
            XY(mesh), UniformPattern(mesh), loads, config, runner=runner
        )
        assert parallel.results == serial.results
        assert runner.stats.executed == len(loads)

    def test_figure13_harness_parallel_equivalence(self):
        serial = figure13_mesh_uniform(TINY_FIG13)
        runner = ParallelSweepRunner(jobs=2, cache=None)
        parallel = figure13_mesh_uniform(TINY_FIG13, runner=runner)
        assert [s.algorithm for s in parallel] == [
            s.algorithm for s in serial
        ]
        for par, ser in zip(parallel, serial):
            assert par.results == ser.results
        assert runner.stats.executed == 4 * len(TINY_FIG13.mesh_loads)

    def test_second_run_is_served_entirely_from_cache(self, tmp_path):
        runner = ParallelSweepRunner(jobs=2, cache=ResultCache(tmp_path))
        mesh = Mesh2D(6, 6)
        first = run_sweep(
            XY(mesh), UniformPattern(mesh), [0.2, 0.5], FAST, runner=runner
        )
        assert runner.stats.executed == 2

        rerun = ParallelSweepRunner(jobs=2, cache=ResultCache(tmp_path))
        second = run_sweep(
            XY(mesh), UniformPattern(mesh), [0.2, 0.5], FAST, runner=rerun
        )
        assert rerun.stats.executed == 0
        assert rerun.stats.cached == 2
        assert second.results == first.results

    def test_changing_any_knob_misses_the_cache(self, tmp_path):
        mesh = Mesh2D(6, 6)
        runner = ParallelSweepRunner(jobs=1, cache=ResultCache(tmp_path))
        run_sweep(XY(mesh), UniformPattern(mesh), [0.2], FAST, runner=runner)
        # Different seed -> different operating point -> a fresh run.
        run_sweep(
            XY(mesh),
            UniformPattern(mesh),
            [0.2],
            FAST.with_seed(9),
            runner=runner,
        )
        # Different topology -> also a fresh run.
        other = Mesh2D(7, 6)
        run_sweep(
            XY(other), UniformPattern(other), [0.2], FAST, runner=runner
        )
        assert runner.stats.executed == 3
        assert runner.stats.cached == 0

    def test_force_re_executes_and_refreshes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        runner = ParallelSweepRunner(jobs=1, cache=cache)
        runner.run_point(spec)
        forced = ParallelSweepRunner(jobs=1, cache=cache, force=True)
        forced.run_point(spec)
        assert forced.stats.executed == 1
        assert forced.stats.cached == 0

    def test_progress_fires_for_cached_and_executed(self, tmp_path):
        runner = ParallelSweepRunner(jobs=1, cache=ResultCache(tmp_path))
        seen = []
        runner.run_points([_spec(), _spec(load=0.4)], progress=seen.append)
        runner.run_points([_spec(), _spec(load=0.4)], progress=seen.append)
        assert len(seen) == 4

    def test_compare_algorithms_batches_through_runner(self):
        mesh = Mesh2D(5, 5)
        runner = ParallelSweepRunner(jobs=2, cache=None)
        series = compare_algorithms(
            [XY(mesh), WestFirst(mesh)],
            lambda topo: UniformPattern(topo),
            [0.3],
            FAST,
            runner=runner,
        )
        assert [s.algorithm for s in series] == ["xy", "west-first"]
        assert runner.stats.executed == 2
        baseline = compare_algorithms(
            [XY(mesh), WestFirst(mesh)],
            lambda topo: UniformPattern(topo),
            [0.3],
            FAST,
        )
        for with_runner, serial in zip(series, baseline):
            assert with_runner.results == serial.results

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_array_backend_sweep_batches_and_matches_event(self):
        # An unsupervised batch of backend="array" specs runs as ONE
        # BatchSimulator pass — bit-identical to the event-engine sweep,
        # with every point recorded (stats, cache, progress).
        mesh = Mesh2D(8, 8)
        loads = (0.3, 0.6, 0.9)
        serial = run_sweep(
            XY(mesh), UniformPattern(mesh), loads, FAST
        )
        runner = ParallelSweepRunner(jobs=2, cache=None)
        batched = run_sweep(
            XY(mesh), UniformPattern(mesh), loads,
            FAST.with_backend("array"), runner=runner,
        )
        assert batched.results == serial.results
        assert runner.stats.executed == len(loads)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_mixed_backend_batch_keeps_input_order(self):
        runner = ParallelSweepRunner(jobs=1, cache=None)
        specs = [
            _spec(load=0.3),
            _spec(load=0.4, config=FAST.with_backend("array")),
            _spec(load=0.5),
            _spec(load=0.6, config=FAST.with_backend("array")),
        ]
        results = runner.run_points(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert result == spec.execute()

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_array_batch_populates_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelSweepRunner(jobs=2, cache=cache)
        specs = [
            _spec(load=load, config=FAST.with_backend("array"))
            for load in (0.3, 0.5)
        ]
        first = runner.run_points(specs)
        assert runner.stats.executed == 2
        again = ParallelSweepRunner(jobs=2, cache=cache)
        second = again.run_points(specs)
        assert second == first
        assert again.stats.executed == 0
        assert again.stats.cached == 2

    def test_unspecable_objects_fall_back_to_serial(self):
        mesh = Mesh2D(5, 5)

        class Anonymous(UniformPattern):
            @property
            def name(self):
                return "anonymous"

        runner = ParallelSweepRunner(jobs=2, cache=None)
        series = run_sweep(
            XY(mesh), Anonymous(mesh), [0.3], FAST, runner=runner
        )
        assert len(series.results) == 1
        assert runner.stats.points == 0  # runner was bypassed

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(jobs=0)

    def test_stats_summary_renders(self):
        runner = ParallelSweepRunner(jobs=1, cache=None)
        runner.run_points([_spec()])
        text = runner.stats.summary()
        assert "1 points" in text and "simulated" in text


class TestSaturationThroughRunner:
    def test_find_saturation_matches_serial(self, tmp_path):
        mesh = Mesh2D(6, 6)
        serial = find_saturation(
            XY(mesh), UniformPattern(mesh), FAST, high=16.0, iterations=4
        )
        runner = ParallelSweepRunner(jobs=1, cache=ResultCache(tmp_path))
        routed = find_saturation(
            XY(mesh),
            UniformPattern(mesh),
            FAST,
            high=16.0,
            iterations=4,
            runner=runner,
        )
        assert routed == serial
        assert runner.stats.executed == serial.probes

        # A repeated search is answered entirely from cache.
        rerun = ParallelSweepRunner(jobs=1, cache=ResultCache(tmp_path))
        again = find_saturation(
            XY(mesh),
            UniformPattern(mesh),
            FAST,
            high=16.0,
            iterations=4,
            runner=rerun,
        )
        assert again == serial
        assert rerun.stats.executed == 0

    def test_find_saturation_many_matches_single_searches(self):
        mesh = Mesh2D(5, 5)
        pairs = [
            (XY(mesh), UniformPattern(mesh)),
            (WestFirst(mesh), UniformPattern(mesh)),
        ]
        singles = [
            find_saturation(a, p, FAST, high=16.0, iterations=3)
            for a, p in pairs
        ]
        runner = ParallelSweepRunner(jobs=2, cache=None)
        many = find_saturation_many(
            pairs, FAST, high=16.0, iterations=3, runner=runner
        )
        assert many == singles


class TestArrayBatchMembership:
    """One helper decides which pending points join a batched array
    pass — shared by the inline fast path and supervised sharding."""

    def test_selects_only_real_array_specs_in_pending_order(self):
        from repro.analysis.runner import array_batch_indices

        class DuckSpec:
            config = FAST.with_backend("array")

            def execute(self):  # pragma: no cover - membership only
                return None

            def cache_key(self):  # pragma: no cover - membership only
                return "duck"

        specs = [
            _spec(load=0.3),                                     # event
            _spec(load=0.4, config=FAST.with_backend("array")),  # array
            DuckSpec(),                       # array config but no build()
            _spec(load=0.6, config=FAST.with_backend("array")),  # array
        ]
        assert array_batch_indices(specs, [0, 1, 2, 3]) == [1, 3]
        # Only pending points are considered (cache hits are gone).
        assert array_batch_indices(specs, [3, 0]) == [3]
        assert array_batch_indices(specs, []) == []


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestSupervisedArraySharding:
    """Supervised campaigns shard all-array batches into per-worker
    sub-batches, so crash-tolerant runs keep batched throughput."""

    def test_supervised_array_batch_matches_event_runs(self, tmp_path):
        loads = (0.3, 0.5, 0.7, 0.9, 1.1)
        specs = [
            _spec(load=load, config=FAST.with_backend("array"))
            for load in loads
        ]
        runner = ParallelSweepRunner(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            keep_going=True,  # engages supervision
        )
        report = runner.run_batch(specs)
        assert not report.failures
        assert runner.stats.executed == len(loads)
        event = [
            _spec(load=load).execute() for load in loads
        ]
        assert [r.to_dict() for r in report.results] == [
            r.to_dict() for r in event
        ]
        # Every point landed in the cache individually.
        again = ParallelSweepRunner(
            jobs=2, cache=ResultCache(tmp_path / "cache"), keep_going=True
        )
        second = again.run_batch(specs)
        assert again.stats.executed == 0
        assert again.stats.cached == len(loads)
        assert second.results == report.results

    def test_supervised_mixed_batch_keeps_order_and_journal(
        self, tmp_path
    ):
        specs = [
            _spec(load=0.3),
            _spec(load=0.4, config=FAST.with_backend("array")),
            _spec(load=0.5),
            _spec(load=0.6, config=FAST.with_backend("array")),
        ]
        runner = ParallelSweepRunner(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            journal=tmp_path / "journal.jsonl",
        )
        results = runner.run_points(specs)
        runner.close()
        for spec, result in zip(specs, results):
            assert result.to_dict() == spec.execute().to_dict()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len([ln for ln in lines if '"point"' in ln]) >= len(specs)

    def test_failed_shard_expands_to_per_point_failures(self, tmp_path):
        good = [
            _spec(load=load, config=FAST.with_backend("array"))
            for load in (0.3, 0.5)
        ]
        bad = _spec(
            load=0.4, alg="no-such-algorithm",
            config=FAST.with_backend("array"),
        )
        specs = [good[0], bad, good[1]]
        runner = ParallelSweepRunner(
            jobs=len(specs),  # one point per shard
            cache=None,
            keep_going=True,
        )
        report = runner.run_batch(specs)
        assert [f.index for f in report.failures] == [1]
        assert report.failures[0].spec == bad
        assert report.results[1] is None
        for i in (0, 2):
            assert (
                report.results[i].to_dict()
                == _spec(load=specs[i].config.offered_load).execute().to_dict()
            )
        assert runner.stats.failed == 1

    def test_failfast_shard_failure_names_a_member_point(self):
        from repro.analysis.supervision import PointExecutionError

        bad = _spec(
            load=0.4, alg="no-such-algorithm",
            config=FAST.with_backend("array"),
        )
        specs = [
            _spec(load=0.3, config=FAST.with_backend("array")),
            bad,
        ]
        runner = ParallelSweepRunner(jobs=1, cache=None, max_point_retries=0,
                                     point_timeout=60.0)
        with pytest.raises(PointExecutionError) as excinfo:
            runner.run_batch(specs)
        assert excinfo.value.failure.spec in specs
