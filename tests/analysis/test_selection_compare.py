"""The selection-policy comparison harness: grid structure, pairing,
deltas against the xy baseline, and serialization."""

import json

import pytest

from repro.analysis.selection import (
    BASELINE_POLICY,
    SelectionSeries,
    comparison_config,
    run_selection_comparison,
)


def tiny_comparison(**overrides):
    kwargs = dict(
        topology="mesh:4x4",
        algorithms=("west-first",),
        patterns=("uniform",),
        policies=("xy", "max-credits"),
        loads=(0.5, 1.5),
        base_config=comparison_config(warmup_cycles=50, measure_cycles=200),
        fault_links=2,
        fault_seed=0,
        fault_start=60,
    )
    kwargs.update(overrides)
    return run_selection_comparison(**kwargs)


class TestGridStructure:
    def test_cells_cover_policy_x_variant(self):
        comparison = tiny_comparison()
        # 2 policies x 1 algorithm x 1 pattern x 2 variants (fault-free
        # and 2 dead links).
        assert len(comparison.series) == 4
        assert comparison.groups() == [
            ("west-first", "uniform", 0),
            ("west-first", "uniform", 2),
        ]
        assert comparison.policies() == ["xy", "max-credits"]
        for series in comparison.series:
            assert series.loads == [0.5, 1.5]
            assert len(series.results) == 2
            assert all(r.generated_packets > 0 for r in series.results)

    def test_fault_links_zero_skips_faulted_variant(self):
        comparison = tiny_comparison(fault_links=0)
        assert len(comparison.series) == 2
        assert comparison.groups() == [("west-first", "uniform", 0)]

    def test_pairing_same_traffic_for_every_policy(self):
        # Identical generation stream: the policies see the same packets,
        # so generated counts match cell-for-cell.
        comparison = tiny_comparison()
        for group in comparison.groups():
            base = comparison.cell(BASELINE_POLICY, *group)
            other = comparison.cell("max-credits", *group)
            assert [r.generated_packets for r in base.results] == [
                r.generated_packets for r in other.results
            ]

    def test_baseline_xy_matches_plain_config_run(self):
        # The "xy" cell is the default engine, byte-for-byte.
        from repro.analysis.runner import PointSpec

        comparison = tiny_comparison(fault_links=0)
        base = comparison.cell(BASELINE_POLICY, "west-first", "uniform", 0)
        config = comparison_config(
            warmup_cycles=50, measure_cycles=200
        ).with_load(0.5)
        plain = PointSpec("mesh:4x4", "west-first", "uniform", config).execute()
        assert base.results[0].to_dict() == plain.to_dict()


class TestReporting:
    def test_deltas_are_against_xy(self):
        comparison = tiny_comparison()
        deltas = comparison.deltas()
        assert len(deltas) == 2  # one non-baseline policy x two groups
        for delta in deltas:
            assert delta["policy"] == "max-credits"
            assert "saturation_delta_pct" in delta
            assert "delivery_ratio_delta" in delta

    def test_rows_render_every_cell(self):
        comparison = tiny_comparison()
        text = "\n".join(comparison.rows())
        assert "selection-policy comparison: mesh:4x4" in text
        assert text.count("max-credits") == 2
        assert "2 dead link(s)" in text
        assert "vs xy" in text

    def test_to_dict_round_trips_through_json(self):
        comparison = tiny_comparison()
        data = json.loads(json.dumps(comparison.to_dict()))
        assert data["topology"] == "mesh:4x4"
        assert data["fault_links"] == 2
        assert len(data["series"]) == 4
        assert len(data["deltas_vs_xy"]) == 2
        for series in data["series"]:
            assert len(series["per_load"]) == 2


class TestValidation:
    def test_unknown_policy_raises_with_known_list(self):
        with pytest.raises(ValueError, match="round-robin"):
            tiny_comparison(policies=("xy", "mystery"))

    def test_empty_policies_raises(self):
        with pytest.raises(ValueError):
            tiny_comparison(policies=())

    def test_negative_fault_links_raises(self):
        with pytest.raises(ValueError):
            tiny_comparison(fault_links=-1)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            tiny_comparison(algorithms=("mystery",))


class TestSeriesAggregates:
    def test_series_properties(self):
        def result_stub(throughput, latency, sustainable, generated, delivered):
            class R:
                pass

            r = R()
            r.throughput_flits_per_us = throughput
            r.avg_latency_us = latency
            r.sustainable = sustainable
            r.generated_packets = generated
            r.delivered_packets = delivered
            return r

        series = SelectionSeries(
            policy="xy", algorithm="west-first", pattern="uniform",
            num_faults=0, loads=[0.5, 2.0],
            results=[
                result_stub(100.0, 1.5, True, 50, 50),
                result_stub(250.0, 9.0, False, 200, 150),
            ],
        )
        assert series.saturation_throughput == 250.0
        assert series.max_sustainable_throughput == 100.0
        assert series.low_load_latency_us == 1.5
        assert series.delivery_ratio == 200 / 250
