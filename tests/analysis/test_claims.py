"""Unit tests for the Section 6 claims helpers."""

import pytest

from repro.analysis import uniform_nonadaptive_wins
from repro.analysis.sweep import SweepSeries


def fake_series(name, best):
    series = SweepSeries(name, "uniform", [])
    series.max_sustainable_throughput = lambda: best  # noqa: E731
    return series


class TestUniformNonadaptiveWins:
    def test_true_when_baseline_leads(self):
        series = [fake_series("xy", 100.0), fake_series("west-first", 90.0)]
        assert uniform_nonadaptive_wins(series)

    def test_tolerates_five_percent(self):
        series = [fake_series("e-cube", 100.0), fake_series("p-cube", 104.0)]
        assert uniform_nonadaptive_wins(series)

    def test_false_when_adaptive_clearly_leads(self):
        series = [fake_series("xy", 100.0), fake_series("west-first", 120.0)]
        assert not uniform_nonadaptive_wins(series)

    def test_requires_a_baseline(self):
        with pytest.raises(ValueError):
            uniform_nonadaptive_wins([fake_series("west-first", 1.0)])
