"""The engine benchmark harness: points, measurement, regression gate."""

import json

import pytest

from repro.analysis.bench import (
    BenchPoint,
    CANONICAL_POINTS,
    FINGERPRINT_FIELDS,
    bench_points,
    compare_reports,
    load_report,
    run_bench,
    run_point,
    write_report,
)

TINY = BenchPoint(
    id="tiny", topology="mesh:4x4", algorithm="west-first",
    pattern="uniform", offered_load=1.0, warmup_cycles=50,
    measure_cycles=200, seed=3,
)


class TestPoints:
    def test_canonical_ids_are_unique(self):
        ids = [p.id for p in CANONICAL_POINTS]
        assert len(ids) == len(set(ids))

    def test_quick_subset_is_nonempty_and_proper(self):
        quick = bench_points(quick=True)
        assert 0 < len(quick) < len(CANONICAL_POINTS)
        assert all(p.quick for p in quick)
        assert bench_points() == list(CANONICAL_POINTS)

    def test_fault_point_config_arms_the_fault_machinery(self):
        point = next(p for p in CANONICAL_POINTS if p.fault_links)
        config = point.config()
        assert not config.fault_plan.is_empty
        assert config.packet_timeout > 0
        assert config.max_retries > 0

    def test_observability_point_switches_collectors_on(self):
        point = next(p for p in CANONICAL_POINTS if p.observability)
        config = point.config()
        assert config.collect_latency_histogram
        assert config.channel_series_period > 0


class TestMeasurement:
    def test_run_point_measures_and_fingerprints(self):
        m = run_point(TINY, repeats=1)
        assert m.wall_s > 0
        assert m.simulated_cycles == TINY.config().total_cycles
        assert m.cycles_per_s > 0
        assert len(m.fingerprint) == len(FINGERPRINT_FIELDS)
        assert m.fingerprint[0] > 0  # generated packets

    def test_repeats_keep_the_same_fingerprint(self):
        once = run_point(TINY, repeats=1)
        twice = run_point(TINY, repeats=2)
        assert twice.fingerprint == once.fingerprint

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_point(TINY, repeats=0)

    def test_report_round_trip_and_baseline_fold(self, tmp_path):
        report = run_bench([TINY], repeats=1, label="before")
        path = tmp_path / "before.json"
        write_report(report, str(path))
        prior = load_report(str(path))
        assert prior["label"] == "before"
        again = run_bench([TINY], repeats=1, baseline=prior, label="after")
        m = again.measurements[0]
        assert m.baseline is not None
        assert m.baseline["label"] == "before"
        assert "speedup" in m.to_dict()
        assert "x" in again.render()  # the speedup column rendered

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_report(str(path))


class TestRegressionGate:
    def _committed(self, m, **overrides):
        entry = m.to_dict()
        entry.update(overrides)
        return {"points": {m.point.id: entry}}

    def test_clean_pass(self):
        report = run_bench([TINY], repeats=1)
        assert compare_reports(report, self._committed(report.measurements[0])) == []

    def test_fingerprint_change_is_fatal(self):
        report = run_bench([TINY], repeats=1)
        m = report.measurements[0]
        bad = list(m.fingerprint)
        bad[0] += 1
        problems = compare_reports(report, self._committed(m, fingerprint=bad))
        assert len(problems) == 1
        assert "fingerprint" in problems[0]

    def test_slowdown_beyond_threshold_is_fatal(self):
        report = run_bench([TINY], repeats=1)
        m = report.measurements[0]
        committed = self._committed(m, cycles_per_s=m.cycles_per_s * 10)
        problems = compare_reports(report, committed, fail_threshold=0.30)
        assert any("regressed" in p for p in problems)
        # A generous threshold absorbs the same gap.
        assert compare_reports(report, committed, fail_threshold=0.95) == []

    def test_unknown_points_are_ignored(self):
        report = run_bench([TINY], repeats=1)
        assert compare_reports(report, {"points": {}}) == []


class TestCommittedTrajectory:
    def test_bench_engine_json_fingerprints_still_hold(self):
        """The committed trajectory's quick points must fingerprint-match
        a fresh run: BENCH_engine.json doubles as a bit-identity pin."""
        from pathlib import Path

        trajectory = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        committed = load_report(str(trajectory))
        report = run_bench(bench_points(quick=True), repeats=1)
        problems = [
            p
            for p in compare_reports(report, committed, fail_threshold=0.30)
            if "fingerprint" in p
        ]
        assert problems == []
