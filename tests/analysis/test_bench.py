"""The engine benchmark harness: points, measurement, regression gate."""

import json

import pytest

from repro.analysis.bench import (
    BATCH_POINTS,
    BatchBenchPoint,
    BenchPoint,
    CANONICAL_POINTS,
    FINGERPRINT_FIELDS,
    batch_bench_points,
    bench_points,
    compare_reports,
    load_report,
    run_batch_point,
    run_bench,
    run_point,
    write_report,
)
from repro.simulation.array_engine import numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

TINY = BenchPoint(
    id="tiny", topology="mesh:4x4", algorithm="west-first",
    pattern="uniform", offered_load=1.0, warmup_cycles=50,
    measure_cycles=200, seed=3,
)

TINY_BATCH = BatchBenchPoint(
    id="tiny-batch", topology="mesh:4x4", algorithm="west-first",
    pattern="uniform", offered_load=1.0, batch_size=6,
    warmup_cycles=50, measure_cycles=200, buffer_depth=2,
    event_sample=3,
)


class TestPoints:
    def test_canonical_ids_are_unique(self):
        ids = [p.id for p in CANONICAL_POINTS]
        assert len(ids) == len(set(ids))

    def test_quick_subset_is_nonempty_and_proper(self):
        quick = bench_points(quick=True)
        assert 0 < len(quick) < len(CANONICAL_POINTS)
        assert all(p.quick for p in quick)
        assert bench_points() == list(CANONICAL_POINTS)

    def test_fault_point_config_arms_the_fault_machinery(self):
        point = next(p for p in CANONICAL_POINTS if p.fault_links)
        config = point.config()
        assert not config.fault_plan.is_empty
        assert config.packet_timeout > 0
        assert config.max_retries > 0

    def test_observability_point_switches_collectors_on(self):
        point = next(p for p in CANONICAL_POINTS if p.observability)
        config = point.config()
        assert config.collect_latency_histogram
        assert config.channel_series_period > 0

    def test_array_backend_relabels_points(self):
        points = bench_points(backend="array")
        assert [p.id for p in points] == [
            f"{p.id}@array" for p in CANONICAL_POINTS
        ]
        assert all(p.backend == "array" for p in points)
        assert all(p.config().backend == "array" for p in points)
        assert all(
            p.spec_dict()["backend"] == "array" for p in points
        )

    def test_batch_points_quick_subset(self):
        ids = [p.id for p in BATCH_POINTS]
        assert len(ids) == len(set(ids))
        quick = batch_bench_points(quick=True)
        assert 0 < len(quick) < len(BATCH_POINTS)
        assert all(p.quick for p in quick)
        assert batch_bench_points() == list(BATCH_POINTS)

    def test_batch_point_builds_seed_swept_configs(self):
        built = TINY_BATCH.build("array")
        assert len(built) == TINY_BATCH.batch_size
        seeds = [config.seed for _, _, config in built]
        assert seeds == [
            TINY_BATCH.base_seed + i
            for i in range(TINY_BATCH.batch_size)
        ]
        assert all(c.backend == "array" for _, _, c in built)
        assert all(
            c.buffer_depth == TINY_BATCH.buffer_depth
            for _, _, c in built
        )


class TestMeasurement:
    def test_run_point_measures_and_fingerprints(self):
        m = run_point(TINY, repeats=1)
        assert m.wall_s > 0
        assert m.simulated_cycles == TINY.config().total_cycles
        assert m.cycles_per_s > 0
        assert len(m.fingerprint) == len(FINGERPRINT_FIELDS)
        assert m.fingerprint[0] > 0  # generated packets

    def test_repeats_keep_the_same_fingerprint(self):
        once = run_point(TINY, repeats=1)
        twice = run_point(TINY, repeats=2)
        assert twice.fingerprint == once.fingerprint

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_point(TINY, repeats=0)

    def test_report_round_trip_and_baseline_fold(self, tmp_path):
        report = run_bench([TINY], repeats=1, label="before")
        path = tmp_path / "before.json"
        write_report(report, str(path))
        prior = load_report(str(path))
        assert prior["label"] == "before"
        again = run_bench([TINY], repeats=1, baseline=prior, label="after")
        m = again.measurements[0]
        assert m.baseline is not None
        assert m.baseline["label"] == "before"
        assert "speedup" in m.to_dict()
        assert "x" in again.render()  # the speedup column rendered

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_report(str(path))

    @needs_numpy
    def test_run_batch_point_measures_both_backends(self):
        m = run_batch_point(TINY_BATCH, repeats=2)
        assert m.batch_wall_s > 0
        assert m.event_wall_s > 0
        assert m.event_sampled == TINY_BATCH.event_sample
        assert m.points_per_s > 0
        assert m.event_points_per_s > 0
        assert m.speedup == pytest.approx(
            m.points_per_s / m.event_points_per_s
        )
        assert m.bit_identical
        assert len(m.fingerprint) == len(FINGERPRINT_FIELDS)
        assert m.fingerprint[0] > 0  # generated packets, batch-summed
        entry = m.to_dict()
        assert entry["bit_identical"] is True
        assert entry["spec"]["batch_size"] == TINY_BATCH.batch_size

    @needs_numpy
    def test_batch_points_flow_through_run_bench(self):
        report = run_bench([], batch_points=[TINY_BATCH])
        assert report.measurements == []
        assert len(report.batch_measurements) == 1
        payload = report.to_dict()
        assert "tiny-batch" in payload["batch_points"]
        assert "tiny-batch" in report.render()


class TestRegressionGate:
    def _committed(self, m, **overrides):
        entry = m.to_dict()
        entry.update(overrides)
        return {"points": {m.point.id: entry}}

    def test_clean_pass(self):
        report = run_bench([TINY], repeats=1)
        assert compare_reports(report, self._committed(report.measurements[0])) == []

    def test_fingerprint_change_is_fatal(self):
        report = run_bench([TINY], repeats=1)
        m = report.measurements[0]
        bad = list(m.fingerprint)
        bad[0] += 1
        problems = compare_reports(report, self._committed(m, fingerprint=bad))
        assert len(problems) == 1
        assert "fingerprint" in problems[0]

    def test_slowdown_beyond_threshold_is_fatal(self):
        report = run_bench([TINY], repeats=1)
        m = report.measurements[0]
        committed = self._committed(m, cycles_per_s=m.cycles_per_s * 10)
        problems = compare_reports(report, committed, fail_threshold=0.30)
        assert any("regressed" in p for p in problems)
        # A generous threshold absorbs the same gap.
        assert compare_reports(report, committed, fail_threshold=0.95) == []

    def test_unknown_points_are_ignored(self):
        report = run_bench([TINY], repeats=1)
        assert compare_reports(report, {"points": {}}) == []

    @needs_numpy
    def test_batch_point_gate(self):
        report = run_bench([], batch_points=[TINY_BATCH])
        bm = report.batch_measurements[0]
        entry = bm.to_dict()
        committed = {"points": {}, "batch_points": {bm.point.id: entry}}
        assert compare_reports(report, committed) == []
        # Throughput collapse trips the gate...
        slow = dict(entry, points_per_s=bm.points_per_s * 10)
        problems = compare_reports(
            report, {"points": {}, "batch_points": {bm.point.id: slow}}
        )
        assert any("points/s regressed" in p for p in problems)
        # ...and so does a changed batch fingerprint.
        bad = list(bm.fingerprint)
        bad[0] += 1
        problems = compare_reports(
            report,
            {
                "points": {},
                "batch_points": {bm.point.id: dict(entry, fingerprint=bad)},
            },
        )
        assert any("fingerprint" in p for p in problems)
        # A cross-backend mismatch is fatal even with no history.
        bm.bit_identical = False
        problems = compare_reports(report, {"points": {}})
        assert any("bit-for-bit" in p for p in problems)


class TestCommittedTrajectory:
    def test_bench_engine_json_fingerprints_still_hold(self):
        """The committed trajectory's quick points must fingerprint-match
        a fresh run: BENCH_engine.json doubles as a bit-identity pin."""
        from pathlib import Path

        trajectory = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        committed = load_report(str(trajectory))
        report = run_bench(bench_points(quick=True), repeats=1)
        problems = [
            p
            for p in compare_reports(report, committed, fail_threshold=0.30)
            if "fingerprint" in p
        ]
        assert problems == []

    @needs_numpy
    def test_bench_engine_json_array_fingerprints_still_hold(self):
        """Same pin for the array backend's quick points and the quick
        batched-sweep point (fingerprints are machine-independent)."""
        from pathlib import Path

        trajectory = Path(__file__).resolve().parents[2] / "BENCH_engine.json"
        committed = load_report(str(trajectory))
        report = run_bench(
            bench_points(quick=True, backend="array"),
            repeats=1,
            batch_points=batch_bench_points(quick=True),
        )
        problems = [
            p
            for p in compare_reports(report, committed, fail_threshold=0.30)
            if "fingerprint" in p or "bit-for-bit" in p
        ]
        assert problems == []
