"""Every example and script must at least compile and import cleanly.

(Full executions are exercised manually / in benchmarks; these checks
catch syntax errors and broken imports cheaply.)"""

import os
import py_compile

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def collect(directory):
    path = os.path.join(REPO_ROOT, directory)
    if not os.path.isdir(path):
        return []
    return sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if name.endswith(".py")
    )


EXAMPLES = collect("examples")
SCRIPTS = collect("scripts")


class TestCompile:
    @pytest.mark.parametrize("path", EXAMPLES + SCRIPTS, ids=os.path.basename)
    def test_compiles(self, path):
        py_compile.compile(path, doraise=True)

    def test_expected_examples_present(self):
        names = {os.path.basename(p) for p in EXAMPLES}
        assert {
            "quickstart.py",
            "paper_figures.py",
            "deadlock_demo.py",
            "pcube_walkthrough.py",
            "custom_turn_model.py",
        } <= names

    def test_examples_have_main_guards(self):
        for path in EXAMPLES:
            with open(path) as fh:
                source = fh.read()
            assert '__name__ == "__main__"' in source, path
            assert '"""' in source.split("\n", 3)[1] or source.startswith(
                "#!"
            ), f"{path} should start with a docstring"
