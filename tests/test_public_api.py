"""Public-API hygiene: every declared export resolves, in every
subpackage."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.topology",
    "repro.core",
    "repro.routing",
    "repro.verification",
    "repro.simulation",
    "repro.traffic",
    "repro.analysis",
    "repro.faults",
]


class TestExports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), name
        for export in module.__all__:
            assert getattr(module, export, None) is not None, (
                f"{name}.{export} missing"
            )

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_is_sorted(self, name):
        module = importlib.import_module(name)
        assert list(module.__all__) == sorted(module.__all__), name

    def test_version_matches_pyproject(self):
        import os
        import repro

        root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        with open(os.path.join(root, "pyproject.toml")) as fh:
            content = fh.read()
        assert f'version = "{repro.__version__}"' in content

    def test_key_paper_names_at_top_level(self):
        import repro

        for name in (
            "TurnModel", "WestFirst", "NorthLast", "NegativeFirst",
            "PCube", "XY", "ECube", "WormholeSimulator",
            "verify_algorithm",
        ):
            assert name in repro.__all__
