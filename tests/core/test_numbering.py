"""Tests for the executable channel-numbering proofs (Theorems 2, 3, 5).

The theorems claim strict monotonicity of channel numbers along every
path each algorithm can produce; these tests enumerate every minimal path
on small meshes and check every hop.
"""


from repro.core import (
    dimension_order_numbering,
    is_strictly_monotone,
    monotonicity_violations,
    negative_first_numbering,
    north_last_numbering,
    west_first_numbering,
)
from repro.routing import (
    NegativeFirst,
    NorthLast,
    WestFirst,
    XY,
    enumerate_minimal_paths,
    path_channels,
)
from repro.topology import Mesh, Mesh2D


def all_minimal_channel_paths(algorithm, limit_per_pair=50):
    topology = algorithm.topology
    for src in topology.nodes():
        for dst in topology.nodes():
            if src == dst:
                continue
            for node_path in enumerate_minimal_paths(
                algorithm, src, dst, limit=limit_per_pair
            ):
                yield path_channels(topology, node_path)


class TestWestFirstNumbering:
    def test_theorem_2_strictly_decreasing_on_4x4(self):
        mesh = Mesh2D(4, 4)
        numbering = west_first_numbering(mesh)
        paths = list(all_minimal_channel_paths(WestFirst(mesh)))
        assert paths  # sanity: the enumeration produced work
        assert monotonicity_violations(numbering, paths, decreasing=True) == []

    def test_rectangular_mesh(self):
        mesh = Mesh2D(5, 3)
        numbering = west_first_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(WestFirst(mesh)),
            decreasing=True,
        )
        assert violations == []

    def test_westward_channels_sit_above_all_others(self):
        """The proof's structure: westward numbers exceed east/north/south."""
        mesh = Mesh2D(4, 4)
        numbering = west_first_numbering(mesh)
        west_values = [
            v
            for c, v in numbering.items()
            if c.direction.dim == 0 and c.direction.is_negative
        ]
        other_values = [
            v
            for c, v in numbering.items()
            if not (c.direction.dim == 0 and c.direction.is_negative)
        ]
        assert min(west_values) > max(other_values)

    def test_westward_numbers_decrease_going_west(self):
        mesh = Mesh2D(6, 2)
        numbering = west_first_numbering(mesh)
        values = {}
        for c, v in numbering.items():
            if c.direction.dim == 0 and c.direction.is_negative:
                x = mesh.coords(c.src)[0]
                values[x] = v
        xs = sorted(values)
        assert all(values[a] < values[b] for a, b in zip(xs, xs[1:]))


class TestNorthLastNumbering:
    def test_theorem_3_strictly_decreasing_on_4x4(self):
        mesh = Mesh2D(4, 4)
        numbering = north_last_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(NorthLast(mesh)),
            decreasing=True,
        )
        assert violations == []

    def test_rectangular_mesh(self):
        mesh = Mesh2D(3, 5)
        numbering = north_last_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(NorthLast(mesh)),
            decreasing=True,
        )
        assert violations == []

    def test_north_channels_sit_below_all_others(self):
        mesh = Mesh2D(4, 4)
        numbering = north_last_numbering(mesh)
        north_values = [
            v
            for c, v in numbering.items()
            if c.direction.dim == 1 and c.direction.is_positive
        ]
        other_values = [
            v
            for c, v in numbering.items()
            if not (c.direction.dim == 1 and c.direction.is_positive)
        ]
        assert max(north_values) < min(other_values)


class TestNegativeFirstNumbering:
    def test_theorem_5_strictly_increasing_on_2d(self):
        mesh = Mesh2D(4, 4)
        numbering = negative_first_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(NegativeFirst(mesh)),
            decreasing=False,
        )
        assert violations == []

    def test_theorem_5_on_3d_mesh(self):
        mesh = Mesh((3, 3, 3))
        numbering = negative_first_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(NegativeFirst(mesh), limit_per_pair=20),
            decreasing=False,
        )
        assert violations == []

    def test_exact_formula(self):
        """Positive channels K-n+X, negative channels K-n-X."""
        mesh = Mesh((4, 5))
        big_k, n = 9, 2
        numbering = negative_first_numbering(mesh)
        for channel, value in numbering.items():
            x_sum = sum(mesh.coords(channel.src))
            if channel.direction.is_positive:
                assert value == big_k - n + x_sum
            else:
                assert value == big_k - n - x_sum


class TestDimensionOrderNumbering:
    def test_xy_strictly_decreasing(self):
        mesh = Mesh2D(4, 4)
        numbering = dimension_order_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(XY(mesh)),
            decreasing=True,
        )
        assert violations == []

    def test_3d_dimension_order(self):
        from repro.routing import DimensionOrder

        mesh = Mesh((3, 3, 3))
        numbering = dimension_order_numbering(mesh)
        violations = monotonicity_violations(
            numbering,
            all_minimal_channel_paths(DimensionOrder(mesh)),
            decreasing=True,
        )
        assert violations == []


class TestHelpers:
    def test_is_strictly_monotone(self):
        mesh = Mesh2D(3, 3)
        numbering = west_first_numbering(mesh)
        alg = WestFirst(mesh)
        path = next(
            enumerate_minimal_paths(alg, mesh.node_xy(2, 0), mesh.node_xy(0, 2))
        )
        channels = path_channels(mesh, path)
        assert is_strictly_monotone(numbering, channels, decreasing=True)
        assert not is_strictly_monotone(
            numbering, list(reversed(channels)), decreasing=True
        )
