"""Tests for Sections 3.4 and 5: degree-of-adaptiveness formulas.

The closed forms are cross-checked against exhaustive path enumeration of
the actual routing algorithms.
"""

import math
from fractions import Fraction

import pytest

from repro.core import (
    average_adaptiveness_ratio,
    count_shortest_paths,
    multinomial,
    pcube_choice_table,
    pcube_ratio,
    s_ecube,
    s_fully_adaptive,
    s_negative_first,
    s_negative_first_ndim,
    s_north_last,
    s_pcube,
    s_west_first,
)
from repro.routing import (
    NegativeFirst,
    NorthLast,
    PCube,
    WestFirst,
)
from repro.topology import Hypercube, Mesh2D


class TestMultinomial:
    def test_binomial_case(self):
        assert multinomial([3, 2]) == math.comb(5, 2)

    def test_single_dimension(self):
        assert multinomial([7]) == 1
        assert multinomial([]) == 1

    def test_three_way(self):
        assert multinomial([2, 2, 2]) == 90

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            multinomial([-1, 2])


class TestClosedForms2D:
    def setup_method(self):
        self.mesh = Mesh2D(8, 8)

    def pair(self, sx, sy, dx, dy):
        return self.mesh.node_xy(sx, sy), self.mesh.node_xy(dx, dy)

    def test_fully_adaptive_formula(self):
        src, dst = self.pair(1, 1, 4, 3)
        assert s_fully_adaptive(self.mesh, src, dst) == multinomial([3, 2])

    def test_west_first_east_destinations_fully_adaptive(self):
        src, dst = self.pair(2, 5, 5, 1)
        assert s_west_first(self.mesh, src, dst) == s_fully_adaptive(
            self.mesh, src, dst
        )

    def test_west_first_west_destinations_single_path(self):
        src, dst = self.pair(5, 2, 1, 6)
        assert s_west_first(self.mesh, src, dst) == 1

    def test_north_last_cases(self):
        south = self.pair(3, 6, 6, 2)
        north = self.pair(3, 2, 6, 6)
        assert s_north_last(self.mesh, *south) == s_fully_adaptive(
            self.mesh, *south
        )
        assert s_north_last(self.mesh, *north) == 1

    def test_negative_first_cases(self):
        both_neg = self.pair(5, 5, 2, 1)
        both_pos = self.pair(2, 1, 5, 5)
        mixed = self.pair(2, 5, 5, 1)
        assert s_negative_first(self.mesh, *both_neg) == s_fully_adaptive(
            self.mesh, *both_neg
        )
        assert s_negative_first(self.mesh, *both_pos) == s_fully_adaptive(
            self.mesh, *both_pos
        )
        assert s_negative_first(self.mesh, *mixed) == 1

    def test_ecube_formula(self):
        src, dst = self.pair(0, 0, 3, 3)
        assert s_ecube(self.mesh, src, dst) == 1
        assert s_ecube(self.mesh, src, src) == 0


class TestFormulasMatchEnumeration:
    """The closed forms must equal exhaustive counts over the real
    algorithms' candidate functions."""

    @pytest.mark.parametrize(
        "algorithm_cls,formula",
        [
            (WestFirst, s_west_first),
            (NorthLast, s_north_last),
            (NegativeFirst, s_negative_first),
        ],
    )
    def test_2d_all_pairs_on_5x5(self, algorithm_cls, formula):
        mesh = Mesh2D(5, 5)
        algorithm = algorithm_cls(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                counted = count_shortest_paths(
                    lambda node, d: algorithm.candidates(node, d),
                    mesh,
                    src,
                    dst,
                )
                assert counted == formula(mesh, src, dst), (
                    f"{algorithm.name} mismatch for "
                    f"{mesh.coords(src)}->{mesh.coords(dst)}"
                )

    def test_pcube_matches_enumeration_on_5_cube(self):
        cube = Hypercube(5)
        algorithm = PCube(cube)
        for src in range(0, 32, 3):
            for dst in cube.nodes():
                if src == dst:
                    continue
                counted = count_shortest_paths(
                    lambda node, d: algorithm.candidates(node, d),
                    cube,
                    src,
                    dst,
                )
                assert counted == s_pcube(cube, src, dst)

    def test_negative_first_ndim_consistent_with_2d(self):
        mesh = Mesh2D(6, 6)
        for src in (0, 7, 21):
            for dst in mesh.nodes():
                if src == dst:
                    continue
                assert s_negative_first_ndim(
                    mesh, src, dst
                ) == s_negative_first(mesh, src, dst) or s_negative_first(
                    mesh, src, dst
                ) == 1

    def test_pcube_ndim_formula(self):
        """S_pcube = h1! * h0! (Section 5)."""
        cube = Hypercube(10)
        src = cube.node_from_address_str("1011010100")
        dst = cube.node_from_address_str("0010111001")
        assert s_pcube(cube, src, dst) == math.factorial(3) * math.factorial(3)
        assert s_fully_adaptive(cube, src, dst) == math.factorial(6)
        assert pcube_ratio(cube, src, dst) == Fraction(1, math.comb(6, 3))


class TestAverageRatio:
    def test_section_3_4_claim_ratio_above_half(self):
        """Averaged over all pairs, S_p/S_f > 1/2 for each 2D algorithm."""
        mesh = Mesh2D(5, 5)
        for formula in (s_west_first, s_north_last, s_negative_first):
            ratio = average_adaptiveness_ratio(mesh, formula)
            assert ratio > Fraction(1, 2), formula.__name__

    def test_ratio_at_most_one(self):
        mesh = Mesh2D(4, 4)
        assert average_adaptiveness_ratio(mesh, s_west_first) <= 1

    def test_section_4_1_claim_on_hypercube(self):
        """S_p/S_f > 1/2**(n-1) for the n-dimensional generalisation."""
        cube = Hypercube(4)
        ratio = average_adaptiveness_ratio(
            cube, lambda topo, s, d: s_pcube(topo, s, d)
        )
        assert ratio > Fraction(1, 2 ** (cube.order - 1))


class TestSection5Table:
    def test_paper_walkthrough_exactly(self):
        """The Section 5 table: choices at each hop of the example path."""
        cube = Hypercube(10)
        src = cube.node_from_address_str("1011010100")
        dst = cube.node_from_address_str("0010111001")
        rows = pcube_choice_table(cube, src, dst, [2, 9, 6, 5, 0, 3])
        got = [
            (r.address, r.minimal_choices, r.nonminimal_extra, r.dimension_taken)
            for r in rows
        ]
        assert got == [
            ("1011010100", 3, 2, 2),
            ("1011010000", 2, 2, 9),
            ("0011010000", 1, 2, 6),
            ("0010010000", 3, 0, 5),
            ("0010110000", 2, 0, 0),
            ("0010110001", 1, 0, 3),
            ("0010111001", 0, 0, None),
        ]
        assert [r.phase for r in rows] == [
            "source", "phase 1", "phase 1",
            "phase 2", "phase 2", "phase 2", "destination",
        ]

    def test_illegal_move_rejected(self):
        cube = Hypercube(4)
        with pytest.raises(ValueError):
            pcube_choice_table(cube, 0b0000, 0b0001, [3, 0])

    def test_path_must_reach_destination(self):
        cube = Hypercube(4)
        with pytest.raises(ValueError):
            pcube_choice_table(cube, 0b1000, 0b0001, [3])
