"""Tests for abstract turn cycles (Section 2, Figure 2, Theorem 1)."""

import pytest

from repro.core import (
    Turn,
    abstract_cycles,
    breaks_all_abstract_cycles,
    count_abstract_cycles,
    minimum_prohibited_turns,
    plane_cycles,
    two_turn_prohibitions_2d,
    unbroken_cycles,
)
from repro.core.turns import ninety_degree_turns
from repro.topology import EAST, NORTH, SOUTH, WEST


class TestPlaneCycles:
    def test_two_cycles_per_plane(self):
        ccw, cw = plane_cycles(0, 1)
        assert not ccw.clockwise and cw.clockwise
        assert len(ccw.turns) == 4 and len(cw.turns) == 4

    def test_cycles_are_disjoint_and_cover_the_plane(self):
        """Figure 2: the eight turns split into two four-turn cycles."""
        ccw, cw = plane_cycles(0, 1)
        assert set(ccw.turns) | set(cw.turns) == set(ninety_degree_turns(2))
        assert set(ccw.turns) & set(cw.turns) == set()

    def test_ccw_cycle_is_all_left_turns(self):
        ccw, _ = plane_cycles(0, 1)
        assert Turn(EAST, NORTH) in ccw
        assert Turn(NORTH, WEST) in ccw
        assert Turn(WEST, SOUTH) in ccw
        assert Turn(SOUTH, EAST) in ccw

    def test_cycle_turns_chain(self):
        """Each turn's outgoing direction is the next turn's incoming."""
        for cycle in plane_cycles(0, 1):
            for a, b in zip(cycle.turns, cycle.turns[1:] + cycle.turns[:1]):
                assert a.to == b.frm

    def test_degenerate_plane_rejected(self):
        with pytest.raises(ValueError):
            plane_cycles(2, 2)


class TestCycleCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_n_times_n_minus_1_cycles(self, n):
        """Section 2: n(n-1) abstract cycles in an n-dimensional mesh."""
        cycles = abstract_cycles(n)
        assert len(cycles) == n * (n - 1)
        assert len(cycles) == count_abstract_cycles(n)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_theorem_1_minimum_is_a_quarter_of_turns(self, n):
        """Theorem 1: at least n(n-1) turns — a quarter — must go."""
        assert minimum_prohibited_turns(n) == n * (n - 1)
        assert minimum_prohibited_turns(n) * 4 == len(ninety_degree_turns(n))


class TestBreaking:
    def test_empty_prohibition_breaks_nothing(self):
        assert len(unbroken_cycles(2, [])) == 2
        assert not breaks_all_abstract_cycles(2, [])

    def test_one_turn_per_cycle_suffices_for_the_necessary_condition(self):
        prohibited = {Turn(NORTH, WEST), Turn(NORTH, EAST)}  # north-last
        assert breaks_all_abstract_cycles(2, prohibited)

    def test_two_turns_from_same_cycle_leave_other_intact(self):
        ccw, cw = plane_cycles(0, 1)
        prohibited = set(ccw.turns[:2])
        left = unbroken_cycles(2, prohibited)
        assert len(left) == 1 and left[0].clockwise

    def test_xy_prohibition_breaks_everything(self):
        from repro.core import TurnModel

        assert TurnModel.xy(3).breaks_all_cycles()

    def test_enumeration_of_two_turn_prohibitions(self):
        """Section 3: there are 16 ways to prohibit one turn per cycle."""
        pairs = two_turn_prohibitions_2d()
        assert len(pairs) == 16
        assert all(len(p) == 2 for p in pairs)
        assert all(breaks_all_abstract_cycles(2, p) for p in pairs)
        # All 16 are distinct.
        assert len({frozenset(p) for p in pairs}) == 16
