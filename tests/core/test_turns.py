"""Tests for turn enumeration and classification (Section 2)."""

import pytest

from repro.core import Turn, TurnKind, count_ninety_degree_turns, ninety_degree_turns
from repro.core.turns import one_eighty_degree_turns, turns_in_plane
from repro.topology import Direction, EAST, NORTH, SOUTH, WEST


class TestTurnClassification:
    def test_ninety_degree(self):
        assert Turn(EAST, NORTH).kind is TurnKind.NINETY

    def test_one_eighty_degree(self):
        assert Turn(EAST, WEST).kind is TurnKind.ONE_EIGHTY

    def test_straight(self):
        assert Turn(EAST, EAST).kind is TurnKind.STRAIGHT

    def test_plane(self):
        assert Turn(EAST, NORTH).plane == (0, 1)
        assert Turn(Direction(3, 1), Direction(1, -1)).plane == (1, 3)

    def test_turn_ordering_and_hash(self):
        a, b = Turn(EAST, NORTH), Turn(EAST, NORTH)
        assert a == b and len({a, b}) == 1


class TestTurnCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_ninety_degree_count_matches_4n_n_minus_1(self, n):
        """Section 2: a packet has 4n(n-1) possible 90-degree turns."""
        turns = ninety_degree_turns(n)
        assert len(turns) == 4 * n * (n - 1)
        assert len(turns) == count_ninety_degree_turns(n)
        assert len(set(turns)) == len(turns)

    def test_2d_has_eight_turns(self):
        """The eight 90-degree turns of Figure 2."""
        turns = set(ninety_degree_turns(2))
        assert len(turns) == 8
        expected = {
            Turn(WEST, NORTH), Turn(WEST, SOUTH),
            Turn(EAST, NORTH), Turn(EAST, SOUTH),
            Turn(NORTH, WEST), Turn(NORTH, EAST),
            Turn(SOUTH, WEST), Turn(SOUTH, EAST),
        }
        assert turns == expected

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_reversal_count(self, n):
        assert len(one_eighty_degree_turns(n)) == 2 * n

    def test_turns_in_plane(self):
        assert len(turns_in_plane(3, 0, 2)) == 8
        assert all(t.plane == (0, 2) for t in turns_in_plane(3, 2, 0))

    def test_turns_in_plane_rejects_degenerate(self):
        with pytest.raises(ValueError):
            turns_in_plane(3, 1, 1)

    def test_each_direction_has_2n_minus_2_turns(self):
        """Section 2: each of the 2n directions offers 2n-2 turns."""
        n = 4
        for frm in (Direction(d, s) for d in range(n) for s in (-1, 1)):
            outgoing = [t for t in ninety_degree_turns(n) if t.frm == frm]
            assert len(outgoing) == 2 * n - 2
