"""Tests for the TurnModel prohibition sets (Sections 2-4)."""

import pytest

from repro.core import PAPER_TURN_MODELS_2D, Turn, TurnModel
from repro.core.turns import ninety_degree_turns
from repro.topology import Direction, EAST, NORTH, SOUTH, WEST


class TestXYModel:
    def test_prohibits_exactly_figure_3(self):
        """xy allows only the four turns out of a dimension-0 heading."""
        model = TurnModel.xy()
        assert model.prohibited == frozenset(
            {
                Turn(NORTH, WEST), Turn(NORTH, EAST),
                Turn(SOUTH, WEST), Turn(SOUTH, EAST),
            }
        )

    def test_half_of_all_turns_prohibited(self):
        for n in (2, 3, 4):
            model = TurnModel.xy(n)
            assert model.prohibited_fraction() == pytest.approx(0.5)

    def test_not_minimal_prohibition(self):
        assert not TurnModel.xy().is_minimal_prohibition()

    def test_breaks_all_cycles(self):
        assert TurnModel.xy(4).breaks_all_cycles()


class TestWestFirstModel:
    def test_prohibits_the_two_turns_into_west(self):
        """Figure 5a."""
        model = TurnModel.west_first()
        assert model.prohibited == frozenset(
            {Turn(NORTH, WEST), Turn(SOUTH, WEST)}
        )

    def test_is_minimal_and_breaks_cycles(self):
        for n in (2, 3, 4, 5):
            model = TurnModel.west_first(n)
            assert model.is_minimal_prohibition()
            assert model.breaks_all_cycles()
            assert model.prohibited_fraction() == pytest.approx(0.25)


class TestNorthLastModel:
    def test_prohibits_the_two_turns_out_of_north(self):
        """Figure 9a."""
        model = TurnModel.north_last()
        assert model.prohibited == frozenset(
            {Turn(NORTH, WEST), Turn(NORTH, EAST)}
        )

    def test_is_minimal_and_breaks_cycles(self):
        for n in (2, 3, 4, 5):
            model = TurnModel.north_last(n)
            assert model.is_minimal_prohibition()
            assert model.breaks_all_cycles()


class TestNegativeFirstModel:
    def test_prohibits_positive_to_negative(self):
        """Figure 10a."""
        model = TurnModel.negative_first()
        assert model.prohibited == frozenset(
            {Turn(EAST, SOUTH), Turn(NORTH, WEST)}
        )

    def test_is_minimal_and_breaks_cycles(self):
        for n in (2, 3, 4, 5):
            model = TurnModel.negative_first(n)
            assert model.is_minimal_prohibition()
            assert model.breaks_all_cycles()


class TestIsAllowed:
    def test_straight_always_allowed(self):
        for model in PAPER_TURN_MODELS_2D:
            for d in (EAST, WEST, NORTH, SOUTH):
                assert model.is_allowed(d, d)

    def test_reversals_prohibited_by_default(self):
        for model in PAPER_TURN_MODELS_2D:
            for d in (EAST, WEST, NORTH, SOUTH):
                assert not model.is_allowed(d, d.opposite)

    def test_allow_180_opt_in(self):
        model = TurnModel.from_prohibited(
            "wf+reverse",
            2,
            TurnModel.west_first().prohibited,
            allow_180=[Turn(WEST, EAST)],
        )
        assert model.is_allowed(WEST, EAST)
        assert not model.is_allowed(EAST, WEST)

    def test_west_first_allows_six_turns(self):
        model = TurnModel.west_first()
        assert len(model.allowed_turns()) == 6

    def test_allowed_next_directions_from_injection(self):
        model = TurnModel.west_first()
        assert set(model.allowed_next_directions(None)) == {
            EAST, WEST, NORTH, SOUTH,
        }

    def test_allowed_next_directions_from_heading(self):
        model = TurnModel.west_first()
        assert set(model.allowed_next_directions(NORTH)) == {NORTH, EAST}
        assert set(model.allowed_next_directions(WEST)) == {
            WEST, NORTH, SOUTH,
        }


class TestValidation:
    def test_prohibited_must_be_ninety_degree(self):
        with pytest.raises(ValueError):
            TurnModel.from_prohibited("bad", 2, [Turn(EAST, WEST)])

    def test_prohibited_must_fit_dimensions(self):
        bad = Turn(Direction(2, 1), Direction(0, 1))
        with pytest.raises(ValueError):
            TurnModel.from_prohibited("bad", 2, [bad])

    def test_allow_180_must_be_reversals(self):
        with pytest.raises(ValueError):
            TurnModel.from_prohibited(
                "bad", 2, [], allow_180=[Turn(EAST, NORTH)]
            )


class TestTotality:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_paper_models_prohibit_disjoint_quarter(self, n):
        """Each of the three adaptive models prohibits exactly n(n-1)
        turns, all distinct 90-degree turns."""
        for factory in (
            TurnModel.west_first,
            TurnModel.north_last,
            TurnModel.negative_first,
        ):
            model = factory(n)
            assert len(model.prohibited) == n * (n - 1)
            assert model.prohibited <= set(ninety_degree_turns(n))
