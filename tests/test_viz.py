"""Tests for the ASCII rendering helpers."""

import pytest

from repro.core import TurnModel, west_first_numbering
from repro.routing import XY, walk
from repro.topology import EAST, Mesh2D
from repro.viz import (
    render_channel_numbering,
    render_mesh_paths,
    render_turn_set,
)


class TestRenderMeshPaths:
    def test_marks_endpoints(self):
        mesh = Mesh2D(4, 4)
        path = walk(XY(mesh), mesh.node_xy(0, 0), mesh.node_xy(3, 3))
        art = render_mesh_paths(mesh, [path])
        assert "S" in art and "D" in art
        assert art.count("S") == 1 and art.count("D") == 1

    def test_arrow_count_equals_hops(self):
        mesh = Mesh2D(5, 5)
        path = walk(XY(mesh), mesh.node_xy(0, 0), mesh.node_xy(4, 2))
        art = render_mesh_paths(mesh, [path])
        arrows = sum(art.count(a) for a in "<>^v")
        assert arrows == len(path) - 1

    def test_north_is_printed_first(self):
        mesh = Mesh2D(3, 3)
        path = walk(XY(mesh), mesh.node_xy(0, 0), mesh.node_xy(0, 2))
        art = render_mesh_paths(mesh, [path])
        lines = [line for line in art.splitlines() if line.strip()]
        # The destination (north) appears before the source (south).
        assert lines[0].startswith("D")
        assert lines[-1].startswith("S")

    def test_shared_edges_marked(self):
        mesh = Mesh2D(4, 4)
        a = walk(XY(mesh), mesh.node_xy(0, 0), mesh.node_xy(3, 0))
        b = walk(XY(mesh), mesh.node_xy(1, 0), mesh.node_xy(3, 0))
        art = render_mesh_paths(mesh, [a, b])
        assert "*" in art

    def test_labels_included(self):
        mesh = Mesh2D(3, 3)
        path = walk(XY(mesh), 0, 8)
        art = render_mesh_paths(mesh, [path], labels=["hello"])
        assert "path 1: hello" in art


class TestRenderTurnSet:
    def test_west_first_rendering(self):
        art = render_turn_set(TurnModel.west_first())
        assert "travelling south" in art
        assert "prohibited: west" in art
        assert "2/8" in art

    def test_xy_rendering(self):
        art = render_turn_set(TurnModel.xy())
        assert "4/8" in art

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            render_turn_set(TurnModel.negative_first(3))


class TestRenderNumbering:
    def test_eastward_numbers_grid(self):
        mesh = Mesh2D(4, 4)
        numbering = west_first_numbering(mesh)
        art = render_channel_numbering(mesh, numbering, EAST)
        assert "east" in art
        # One row per mesh row plus the header.
        assert len(art.splitlines()) == 5
