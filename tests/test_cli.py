"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, make_pattern, parse_topology
from repro.topology import Hypercube, KAryNCube, Mesh2D


class TestParsers:
    def test_mesh_spec(self):
        topo = parse_topology("mesh:5x3")
        assert isinstance(topo, Mesh2D)
        assert topo.dims == (5, 3)

    def test_mesh_3d_spec(self):
        assert parse_topology("mesh:3x3x3").n_dims == 3

    def test_cube_spec(self):
        topo = parse_topology("cube:6")
        assert isinstance(topo, Hypercube)
        assert topo.order == 6

    def test_torus_spec(self):
        topo = parse_topology("torus:8x2")
        assert isinstance(topo, KAryNCube)
        assert topo.k == 8 and topo.n_dims == 2

    def test_bad_specs_exit(self):
        for bad in ("mesh", "ring:5", "mesh:ax2", "cube:"):
            with pytest.raises(SystemExit):
                parse_topology(bad)

    def test_pattern_transpose_dispatches_on_topology(self):
        mesh_pat = make_pattern("transpose", Mesh2D(4, 4))
        cube_pat = make_pattern("transpose", Hypercube(4))
        assert type(mesh_pat).__name__ == "MeshTransposePattern"
        assert type(cube_pat).__name__ == "HypercubeTransposePattern"

    def test_unknown_pattern_exits(self):
        with pytest.raises(SystemExit):
            make_pattern("nope", Mesh2D(4, 4))


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "west-first" in out and "uniform" in out and "fig13" in out

    def test_verify_good_algorithm(self, capsys):
        code = main(
            ["verify", "west-first", "--topology", "mesh:4x4", "--connectivity"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deadlock free = True" in out
        assert "240/240" in out

    def test_turns(self, capsys):
        assert main(["turns", "negative-first"]) == 0
        assert "prohibited" in capsys.readouterr().out

    def test_turns_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["turns", "mystery"])

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "xy",
                "--topology", "mesh:4x4",
                "--pattern", "uniform",
                "--load", "0.5",
                "--warmup", "100",
                "--cycles", "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xy" in out and "uniform" in out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep", "negative-first",
                "--topology", "mesh:4x4",
                "--loads", "0.3,0.6",
                "--warmup", "100",
                "--cycles", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max sustainable throughput" in out

    def test_simulate_array_backend_matches_event(self, capsys):
        pytest.importorskip("numpy")
        outputs = []
        for backend in ("event", "array"):
            code = main(
                [
                    "simulate", "west-first",
                    "--topology", "mesh:4x4",
                    "--load", "0.8",
                    "--warmup", "100",
                    "--cycles", "500",
                    "--backend", backend,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]  # bit-identical backends

    def test_sweep_array_backend(self, capsys):
        pytest.importorskip("numpy")
        code = main(
            [
                "sweep", "west-first",
                "--topology", "mesh:4x4",
                "--loads", "0.3,0.6",
                "--warmup", "100",
                "--cycles", "400",
                "--backend", "array",
                "--no-cache",
            ]
        )
        assert code == 0
        assert "max sustainable throughput" in capsys.readouterr().out

    def test_sweep_array_backend_prints_vectorized_coverage(self, capsys):
        pytest.importorskip("numpy")
        code = main(
            [
                "sweep", "west-first",
                "--topology", "mesh:4x4",
                "--loads", "0.3",
                "--warmup", "100",
                "--cycles", "400",
                "--backend", "array",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[array backend: 1/1 point(s) vectorized (100%)]" in out

    def test_sweep_array_backend_prints_demotion_reasons(self, capsys):
        pytest.importorskip("numpy")
        code = main(
            [
                "sweep", "west-first",
                "--topology", "mesh:4x4",
                "--loads", "0.3",
                "--warmup", "100",
                "--cycles", "400",
                "--selection", "random",
                "--backend", "array",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0/1 point(s) vectorized (0%)" in out
        assert "demoted by output-selection x1" in out

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "xy",
                    "--topology", "mesh:4x4",
                    "--load", "0.5",
                    "--backend", "gpu",
                ]
            )

    def test_figure_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_runs_harness(self, capsys, monkeypatch):
        from repro.analysis.sweep import SweepSeries
        import repro.cli as cli

        def fake_harness(preset, progress=None, runner=None):
            return [SweepSeries("xy", "uniform", [])]

        monkeypatch.setitem(cli.FIGURE_HARNESSES, "fig13", fake_harness)
        assert main(["figure", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "xy" in out

    def test_figure_accepts_bare_paper_number(self, capsys, monkeypatch):
        from repro.analysis.sweep import SweepSeries
        import repro.cli as cli

        seen = {}

        def fake_harness(preset, progress=None, runner=None):
            seen["preset"] = preset
            seen["runner"] = runner
            return [SweepSeries("xy", "uniform", [])]

        monkeypatch.setitem(cli.FIGURE_HARNESSES, "fig13", fake_harness)
        assert main(["figure", "13", "--no-cache", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert seen["runner"].jobs == 2
        assert seen["runner"].cache is None

    def test_figure_preset_full(self, capsys, monkeypatch):
        from repro.analysis import FULL
        from repro.analysis.sweep import SweepSeries
        import repro.cli as cli

        seen = {}

        def fake_harness(preset, progress=None, runner=None):
            seen["preset"] = preset
            return [SweepSeries("xy", "uniform", [])]

        monkeypatch.setitem(cli.FIGURE_HARNESSES, "fig13", fake_harness)
        assert main(["figure", "13", "--preset", "full", "--no-cache"]) == 0
        assert seen["preset"] is FULL

    def test_sweep_parallel_with_cache_dir(self, capsys, tmp_path):
        argv = [
            "sweep", "xy",
            "--topology", "mesh:4x4",
            "--loads", "0.3,0.6",
            "--warmup", "100",
            "--cycles", "400",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 simulated, 0 cached" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 cached" in second

        # The cached table rows are byte-identical to the simulated ones
        # (progress lines are excluded: with --jobs 2 they print in
        # completion order, which is not deterministic).
        import re

        table = lambda out: [  # noqa: E731
            line
            for line in out.splitlines()
            if re.match(r"^\s+\d", line)
        ]
        assert table(first) == table(second)
        assert len(table(first)) == 2

    def test_verify_reports_cycle_for_unsafe_relation(self, capsys):
        # The torus classified-NF is safe; spot-check the exit code of a
        # safe verify equals 0 (the unsafe path is covered by unit tests
        # of verify_turn_set; the CLI only exposes registered safe
        # algorithms).
        code = main(["verify", "p-cube", "--topology", "cube:4"])
        assert code == 0

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_simulate_with_virtual_channels(self, capsys):
        code = main(
            [
                "simulate", "dateline",
                "--topology", "torus:5x2",
                "--vc", "2",
                "--load", "0.5",
                "--warmup", "100",
                "--cycles", "600",
            ]
        )
        assert code == 0
        assert "dateline" in capsys.readouterr().out


class TestFaultsCommand:
    def test_faults_text_report(self, capsys):
        code = main(
            [
                "faults",
                "--topology", "mesh:5x5",
                "--algorithms", "xy,west-first",
                "--faults", "0,2",
                "--trials", "1",
                "--warmup", "200",
                "--cycles", "800",
                "--drain", "800",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign: mesh:5x5" in out
        assert "xy" in out and "west-first" in out
        assert "ratio" in out

    def test_faults_json_report(self, capsys):
        import json

        code = main(
            [
                "faults",
                "--topology", "mesh:4x4",
                "--algorithms", "xy",
                "--faults", "1",
                "--trials", "1",
                "--warmup", "100",
                "--cycles", "400",
                "--drain", "400",
                "--no-cache",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["topology"] == "mesh:4x4"
        assert data["cells"][0]["algorithm"] == "xy"
        assert "overall" in data

    def test_faults_bad_fault_list_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "--faults", "1,x", "--no-cache"])

    def test_faults_empty_algorithms_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "--algorithms", ",", "--no-cache"])

    def test_faults_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "faults",
                    "--topology", "mesh:4x4",
                    "--algorithms", "mystery",
                    "--faults", "1",
                    "--trials", "1",
                    "--cycles", "200",
                    "--no-cache",
                ]
            )


class TestRobustnessFlagValidation:
    def test_non_positive_deadlock_threshold_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "xy", "--deadlock-threshold", "0"])

    def test_negative_packet_timeout_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "xy", "--packet-timeout", "-5"])

    def test_negative_max_retries_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "--max-retries", "-1"])

    def test_non_positive_backoff_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "xy", "--retry-backoff-base", "0"])
        with pytest.raises(SystemExit):
            main(["simulate", "xy", "--retry-backoff-cap", "-3"])

    def test_non_integer_threshold_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "xy", "--deadlock-threshold", "many"])

    def test_simulate_accepts_watchdog_knobs(self, capsys):
        code = main(
            [
                "simulate", "xy",
                "--topology", "mesh:4x4",
                "--load", "0.5",
                "--warmup", "100",
                "--cycles", "400",
                "--packet-timeout", "500",
                "--max-retries", "1",
                "--deadlock-threshold", "2000",
            ]
        )
        assert code == 0
        assert "xy" in capsys.readouterr().out


class TestSelectionFlags:
    def test_unknown_policy_rejected_with_valid_list(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "xy", "--selection", "bogus"])
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "invalid choice" in err and "bogus" in err
        # The error names every valid policy.
        for name in ("max-credits", "round-robin", "threshold", "xy"):
            assert name in err

    def test_help_documents_the_selection_flag(self, capsys):
        for command in ("simulate", "sweep", "figure", "faults", "trace"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "--selection" in out, f"{command} --help lacks --selection"
            assert "--selection-threshold" in out

    def test_negative_selection_threshold_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "xy", "--selection-threshold", "-1"])

    def test_simulate_with_congestion_policy(self, capsys):
        code = main(
            [
                "simulate", "west-first",
                "--topology", "mesh:4x4",
                "--pattern", "transpose",
                "--load", "1.0",
                "--warmup", "100",
                "--cycles", "400",
                "--selection", "max-credits",
            ]
        )
        assert code == 0
        assert "west-first" in capsys.readouterr().out

    def test_list_shows_selection_policies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "selection" in out and "max-credits" in out


class TestSelectionCommand:
    TINY = [
        "selection",
        "--topology", "mesh:4x4",
        "--algorithms", "west-first",
        "--patterns", "uniform",
        "--policies", "xy,max-credits",
        "--loads", "0.5,1.5",
        "--warmup", "50",
        "--cycles", "200",
        "--fault-links", "0",
        "--no-cache",
    ]

    def test_text_report(self, capsys):
        assert main(list(self.TINY)) == 0
        out = capsys.readouterr().out
        assert "selection-policy comparison: mesh:4x4" in out
        assert "max-credits" in out and "vs xy" in out

    def test_json_report(self, capsys):
        assert main(list(self.TINY) + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["topology"] == "mesh:4x4"
        assert data["fault_links"] == 0
        assert {s["policy"] for s in data["series"]} == {"xy", "max-credits"}
        assert data["deltas_vs_xy"][0]["policy"] == "max-credits"

    def test_unknown_policy_exits_listing_known(self, capsys):
        argv = list(self.TINY)
        argv[argv.index("xy,max-credits")] = "xy,mystery"
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert "mystery" in str(excinfo.value)
        assert "round-robin" in str(excinfo.value)

    def test_bad_loads_exits(self):
        argv = list(self.TINY)
        argv[argv.index("0.5,1.5")] = "0.5,x"
        with pytest.raises(SystemExit):
            main(argv)


class TestBenchCommand:
    def _patch_tiny_points(self, monkeypatch):
        import repro.cli as cli
        from repro.analysis.bench import BenchPoint

        tiny = [
            BenchPoint(
                id="tiny", topology="mesh:4x4", algorithm="west-first",
                pattern="uniform", offered_load=1.0, warmup_cycles=50,
                measure_cycles=200, seed=3, quick=True,
            )
        ]
        monkeypatch.setattr(cli, "bench_points", lambda quick=False: tiny)

    def test_bench_writes_report(self, capsys, monkeypatch, tmp_path):
        self._patch_tiny_points(monkeypatch)
        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--repeats", "1", "--out", str(out),
             "--label", "test run"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "tiny" in text and "cycles/s" in text
        report = json.loads(out.read_text())
        assert report["label"] == "test run"
        assert "tiny" in report["points"]

    def test_bench_gate_passes_against_itself(self, capsys, monkeypatch, tmp_path):
        self._patch_tiny_points(monkeypatch)
        committed = tmp_path / "committed.json"
        assert main(["bench", "--repeats", "1", "--out", str(committed)]) == 0
        capsys.readouterr()
        code = main(
            ["bench", "--repeats", "1", "--check-against", str(committed),
             # The tiny point runs in ~ms: absorb scheduler noise so the
             # test only exercises the (deterministic) fingerprint gate.
             "--fail-threshold", "0.95"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_gate_fails_on_fingerprint_change(
        self, capsys, monkeypatch, tmp_path
    ):
        self._patch_tiny_points(monkeypatch)
        committed = tmp_path / "committed.json"
        assert main(["bench", "--repeats", "1", "--out", str(committed)]) == 0
        data = json.loads(committed.read_text())
        data["points"]["tiny"]["fingerprint"][0] += 1
        committed.write_text(json.dumps(data))
        capsys.readouterr()
        code = main(
            ["bench", "--repeats", "1", "--check-against", str(committed),
             "--fail-threshold", "0.95"]
        )
        assert code == 1
        assert "fingerprint" in capsys.readouterr().err


class TestSupervisionFlags:
    """The crash-tolerance knobs threaded through the batch commands
    (docs/RESILIENCE.md)."""

    SWEEP = [
        "sweep", "xy",
        "--topology", "mesh:4x4",
        "--loads", "0.3,0.6",
        "--warmup", "100",
        "--cycles", "400",
    ]

    def test_journal_then_resume_skips_done_points(self, capsys, tmp_path):
        argv = self.SWEEP + [
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(tmp_path / "campaign.jsonl"),
        ]
        assert main(argv) == 0
        assert "2 simulated, 0 cached" in capsys.readouterr().out

        # --force normally re-simulates; journaled points are exempt.
        assert main(argv + ["--resume", "--force"]) == 0
        assert "0 simulated, 2 cached" in capsys.readouterr().out

    def test_resume_without_journal_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--resume"])

    def test_keep_going_failure_exits_3_with_manifest(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.cli as cli
        from repro.analysis import chaos_batch

        # Wrap every spec the sweep submits in a permanently raising
        # chaos harness, so the command exercises the failure path.
        original = cli.ParallelSweepRunner.run_batch

        def sabotaged(self, specs, progress=None):
            return original(
                self,
                chaos_batch(
                    specs,
                    chaos_seed=0,
                    failure_rate=1.1,
                    fail_attempts=10 ** 9,
                ),
                progress=progress,
            )

        monkeypatch.setattr(
            cli.ParallelSweepRunner, "run_batch", sabotaged
        )
        manifest = tmp_path / "manifest.jsonl"
        code = main(
            self.SWEEP + [
                "--no-cache",
                "--keep-going",
                "--point-timeout", "5",
                "--failure-manifest", str(manifest),
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "permanently failed" in err
        lines = manifest.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(
            json.loads(line)["cause"] in ("crash", "timeout", "exception")
            for line in lines
        )

    def test_bad_supervision_values_exit(self):
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--point-timeout", "0"])
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--max-point-retries", "-1"])

    def test_saturation_command(self, capsys):
        code = main(
            [
                "saturation",
                "--topology", "mesh:4x4",
                "--algorithms", "xy,west-first",
                "--warmup", "100",
                "--cycles", "400",
                "--iterations", "2",
                "--high", "4.0",
                "--jobs", "2",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xy" in out and "west-first" in out

    def test_saturation_json(self, capsys):
        code = main(
            [
                "saturation",
                "--topology", "mesh:4x4",
                "--algorithms", "xy",
                "--warmup", "100",
                "--cycles", "400",
                "--iterations", "1",
                "--high", "4.0",
                "--no-cache",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points"][0]["algorithm"] == "xy"
