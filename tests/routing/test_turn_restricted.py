"""Tests for TurnRestrictedMinimal: maximal minimal-adaptive routing
under an arbitrary prohibition set."""

import random

import pytest

from repro.core import Turn, TurnModel
from repro.routing import (
    NegativeFirst,
    TurnRestrictedMinimal,
    WestFirst,
    walk,
)
from repro.topology import EAST, Mesh, Mesh2D, NORTH, WEST
from repro.verification import verify_algorithm


class TestAgainstPhaseAlgorithms:
    def test_equals_west_first_everywhere(self):
        mesh = Mesh2D(5, 5)
        maximal = TurnRestrictedMinimal(mesh, TurnModel.west_first())
        reference = WestFirst(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src != dst:
                    assert maximal.candidates(src, dst) == reference.candidates(
                        src, dst
                    )

    def test_equals_negative_first_on_3d(self):
        mesh = Mesh((3, 3, 3))
        maximal = TurnRestrictedMinimal(mesh, TurnModel.negative_first(3))
        reference = NegativeFirst(mesh)
        rng = random.Random(0)
        for _ in range(150):
            src, dst = rng.randrange(27), rng.randrange(27)
            if src != dst:
                assert maximal.candidates(src, dst) == reference.candidates(
                    src, dst
                )


class TestArbitraryModels:
    def test_empty_prohibition_is_fully_adaptive(self):
        mesh = Mesh2D(5, 5)
        maximal = TurnRestrictedMinimal(
            mesh, TurnModel.from_prohibited("none", 2, set())
        )
        src, dst = mesh.node_xy(1, 1), mesh.node_xy(3, 4)
        assert set(maximal.candidates(src, dst)) == {EAST, NORTH}

    def test_prunes_moves_that_lead_to_dead_ends(self):
        """Under west-first prohibitions, a packet must not start north
        when westward work remains — north can never re-enter west."""
        mesh = Mesh2D(5, 5)
        maximal = TurnRestrictedMinimal(mesh, TurnModel.west_first())
        src, dst = mesh.node_xy(3, 1), mesh.node_xy(1, 3)
        assert maximal.candidates(src, dst) == [WEST]

    def test_bad_model_loses_connectivity(self):
        """The Figure 4 pair leaves some pairs without any minimal path."""
        mesh = Mesh2D(4, 4)
        bad = TurnModel.from_prohibited(
            "figure-4", 2, {Turn(EAST, NORTH), Turn(NORTH, EAST)}
        )
        alg = TurnRestrictedMinimal(mesh, bad)
        assert alg.candidates(mesh.node_xy(0, 0), mesh.node_xy(1, 1)) == []

    def test_respects_heading_filter(self):
        mesh = Mesh2D(5, 5)
        maximal = TurnRestrictedMinimal(mesh, TurnModel.north_last())
        # Travelling north, continuing north is legal...
        src, straight_up = mesh.node_xy(2, 2), mesh.node_xy(2, 4)
        assert maximal.candidates(src, straight_up, NORTH) == [NORTH]
        # ...but a destination needing east as well is unreachable from a
        # northbound heading (north-last prohibits both turns out of
        # north), and the maximal relation correctly reports a dead end.
        assert maximal.candidates(src, mesh.node_xy(3, 3), NORTH) == []

    def test_memoisation_is_stable(self):
        mesh = Mesh2D(6, 6)
        maximal = TurnRestrictedMinimal(mesh, TurnModel.negative_first())
        src, dst = mesh.node_xy(4, 1), mesh.node_xy(1, 4)
        first = maximal.candidates(src, dst)
        second = maximal.candidates(src, dst)
        assert first == second

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TurnRestrictedMinimal(Mesh2D(4, 4), TurnModel.negative_first(3))

    def test_name_mentions_model(self):
        alg = TurnRestrictedMinimal(Mesh2D(3, 3), TurnModel.xy())
        assert "xy" in alg.name


class TestSafetyOfSafeModels:
    def test_all_safe_two_turn_models_route_and_verify(self):
        """Every safe two-turn prohibition yields a deadlock-free,
        connected-where-possible routing function."""
        from repro.core import two_turn_prohibitions_2d
        from repro.verification import turn_set_is_deadlock_free

        mesh = Mesh2D(4, 4)
        rng = random.Random(1)
        for pair in two_turn_prohibitions_2d():
            model = TurnModel.from_prohibited("pair", 2, pair)
            if not turn_set_is_deadlock_free(mesh, model):
                continue
            alg = TurnRestrictedMinimal(mesh, model)
            assert verify_algorithm(alg).deadlock_free
            for _ in range(40):
                src, dst = rng.randrange(16), rng.randrange(16)
                if src == dst:
                    continue
                if alg.candidates(src, dst):
                    path = walk(alg, src, dst, rng=rng)
                    assert len(path) - 1 == mesh.distance(src, dst)
