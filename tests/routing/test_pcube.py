"""Tests for p-cube routing (Section 5, Figures 11 and 12)."""

import random

import pytest

from repro.routing import NegativeFirst, NonminimalPCube, PCube, walk
from repro.topology import Hypercube, Mesh2D


class TestPCubeMinimal:
    def setup_method(self):
        self.cube = Hypercube(6)
        self.alg = PCube(self.cube)

    def test_phase1_clears_ones(self):
        src, dst = 0b110100, 0b001100
        cands = self.alg.candidates(src, dst)
        # c & ~d = 110000: dims 4 and 5, both negative moves.
        assert {(d.dim, d.sign) for d in cands} == {(4, -1), (5, -1)}

    def test_phase2_sets_zeros_once_ones_cleared(self):
        src, dst = 0b001100, 0b001111
        cands = self.alg.candidates(src, dst)
        assert {(d.dim, d.sign) for d in cands} == {(0, +1), (1, +1)}

    def test_at_destination_no_candidates(self):
        assert self.alg.candidates(42, 42) == []

    def test_figure_11_step_order(self):
        """R = C AND NOT D first; only if zero, R = NOT C AND D."""
        src, dst = 0b101010, 0b010101
        cands = self.alg.candidates(src, dst)
        assert all(d.is_negative for d in cands)

    def test_equals_negative_first_on_hypercube(self):
        """p-cube is the hypercube special case of negative-first."""
        nf = NegativeFirst(self.cube)
        for src in self.cube.nodes():
            for dst in self.cube.nodes():
                assert self.alg.candidates(src, dst) == nf.candidates(src, dst)

    def test_delivers_minimally(self):
        rng = random.Random(2)
        for _ in range(300):
            src = rng.randrange(64)
            dst = rng.randrange(64)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            assert len(path) - 1 == self.cube.hamming(src, dst)

    def test_rejects_non_hypercube(self):
        with pytest.raises(ValueError):
            PCube(Mesh2D(4, 4))

    def test_honest_dead_end_on_unreachable_state(self):
        """Phase-1 work pending after a positive hop cannot happen; the
        function reports a dead end instead of a prohibited turn."""
        from repro.topology import Direction

        src, dst = 0b100000, 0b000001
        assert self.alg.candidates(src, dst, Direction(3, +1)) == []


class TestPCubeNonminimal:
    def setup_method(self):
        self.cube = Hypercube(6)
        self.alg = NonminimalPCube(self.cube)

    def test_escapes_are_shared_one_dimensions(self):
        src, dst = 0b110100, 0b001100
        escapes = self.alg.escape_candidates(src, dst)
        # c & d = 000100: dimension 2.
        assert {(d.dim, d.sign) for d in escapes} == {(2, -1)}

    def test_no_escapes_in_phase2(self):
        src, dst = 0b001100, 0b001111
        assert self.alg.escape_candidates(src, dst) == []

    def test_no_escapes_after_positive_heading(self):
        from repro.topology import Direction

        src, dst = 0b110100, 0b001100
        assert self.alg.escape_candidates(src, dst, Direction(1, +1)) == []

    def test_escape_counts_match_section5_table(self):
        """The '+2' column: nonminimal choices at the first three hops."""
        cube = Hypercube(10)
        alg = NonminimalPCube(cube)
        src = cube.node_from_address_str("1011010100")
        dst = cube.node_from_address_str("0010111001")
        assert len(alg.escape_candidates(src, dst)) == 2

    def test_escape_then_minimal_completes(self):
        rng = random.Random(4)
        minimal = PCube(self.cube)
        for _ in range(200):
            src = rng.randrange(64)
            dst = rng.randrange(64)
            if src == dst:
                continue
            for esc in self.alg.escape_candidates(src, dst):
                nbr = self.cube.neighbor(src, esc)
                assert nbr is not None
                walk(minimal, nbr, dst, initial_direction=esc)

    def test_is_not_minimal(self):
        assert not self.alg.is_minimal
        assert PCube(self.cube).is_minimal
