"""Tests for west-first, north-last, and negative-first on 2D meshes
(Section 3)."""

import random

import pytest

from repro.core import TurnModel
from repro.routing import (
    NegativeFirst,
    NorthLast,
    WestFirst,
    directions_of_path,
    path_respects_turn_model,
    walk,
)
from repro.topology import EAST, Mesh, Mesh2D, NORTH, SOUTH, WEST


class TestWestFirst:
    def setup_method(self):
        self.mesh = Mesh2D(8, 8)
        self.alg = WestFirst(self.mesh)

    def test_west_destinations_route_west_only(self):
        src = self.mesh.node_xy(5, 3)
        dst = self.mesh.node_xy(2, 6)
        assert self.alg.candidates(src, dst) == [WEST]

    def test_east_destinations_fully_adaptive(self):
        src = self.mesh.node_xy(2, 2)
        dst = self.mesh.node_xy(5, 5)
        assert self.alg.candidates(src, dst) == [EAST, NORTH]

    def test_after_west_phase_adaptive(self):
        src = self.mesh.node_xy(2, 3)
        dst = self.mesh.node_xy(2, 6)
        assert self.alg.candidates(src, dst) == [NORTH]

    def test_all_paths_respect_turn_model(self):
        model = TurnModel.west_first()
        rng = random.Random(42)
        for _ in range(300):
            src = rng.randrange(self.mesh.num_nodes)
            dst = rng.randrange(self.mesh.num_nodes)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            assert path_respects_turn_model(self.mesh, path, model)
            assert len(path) - 1 == self.mesh.distance(src, dst)

    def test_never_offers_prohibited_turn_given_heading(self):
        """Even on unreachable states, candidates honour the heading."""
        node = self.mesh.node_xy(4, 4)
        west_dst = self.mesh.node_xy(1, 4)
        # A packet "travelling east" can never legally need west; the
        # function reports a dead end rather than a 180-degree turn.
        assert self.alg.candidates(node, west_dst, EAST) == []

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            WestFirst(Mesh((3, 3, 3)))

    def test_name_and_properties(self):
        assert self.alg.name == "west-first"
        assert self.alg.is_adaptive
        assert self.alg.is_minimal


class TestNorthLast:
    def setup_method(self):
        self.mesh = Mesh2D(8, 8)
        self.alg = NorthLast(self.mesh)

    def test_north_deferred_while_other_work_remains(self):
        src = self.mesh.node_xy(2, 2)
        dst = self.mesh.node_xy(5, 5)
        assert NORTH not in self.alg.candidates(src, dst)

    def test_north_taken_when_last(self):
        src = self.mesh.node_xy(5, 2)
        dst = self.mesh.node_xy(5, 6)
        assert self.alg.candidates(src, dst) == [NORTH]

    def test_south_destinations_fully_adaptive(self):
        src = self.mesh.node_xy(2, 5)
        dst = self.mesh.node_xy(5, 2)
        assert self.alg.candidates(src, dst) == [EAST, SOUTH]

    def test_all_paths_respect_turn_model(self):
        model = TurnModel.north_last()
        rng = random.Random(7)
        for _ in range(300):
            src = rng.randrange(self.mesh.num_nodes)
            dst = rng.randrange(self.mesh.num_nodes)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            assert path_respects_turn_model(self.mesh, path, model)
            dirs = directions_of_path(self.mesh, path)
            # Once the heading is north it stays north.
            if NORTH in dirs:
                assert all(d == NORTH for d in dirs[dirs.index(NORTH):])


class TestNegativeFirst:
    def setup_method(self):
        self.mesh = Mesh2D(8, 8)
        self.alg = NegativeFirst(self.mesh)

    def test_negative_phase_first(self):
        src = self.mesh.node_xy(5, 2)
        dst = self.mesh.node_xy(2, 5)  # needs west (neg) and north (pos)
        assert self.alg.candidates(src, dst) == [WEST]

    def test_both_negative_fully_adaptive(self):
        src = self.mesh.node_xy(5, 5)
        dst = self.mesh.node_xy(2, 2)
        assert self.alg.candidates(src, dst) == [WEST, SOUTH]

    def test_both_positive_fully_adaptive(self):
        src = self.mesh.node_xy(2, 2)
        dst = self.mesh.node_xy(5, 5)
        assert self.alg.candidates(src, dst) == [EAST, NORTH]

    def test_positive_phase_never_turns_negative(self):
        model = TurnModel.negative_first()
        rng = random.Random(9)
        for _ in range(300):
            src = rng.randrange(self.mesh.num_nodes)
            dst = rng.randrange(self.mesh.num_nodes)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            dirs = directions_of_path(self.mesh, path)
            seen_positive = False
            for d in dirs:
                if d.is_positive:
                    seen_positive = True
                assert not (seen_positive and d.is_negative)
            assert path_respects_turn_model(self.mesh, path, model)


class TestEscapeCandidates:
    """Nonminimal (escape) moves must stay within the turn model and never
    strand the packet."""

    def test_west_first_offers_no_eastward_overshoot(self):
        mesh = Mesh2D(8, 8)
        alg = WestFirst(mesh)
        node = mesh.node_xy(4, 4)
        dst = mesh.node_xy(4, 6)  # productive: north only
        escapes = alg.escape_candidates(node, dst, NORTH)
        # East overshoot would create westward work west-first cannot
        # reach from a non-west heading.
        assert EAST not in escapes

    def test_negative_first_allows_negative_overshoot_at_injection(self):
        mesh = Mesh2D(8, 8)
        alg = NegativeFirst(mesh)
        node = mesh.node_xy(4, 4)
        dst = mesh.node_xy(6, 4)  # productive: east
        escapes = alg.escape_candidates(node, dst, None)
        assert WEST in escapes or SOUTH in escapes

    def test_escapes_never_point_off_the_mesh(self):
        mesh = Mesh2D(4, 4)
        alg = NegativeFirst(mesh)
        for node in mesh.nodes():
            for dst in mesh.nodes():
                if node == dst:
                    continue
                for esc in alg.escape_candidates(node, dst, None):
                    assert mesh.neighbor(node, esc) is not None

    def test_escape_then_minimal_always_completes(self):
        """After any single escape move, minimal routing still delivers."""
        mesh = Mesh2D(5, 5)
        for alg_cls in (WestFirst, NorthLast, NegativeFirst):
            alg = alg_cls(mesh)
            for src in mesh.nodes():
                for dst in mesh.nodes():
                    if src == dst:
                        continue
                    for esc in alg.escape_candidates(src, dst, None):
                        nbr = mesh.neighbor(src, esc)
                        # Raises RoutingDeadEnd if stranded.
                        walk(alg, nbr, dst, initial_direction=esc)
