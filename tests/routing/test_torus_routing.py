"""Tests for the k-ary n-cube extensions (Section 4.2)."""

import random

import pytest

from repro.routing import (
    ClassifiedNegativeFirst,
    FirstHopWraparound,
    MeshRestriction,
    WestFirst,
    walk,
)
from repro.topology import EAST, KAryNCube, Mesh2D, WEST


class TestMeshRestriction:
    def test_hides_wraparound_channels(self):
        torus = KAryNCube(5, 2)
        view = MeshRestriction(torus)
        east_edge = torus.node_at((4, 2))
        assert torus.neighbor(east_edge, EAST) is not None
        assert view.neighbor(east_edge, EAST) is None

    def test_plain_offsets(self):
        torus = KAryNCube(8, 2)
        view = MeshRestriction(torus)
        src, dst = torus.node_at((0, 0)), torus.node_at((7, 0))
        assert torus.offset(src, dst, 0) == -1  # shortest wraps
        assert view.offset(src, dst, 0) == 7  # the mesh view does not


class TestFirstHopWraparound:
    def setup_method(self):
        self.torus = KAryNCube(6, 2)
        self.alg = FirstHopWraparound(self.torus)

    def test_wraparound_offered_at_injection_only(self):
        src = self.torus.node_at((5, 2))
        dst = self.torus.node_at((0, 2))
        at_injection = self.alg.candidates(src, dst, None)
        later = self.alg.candidates(src, dst, EAST)
        assert EAST in at_injection  # the wraparound shortcut
        assert EAST not in later

    def test_wraparound_must_shorten(self):
        src = self.torus.node_at((2, 2))
        dst = self.torus.node_at((3, 2))
        cands = self.alg.candidates(src, dst, None)
        assert all(
            not self.torus.is_wraparound(src, d) for d in cands
        )

    def test_delivers_from_every_pair(self):
        rng = random.Random(6)
        for _ in range(300):
            src = rng.randrange(self.torus.num_nodes)
            dst = rng.randrange(self.torus.num_nodes)
            if src == dst:
                continue
            walk(self.alg, src, dst, rng=rng)

    def test_nonminimal_flag(self):
        assert not self.alg.is_minimal

    def test_supports_other_base_algorithms(self):
        alg = FirstHopWraparound(self.torus, base_factory=WestFirst)
        assert alg.name == "west-first+wrap1"
        rng = random.Random(8)
        for _ in range(200):
            src = rng.randrange(self.torus.num_nodes)
            dst = rng.randrange(self.torus.num_nodes)
            if src == dst:
                continue
            walk(alg, src, dst, rng=rng)

    def test_rejects_plain_mesh(self):
        with pytest.raises(ValueError):
            FirstHopWraparound(Mesh2D(4, 4))


class TestClassifiedNegativeFirst:
    def setup_method(self):
        self.torus = KAryNCube(6, 2)
        self.alg = ClassifiedNegativeFirst(self.torus)

    def test_east_edge_has_two_westward_channels(self):
        """The Section 4.2 example: a node at the east edge can go west
        via the mesh channel or via the wraparound."""
        src = self.torus.node_at((5, 2))
        dst = self.torus.node_at((2, 2))
        cands = self.alg.candidates(src, dst)
        assert WEST in cands  # the mesh channel
        assert EAST in cands  # the wraparound, classified west

    def test_positive_wraparound_only_lands_on_destination_edge(self):
        src = self.torus.node_at((0, 2))
        to_edge = self.torus.node_at((5, 2))
        inside = self.torus.node_at((4, 2))
        assert WEST in self.alg.candidates(src, to_edge)
        assert WEST not in self.alg.candidates(src, inside)

    def test_negative_work_strictly_first(self):
        src = self.torus.node_at((3, 1))
        dst = self.torus.node_at((1, 3))  # west then north
        cands = self.alg.candidates(src, dst)
        assert all(d == WEST for d in cands)

    def test_delivers_from_every_pair(self):
        for src in self.torus.nodes():
            for dst in self.torus.nodes():
                if src != dst:
                    walk(self.alg, src, dst)

    def test_random_walks_deliver(self):
        rng = random.Random(10)
        for _ in range(300):
            src = rng.randrange(self.torus.num_nodes)
            dst = rng.randrange(self.torus.num_nodes)
            if src == dst:
                continue
            walk(self.alg, src, dst, rng=rng)

    def test_radix2_torus_degenerates_gracefully(self):
        torus = KAryNCube(2, 3)
        alg = ClassifiedNegativeFirst(torus)
        for src in torus.nodes():
            for dst in torus.nodes():
                if src != dst:
                    path = walk(alg, src, dst)
                    assert len(path) - 1 == torus.distance(src, dst)
