"""Tests for the virtual-channel extension: dateline torus routing and
escape-VC fully adaptive routing, plus the VC-aware verification."""

import pytest

from repro.routing import (
    DatelineDimensionOrder,
    DimensionOrder,
    EscapeVCAdaptive,
    WestFirst,
)
from repro.topology import Direction, KAryNCube, Mesh2D
from repro.verification import (
    verify_algorithm,
    verify_escape_discipline,
    verify_vc_algorithm,
)


class TestDateline:
    def setup_method(self):
        self.torus = KAryNCube(6, 2)
        self.alg = DatelineDimensionOrder(self.torus)

    def test_requires_torus(self):
        with pytest.raises(ValueError):
            DatelineDimensionOrder(Mesh2D(4, 4))

    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            self.alg.vc_candidates(0, 5, None, None, 1)

    def test_routes_minimally_with_wraparound(self):
        src = self.torus.node_at((5, 0))
        dst = self.torus.node_at((1, 0))
        cands = self.alg.candidates(src, dst)
        assert len(cands) == 1
        assert cands[0].sign == +1  # the short way is across the edge

    def test_wrap_hop_uses_vc1(self):
        src = self.torus.node_at((5, 0))
        dst = self.torus.node_at((1, 0))
        (direction, vc), = self.alg.vc_candidates(src, dst, None, None, 2)
        assert vc == 1

    def test_non_wrap_hop_uses_vc0(self):
        src = self.torus.node_at((1, 0))
        dst = self.torus.node_at((3, 0))
        (direction, vc), = self.alg.vc_candidates(src, dst, None, None, 2)
        assert vc == 0

    def test_stays_on_vc1_after_crossing(self):
        src = self.torus.node_at((0, 0))  # just crossed into column 0
        dst = self.torus.node_at((2, 0))
        heading = Direction(0, +1)
        (direction, vc), = self.alg.vc_candidates(src, dst, heading, 1, 2)
        assert vc == 1

    def test_new_dimension_resets_to_vc0(self):
        src = self.torus.node_at((2, 1))
        dst = self.torus.node_at((2, 3))
        heading = Direction(0, +1)  # finished x on vc1
        (direction, vc), = self.alg.vc_candidates(src, dst, heading, 1, 2)
        assert direction.dim == 1 and vc == 0

    def test_vc_cdg_acyclic_with_two_vcs(self):
        verdict = verify_vc_algorithm(self.alg, 2)
        assert verdict.deadlock_free, verdict.cycle

    def test_naive_torus_dimension_order_is_cyclic_without_vcs(self):
        """Section 4.2's impossibility: the plain offsets-based
        dimension-order relation deadlocks on the ring."""
        naive = DimensionOrder(self.torus)
        assert not verify_algorithm(naive).deadlock_free

    @pytest.mark.parametrize("k,n", [(5, 2), (4, 3)])
    def test_acyclic_across_shapes(self, k, n):
        torus = KAryNCube(k, n)
        verdict = verify_vc_algorithm(DatelineDimensionOrder(torus), 2)
        assert verdict.deadlock_free


class TestEscapeVC:
    def setup_method(self):
        self.mesh = Mesh2D(5, 5)
        self.alg = EscapeVCAdaptive(self.mesh)

    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            self.alg.vc_candidates(0, 5, None, None, 1)

    def test_offers_all_productive_directions_adaptively(self):
        src, dst = self.mesh.node_xy(1, 1), self.mesh.node_xy(3, 3)
        pairs = self.alg.vc_candidates(src, dst, None, None, 2)
        adaptive = {(d.dim, d.sign) for d, vc in pairs if vc == 1}
        assert adaptive == {(0, 1), (1, 1)}

    def test_escape_candidate_always_present_and_last(self):
        src, dst = self.mesh.node_xy(1, 1), self.mesh.node_xy(3, 3)
        pairs = self.alg.vc_candidates(src, dst, None, None, 2)
        assert pairs[-1][1] == 0
        assert pairs[-1][0].dim == 0  # xy prefers the x dimension

    def test_restricted_discipline_once_on_escape(self):
        src, dst = self.mesh.node_xy(1, 1), self.mesh.node_xy(3, 3)
        heading = Direction(0, +1)
        pairs = self.alg.vc_candidates(src, dst, heading, 0, 2)
        assert pairs == [(Direction(0, +1), 0)]

    def test_cdg_is_cyclic_but_escape_discipline_verifies(self):
        """The headline nuance: CDG acyclicity is sufficient, not
        necessary.  The adaptive channels form cycles, yet the Duato
        conditions hold."""
        assert not verify_vc_algorithm(self.alg, 2).deadlock_free
        verdict = verify_escape_discipline(self.alg, 2)
        assert verdict.deadlock_free

    def test_three_vcs_also_verify(self):
        verdict = verify_escape_discipline(self.alg, 3)
        assert verdict.deadlock_free

    def test_escape_subnetwork_matches_xy(self):
        """On the escape channel the relation is exactly xy routing."""
        from repro.routing import XY

        xy = XY(self.mesh)
        for src in self.mesh.nodes():
            for dst in self.mesh.nodes():
                if src == dst:
                    continue
                pairs = self.alg.vc_candidates(
                    src, dst, Direction(0, 1), 0, 2
                )
                assert [d for d, _ in pairs] == xy.candidates(src, dst)


class TestDefaultVCBehaviour:
    def test_vc_oblivious_algorithm_uses_any_vc(self):
        mesh = Mesh2D(4, 4)
        alg = WestFirst(mesh)
        src, dst = mesh.node_xy(0, 0), mesh.node_xy(2, 2)
        pairs = alg.vc_candidates(src, dst, None, None, 3)
        dirs = {d for d, _ in pairs}
        vcs = {vc for _, vc in pairs}
        assert vcs == {0, 1, 2}
        assert dirs == set(alg.candidates(src, dst))

    def test_turn_model_algorithms_verify_with_extra_vcs(self):
        """Extra channels never hurt a turn-model algorithm."""
        mesh = Mesh2D(4, 4)
        verdict = verify_vc_algorithm(WestFirst(mesh), 2)
        assert verdict.deadlock_free
