"""Tests for the n-dimensional algorithms: ABONF, ABOPL, negative-first
(Section 4.1)."""

import random

import pytest

from repro.routing import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    NegativeFirst,
    walk,
    path_respects_turn_model,
)
from repro.topology import Direction, Hypercube, Mesh


MESH_3D = Mesh((4, 4, 4))


class TestABONF:
    def setup_method(self):
        self.alg = AllButOneNegativeFirst(MESH_3D)

    def test_phase1_is_negatives_of_all_but_last_dim(self):
        assert self.alg.phase1_directions == frozenset(
            {Direction(0, -1), Direction(1, -1)}
        )

    def test_negative_last_dim_deferred_to_phase2(self):
        src = MESH_3D.node_at((2, 2, 2))
        dst = MESH_3D.node_at((1, 1, 1))  # negative in all three dims
        cands = self.alg.candidates(src, dst)
        assert set(cands) == {Direction(0, -1), Direction(1, -1)}

    def test_phase2_adaptive_among_rest(self):
        src = MESH_3D.node_at((1, 1, 2))
        dst = MESH_3D.node_at((2, 2, 1))  # +0, +1, -2: all phase 2
        cands = self.alg.candidates(src, dst)
        assert set(cands) == {
            Direction(0, +1), Direction(1, +1), Direction(2, -1),
        }

    def test_paths_minimal_and_turn_legal(self):
        model = self.alg.turn_model()
        rng = random.Random(3)
        for _ in range(200):
            src = rng.randrange(MESH_3D.num_nodes)
            dst = rng.randrange(MESH_3D.num_nodes)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            assert len(path) - 1 == MESH_3D.distance(src, dst)
            assert path_respects_turn_model(MESH_3D, path, model)

    def test_needs_two_dimensions(self):
        with pytest.raises(ValueError):
            AllButOneNegativeFirst(Mesh((4,)))


class TestABOPL:
    def setup_method(self):
        self.alg = AllButOnePositiveLast(MESH_3D)

    def test_phase1_includes_positive_dim0(self):
        assert Direction(0, +1) in self.alg.phase1_directions
        assert Direction(1, +1) not in self.alg.phase1_directions

    def test_positive_high_dims_deferred(self):
        src = MESH_3D.node_at((1, 1, 1))
        dst = MESH_3D.node_at((2, 2, 2))  # all positive
        cands = self.alg.candidates(src, dst)
        assert set(cands) == {Direction(0, +1)}

    def test_last_phase_adaptive_among_high_positives(self):
        src = MESH_3D.node_at((2, 1, 1))
        dst = MESH_3D.node_at((2, 2, 2))
        cands = self.alg.candidates(src, dst)
        assert set(cands) == {Direction(1, +1), Direction(2, +1)}

    def test_paths_minimal_and_turn_legal(self):
        model = self.alg.turn_model()
        rng = random.Random(5)
        for _ in range(200):
            src = rng.randrange(MESH_3D.num_nodes)
            dst = rng.randrange(MESH_3D.num_nodes)
            if src == dst:
                continue
            path = walk(self.alg, src, dst, rng=rng)
            assert len(path) - 1 == MESH_3D.distance(src, dst)
            assert path_respects_turn_model(MESH_3D, path, model)


class TestNegativeFirstND:
    def setup_method(self):
        self.alg = NegativeFirst(MESH_3D)

    def test_all_negatives_first(self):
        src = MESH_3D.node_at((2, 1, 2))
        dst = MESH_3D.node_at((1, 2, 1))  # -0, +1, -2
        cands = self.alg.candidates(src, dst)
        assert set(cands) == {Direction(0, -1), Direction(2, -1)}

    def test_positive_phase_when_no_negative_work(self):
        src = MESH_3D.node_at((1, 1, 1))
        dst = MESH_3D.node_at((3, 2, 2))
        cands = self.alg.candidates(src, dst)
        assert all(d.is_positive for d in cands)
        assert len(cands) == 3

    def test_works_on_hypercube(self):
        cube = Hypercube(5)
        alg = NegativeFirst(cube)
        rng = random.Random(11)
        for _ in range(200):
            src = rng.randrange(cube.num_nodes)
            dst = rng.randrange(cube.num_nodes)
            if src == dst:
                continue
            path = walk(alg, src, dst, rng=rng)
            assert len(path) - 1 == cube.distance(src, dst)

    def test_high_dimension_mesh(self):
        mesh = Mesh((2, 3, 2, 3))
        alg = NegativeFirst(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src != dst:
                    path = walk(alg, src, dst)
                    assert len(path) - 1 == mesh.distance(src, dst)
