"""RoutingTable: memoisation fidelity, laziness, and fault invalidation."""

from repro.faults.plan import FaultPlan
from repro.faults.routing import FaultAwareRouting
from repro.faults.state import FaultState
from repro.routing import RoutingTable, make_algorithm
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh2D


class CountingAlgorithm:
    """Wraps an algorithm, counting calls into each query family."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def candidates(self, current, dest, in_direction=None):
        self.calls += 1
        return self.inner.candidates(current, dest, in_direction)

    def escape_candidates(self, current, dest, in_direction=None):
        self.calls += 1
        return self.inner.escape_candidates(current, dest, in_direction)

    def vc_candidates(self, current, dest, in_direction, in_vc, num_vc):
        self.calls += 1
        return self.inner.vc_candidates(
            current, dest, in_direction, in_vc, num_vc
        )

    def vc_escape_candidates(self, current, dest, in_direction, in_vc, num_vc):
        self.calls += 1
        return self.inner.vc_escape_candidates(
            current, dest, in_direction, in_vc, num_vc
        )


class TestMemoisation:
    def test_returns_algorithm_answers_verbatim(self):
        topology = Mesh2D(4, 4)
        algorithm = make_algorithm("west-first", topology)
        table = RoutingTable(algorithm)
        for node in range(topology.num_nodes):
            for dest in range(topology.num_nodes):
                if dest == node:
                    continue
                assert table.candidates(node, dest, None) == tuple(
                    algorithm.candidates(node, dest, None)
                )
                assert table.escape_candidates(node, dest, None) == tuple(
                    algorithm.escape_candidates(node, dest, None)
                )

    def test_second_query_hits_the_memo(self):
        counting = CountingAlgorithm(make_algorithm("xy", Mesh2D(3, 3)))
        table = RoutingTable(counting)
        first = table.candidates(0, 8, None)
        assert counting.calls == 1
        second = table.candidates(0, 8, None)
        assert counting.calls == 1  # served from the memo
        assert second is first  # the exact cached tuple, not a copy

    def test_empty_tuple_is_a_valid_cached_value(self):
        # Regression guard: an empty candidate set must be cached too
        # (a falsy-check memo would recompute it forever).
        counting = CountingAlgorithm(make_algorithm("west-first", Mesh2D(3, 3)))
        table = RoutingTable(counting)
        table.escape_candidates(0, 4, None)
        calls = counting.calls
        table.escape_candidates(0, 4, None)
        assert counting.calls == calls

    def test_vc_queries_keyed_by_vc_and_count(self):
        from repro.analysis.runner import parse_topology_spec

        topology = parse_topology_spec("torus:8x1")
        algorithm = make_algorithm("dateline-dimension-order", topology)
        table = RoutingTable(algorithm)
        for in_vc in (None, 0, 1):
            assert table.vc_candidates(0, 5, None, in_vc, 2) == tuple(
                algorithm.vc_candidates(0, 5, None, in_vc, 2)
            )
        assert table.num_entries == 3  # distinct keys, no collisions

    def test_lazy_build(self):
        counting = CountingAlgorithm(make_algorithm("xy", Mesh2D(4, 4)))
        table = RoutingTable(counting)
        assert counting.calls == 0
        assert table.num_entries == 0


class TestInvalidation:
    def test_invalidate_node_drops_only_that_node(self):
        table = RoutingTable(make_algorithm("xy", Mesh2D(4, 4)))
        table.candidates(0, 5, None)
        table.candidates(1, 5, None)
        assert table.num_entries == 2
        table.invalidate_node(0)
        assert table.num_entries == 1

    def test_clear(self):
        table = RoutingTable(make_algorithm("xy", Mesh2D(4, 4)))
        table.candidates(0, 5, None)
        table.clear()
        assert table.num_entries == 0

    def test_channel_event_affects_only_the_source_node(self):
        topology = Mesh2D(4, 4)
        table = RoutingTable(make_algorithm("xy", topology))
        assert table.affected_nodes(topology, 5, channel_only=True) == {5}

    def test_router_event_affects_node_and_in_neighbors(self):
        topology = Mesh2D(4, 4)
        table = RoutingTable(make_algorithm("xy", topology))
        affected = table.affected_nodes(topology, 5, channel_only=False)
        # Node 5 sits mid-mesh: four neighbours feed channels into it.
        assert affected == {5, 1, 4, 6, 9}

    def test_hypercube_in_neighbors(self):
        topology = Hypercube(3)
        table = RoutingTable(make_algorithm("e-cube", topology))
        affected = table.affected_nodes(topology, 0, channel_only=False)
        assert affected == {0, 1, 2, 4}


class TestFaultComposition:
    def test_masked_answers_refresh_after_invalidation(self):
        # The table composes over FaultAwareRouting: stale rows survive
        # a fault until invalidated, fresh rows see the new mask.
        topology = Mesh2D(4, 4)
        algorithm = make_algorithm("xy", topology)
        state = FaultState(topology)
        table = RoutingTable(FaultAwareRouting(algorithm, state))
        before = table.candidates(0, 3, None)  # all-East route
        assert len(before) == 1
        east = before[0]
        state.fail_channel(0, east)
        assert table.candidates(0, 3, None) == before  # stale (by design)
        table.invalidate_node(0)
        assert table.candidates(0, 3, None) == ()  # fresh: masked out
        state.heal_channel(0, east)
        table.invalidate_node(0)
        assert table.candidates(0, 3, None) == before

    def test_simulator_invalidates_on_fault_events(self):
        # End-to-end: a mid-run link failure must flow through the
        # engine's invalidation hook into the table.
        from repro.analysis.runner import make_pattern
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import WormholeSimulator

        topology = Mesh2D(4, 4)
        plan = FaultPlan.random_links(topology, 2, seed=1, start=50)
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=50, measure_cycles=300,
            seed=2, fault_plan=plan, packet_timeout=200, max_retries=1,
        )
        sim = WormholeSimulator(
            make_algorithm("west-first", topology),
            make_pattern("uniform", topology),
            config,
        )
        result = sim.run()
        assert result.generated_packets > 0
        # The masked table must never offer a dead channel.
        state = sim.fault_state
        for node, rows in sim._pair_cache.items():
            for pairs in rows.values():
                for direction, _ in pairs:
                    assert (node, direction) not in state.dead_channels
