"""Tests for the algorithm registry and path utilities."""

import pytest

from repro.routing import (
    NegativeFirst,
    RoutingDeadEnd,
    WestFirst,
    XY,
    algorithm_names,
    directions_of_path,
    enumerate_minimal_paths,
    hypercube_algorithms,
    make_algorithm,
    mesh_algorithms,
    path_channels,
    torus_algorithms,
    walk,
)
from repro.core import s_west_first
from repro.topology import EAST, Hypercube, KAryNCube, Mesh2D, NORTH


class TestRegistry:
    def test_known_names_construct(self):
        mesh = Mesh2D(4, 4)
        for name in ("xy", "west-first", "north-last", "negative-first"):
            alg = make_algorithm(name, mesh)
            assert alg.topology is mesh

    def test_aliases(self):
        cube = Hypercube(4)
        assert make_algorithm("ecube", cube).name == "e-cube"
        assert make_algorithm("pcube", cube).name == "p-cube"
        assert make_algorithm("NF", Mesh2D(3, 3)).name == "negative-first"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            make_algorithm("zigzag-routing", Mesh2D(3, 3))

    def test_wrong_topology_raises(self):
        with pytest.raises(ValueError):
            make_algorithm("xy", Hypercube(4))

    def test_mesh_suite_is_the_paper_lineup(self):
        names = [a.name for a in mesh_algorithms(Mesh2D(4, 4))]
        assert names == ["xy", "west-first", "north-last", "negative-first"]

    def test_cube_suite_is_the_paper_lineup(self):
        names = [a.name for a in hypercube_algorithms(Hypercube(4))]
        assert names == ["e-cube", "abonf", "abopl", "p-cube"]

    def test_torus_suite(self):
        names = [a.name for a in torus_algorithms(KAryNCube(4, 2))]
        assert "negative-first-torus" in names

    def test_algorithm_names_deduplicates_aliases(self):
        names = algorithm_names()
        assert "xy" in names and "p-cube" in names
        assert len(names) == len(set(names))


class TestWalk:
    def test_walk_returns_node_path(self):
        mesh = Mesh2D(4, 4)
        path = walk(XY(mesh), mesh.node_xy(0, 0), mesh.node_xy(3, 3))
        assert path[0] == mesh.node_xy(0, 0)
        assert path[-1] == mesh.node_xy(3, 3)
        assert len(path) == 7

    def test_walk_detects_dead_end(self):
        mesh = Mesh2D(4, 4)
        alg = WestFirst(mesh)
        # Travelling east with a westward destination is an illegal state;
        # the algorithm reports no candidates and walk raises.
        with pytest.raises(RoutingDeadEnd):
            walk(
                alg,
                mesh.node_xy(2, 0),
                mesh.node_xy(0, 0),
                initial_direction=EAST,
            )

    def test_walk_custom_chooser(self):
        mesh = Mesh2D(5, 5)
        alg = NegativeFirst(mesh)
        path = walk(
            alg,
            mesh.node_xy(0, 0),
            mesh.node_xy(3, 3),
            choose=lambda options: options[-1],
        )
        # Always choosing the last candidate routes all of y first.
        assert directions_of_path(mesh, path)[:3] == [NORTH, NORTH, NORTH]


class TestPathHelpers:
    def test_path_channels_roundtrip(self):
        mesh = Mesh2D(4, 4)
        path = walk(XY(mesh), 0, 15)
        channels = path_channels(mesh, path)
        assert [c.src for c in channels] == path[:-1]
        assert [c.dst for c in channels] == path[1:]

    def test_path_channels_rejects_non_neighbors(self):
        mesh = Mesh2D(4, 4)
        with pytest.raises(ValueError):
            path_channels(mesh, [0, 5])

    def test_enumerate_minimal_paths_counts_match_formula(self):
        mesh = Mesh2D(6, 6)
        alg = WestFirst(mesh)
        src, dst = mesh.node_xy(1, 1), mesh.node_xy(4, 3)
        paths = list(enumerate_minimal_paths(alg, src, dst))
        assert len(paths) == s_west_first(mesh, src, dst)
        assert len({p for p in paths}) == len(paths)
        assert all(len(p) - 1 == mesh.distance(src, dst) for p in paths)

    def test_enumerate_minimal_paths_limit(self):
        mesh = Mesh2D(8, 8)
        alg = WestFirst(mesh)
        paths = list(
            enumerate_minimal_paths(alg, mesh.node_xy(0, 0), mesh.node_xy(7, 7), limit=5)
        )
        assert len(paths) == 5
