"""Tests for xy and e-cube dimension-order routing (the baselines)."""

import pytest

from repro.routing import DimensionOrder, ECube, XY, walk
from repro.topology import EAST, Hypercube, Mesh, Mesh2D, NORTH


class TestXY:
    def setup_method(self):
        self.mesh = Mesh2D(8, 8)
        self.alg = XY(self.mesh)

    def test_routes_x_completely_first(self):
        src = self.mesh.node_xy(1, 1)
        dst = self.mesh.node_xy(4, 5)
        assert self.alg.candidates(src, dst) == [EAST]
        mid = self.mesh.node_xy(4, 1)
        assert self.alg.candidates(mid, dst) == [NORTH]

    def test_single_candidate_always(self):
        for src in self.mesh.nodes():
            for dst in self.mesh.nodes():
                cands = self.alg.candidates(src, dst)
                assert len(cands) == (0 if src == dst else 1)

    def test_path_is_row_then_column(self):
        src = self.mesh.node_xy(6, 2)
        dst = self.mesh.node_xy(2, 5)
        path = [self.mesh.coords(n) for n in walk(self.alg, src, dst)]
        xs = [p[0] for p in path]
        # x reaches its final value before y ever changes
        first_y_change = next(
            i for i, p in enumerate(path) if p[1] != path[0][1]
        )
        assert xs[first_y_change - 1] == 2

    def test_not_adaptive(self):
        assert not self.alg.is_adaptive
        assert self.alg.is_minimal

    def test_name(self):
        assert self.alg.name == "xy"

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            XY(Mesh((3, 3, 3)))

    def test_turn_model_is_xy(self):
        assert self.alg.turn_model().name == "xy"


class TestECube:
    def setup_method(self):
        self.cube = Hypercube(6)
        self.alg = ECube(self.cube)

    def test_resolves_lowest_dimension_first(self):
        src, dst = 0b000000, 0b101010
        cands = self.alg.candidates(src, dst)
        assert len(cands) == 1
        assert cands[0].dim == 1

    def test_walk_fixes_dimensions_in_order(self):
        src, dst = 0b110011, 0b001100
        path = walk(self.alg, src, dst)
        dims = [
            (a ^ b).bit_length() - 1 for a, b in zip(path, path[1:])
        ]
        assert dims == sorted(dims)
        assert len(dims) == self.cube.hamming(src, dst)

    def test_requires_hypercube(self):
        with pytest.raises(ValueError):
            ECube(Mesh2D(4, 4))

    def test_name(self):
        assert self.alg.name == "e-cube"


class TestDimensionOrderGeneric:
    def test_custom_order(self):
        mesh = Mesh((4, 4))
        alg = DimensionOrder(mesh, order=[1, 0])
        src = mesh.node_at((0, 0))
        dst = mesh.node_at((2, 3))
        assert alg.candidates(src, dst)[0].dim == 1  # y first

    def test_custom_order_turn_model_breaks_cycles(self):
        mesh = Mesh((3, 3, 3))
        alg = DimensionOrder(mesh, order=[2, 0, 1])
        assert alg.turn_model().breaks_all_cycles()

    def test_invalid_order_rejected(self):
        mesh = Mesh((4, 4))
        with pytest.raises(ValueError):
            DimensionOrder(mesh, order=[0, 0])
        with pytest.raises(ValueError):
            DimensionOrder(mesh, order=[0])

    def test_delivers_on_3d_mesh(self):
        mesh = Mesh((3, 4, 2))
        alg = DimensionOrder(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src != dst:
                    path = walk(alg, src, dst)
                    assert len(path) - 1 == mesh.distance(src, dst)
