"""Unit tests for the output-selection policies: choice semantics,
the static-preference fallback when congestion data is unavailable,
and the registry."""

import random

import pytest

from repro.routing.selection import (
    SELECTION_POLICIES,
    EngineCongestionView,
    MaxFreeCredits,
    RoundRobin,
    SelectionPolicy,
    ThresholdReroute,
    XYPreference,
    make_selection_policy,
    selection_policy_names,
    static_preference,
)
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import EAST, NORTH, SOUTH, WEST, Mesh2D
from repro.traffic import UniformPattern

RNG = random.Random(0)


class FakePacket:
    def __init__(self, head_node=0):
        self.head_node = head_node


class FakeView:
    """Scriptable congestion view: maps direction -> downstream node and
    node -> (free credits, occupancy); missing entries read as None."""

    def __init__(self, dst=None, credits=None, occupancy=None):
        self._dst = dst or {}
        self._credits = credits or {}
        self._occupancy = occupancy or {}

    def downstream(self, node, direction):
        return self._dst.get(direction)

    def free_credits(self, node):
        return self._credits.get(node)

    def occupancy(self, node):
        return self._occupancy.get(node)


class TestStaticPreference:
    def test_matches_the_paper_xy_rule(self):
        # Lowest dimension first, negative sign before positive.
        assert static_preference([NORTH, EAST, WEST]) == WEST
        assert static_preference([NORTH, EAST]) == EAST
        assert static_preference([NORTH, SOUTH]) == SOUTH

    def test_xy_preference_policy_is_the_static_rule(self):
        policy = XYPreference()
        assert policy(list((NORTH, EAST, WEST)), FakePacket(), RNG) == WEST
        assert not policy.uses_congestion


class TestRoundRobin:
    def test_rotates_through_sorted_candidates(self):
        policy = RoundRobin()
        options = [NORTH, EAST]  # sorted: EAST (dim 0) then NORTH (dim 1)
        picks = [policy(options, FakePacket(), RNG) for _ in range(4)]
        assert picks == [EAST, NORTH, EAST, NORTH]

    def test_pointer_survives_candidate_set_changes(self):
        policy = RoundRobin()
        assert policy([EAST, NORTH], FakePacket(), RNG) == EAST
        assert policy([WEST], FakePacket(), RNG) == WEST  # 1 % 1 == 0
        assert policy([EAST, NORTH], FakePacket(), RNG) == EAST  # 2 % 2


class TestMaxFreeCredits:
    def test_prefers_the_most_free_downstream(self):
        view = FakeView(
            dst={EAST: 10, NORTH: 20},
            credits={10: 1, 20: 3},
        )
        policy = MaxFreeCredits()
        policy.bind(view)
        assert policy([EAST, NORTH], FakePacket(), RNG) == NORTH

    def test_ties_rotate_round_robin(self):
        view = FakeView(dst={EAST: 10, NORTH: 20}, credits={10: 2, 20: 2})
        policy = MaxFreeCredits()
        policy.bind(view)
        picks = [policy([NORTH, EAST], FakePacket(), RNG) for _ in range(4)]
        assert picks == [EAST, NORTH, EAST, NORTH]

    def test_unbound_view_falls_back_to_static_preference(self):
        policy = MaxFreeCredits()
        assert policy.view is None
        assert policy([NORTH, EAST, WEST], FakePacket(), RNG) == WEST

    def test_any_missing_candidate_signal_falls_back(self):
        # NORTH has data, EAST's downstream is unknown (dead channel):
        # scoring only NORTH would silently bias — fall back instead.
        view = FakeView(dst={NORTH: 20}, credits={20: 5})
        policy = MaxFreeCredits()
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST

    def test_downstream_with_no_live_outputs_falls_back(self):
        view = FakeView(dst={EAST: 10, NORTH: 20}, credits={20: 5})
        policy = MaxFreeCredits()
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST


class TestThresholdReroute:
    def test_below_threshold_stays_on_preference(self):
        view = FakeView(
            dst={EAST: 10, NORTH: 20},
            credits={10: 0, 20: 9},
            occupancy={10: 1, 20: 0},
        )
        policy = ThresholdReroute(threshold=2)
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST

    def test_at_threshold_switches_to_least_loaded(self):
        view = FakeView(
            dst={EAST: 10, NORTH: 20},
            credits={10: 1, 20: 7},
            occupancy={10: 2, 20: 0},
        )
        policy = ThresholdReroute(threshold=2)
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == NORTH

    def test_unbound_view_falls_back_to_preference(self):
        policy = ThresholdReroute(threshold=0)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST

    def test_missing_preferred_occupancy_falls_back(self):
        view = FakeView(dst={NORTH: 20}, credits={20: 5}, occupancy={20: 0})
        policy = ThresholdReroute(threshold=0)
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST

    def test_missing_alternative_signal_stays_on_preference(self):
        # Preferred EAST is congested, but NORTH has no data: stay put.
        view = FakeView(
            dst={EAST: 10, NORTH: 20},
            credits={10: 0},
            occupancy={10: 5},
        )
        policy = ThresholdReroute(threshold=2)
        policy.bind(view)
        assert policy([NORTH, EAST], FakePacket(), RNG) == EAST

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdReroute(threshold=-1)


class TestRegistry:
    def test_names(self):
        assert selection_policy_names() == sorted(
            ["xy", "round-robin", "max-credits", "threshold"]
        )

    def test_make_returns_fresh_instances(self):
        a = make_selection_policy("round-robin")
        b = make_selection_policy("round-robin")
        assert a is not b
        assert isinstance(a, SelectionPolicy)

    def test_threshold_parameter_is_threaded(self):
        policy = make_selection_policy("threshold", threshold=7)
        assert policy.threshold == 7

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="max-credits"):
            make_selection_policy("bogus")

    def test_every_policy_declares_a_name(self):
        for name, factory in SELECTION_POLICIES.items():
            assert factory.name == name


class TestEngineCongestionView:
    def build(self, **config_kwargs):
        mesh = Mesh2D(3, 3)
        from repro.routing import XY

        config = SimulationConfig(
            offered_load=0.0, warmup_cycles=0, measure_cycles=10,
            **config_kwargs,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        return mesh, sim, EngineCongestionView(sim)

    def test_idle_network_has_full_credits(self):
        mesh, sim, view = self.build()
        center = mesh.node_xy(1, 1)
        # 4 outputs x buffer_depth 1, none allocated.
        assert view.free_credits(center) == 4
        assert view.occupancy(center) == 0
        assert view.downstream(center, EAST) == mesh.node_xy(2, 1)

    def test_buffered_flits_count_as_occupancy(self):
        mesh, sim, view = self.build()
        src = mesh.node_xy(0, 1)
        sim.inject_packet(src, mesh.node_xy(2, 1), 5)
        for _ in range(4):
            sim.step()
        center = mesh.node_xy(1, 1)
        occupancy = view.occupancy(center)
        assert occupancy is not None and occupancy >= 1
        assert view.free_credits(center) == 4 - occupancy

    def test_dead_channel_reads_none(self):
        from repro.faults.plan import FaultEvent, FaultPlan

        mesh = Mesh2D(3, 3)
        center = mesh.node_xy(1, 1)
        plan = FaultPlan(
            tuple(
                FaultEvent.channel(mesh.channel(center, d), start=0)
                for d in (EAST, WEST, NORTH, SOUTH)
            )
        )
        from repro.routing import XY

        config = SimulationConfig(
            offered_load=0.0, warmup_cycles=0, measure_cycles=10,
            fault_plan=plan, packet_timeout=5,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        sim.step()  # applies the cycle-0 fault events
        view = EngineCongestionView(sim)
        # Every output of the center router is dead: no signal at all.
        assert view.downstream(center, EAST) is None
        assert view.free_credits(center) is None
        assert view.occupancy(center) is None
        # A policy consulting the dead node falls back to the static
        # preference instead of crashing or biasing.
        policy = MaxFreeCredits()
        policy.bind(view)
        neighbour = mesh.node_xy(0, 1)
        assert (
            policy([NORTH, EAST], FakePacket(neighbour), RNG)
            == EAST  # EAST's downstream is the all-dead center
        )
