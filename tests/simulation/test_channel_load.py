"""Tests for per-channel load tracking and its visualisation."""

import pytest

from repro.routing import XY
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import EAST, Mesh2D, NORTH
from repro.traffic import MeshTransposePattern, UniformPattern
from repro.viz import hottest_channels, render_channel_utilization


class TestTracking:
    def test_disabled_by_default(self):
        mesh = Mesh2D(4, 4)
        config = SimulationConfig(
            offered_load=0.5, warmup_cycles=100, measure_cycles=400
        )
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        assert result.channel_flits is None

    def test_crossings_roughly_equal_delivered_times_hops(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=1_000,
            measure_cycles=6_000,
            track_channel_load=True,
            seed=4,
        )
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        crossings = sum(result.channel_flits)
        expected = result.delivered_flits * result.avg_hops
        # Boundary effects (in-flight worms, warmup-created packets)
        # inflate crossings slightly.
        assert crossings == pytest.approx(expected, rel=0.25)

    def test_single_packet_loads_its_path_only(self):
        mesh = Mesh2D(6, 6)
        config = SimulationConfig(
            offered_load=0.0,
            warmup_cycles=0,
            measure_cycles=500,
            track_channel_load=True,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        sim.inject_packet(0, 3, 20, created=0)
        result = sim.run()
        used = [
            (c, f) for c, f in zip(sim.channels, result.channel_flits) if f
        ]
        assert len(used) == 3  # three eastward hops
        assert all(f == 20 for _, f in used)
        assert all(c.direction == EAST for c, _ in used)

    def test_transpose_under_xy_loads_the_diagonal_columns(self):
        """The mechanism behind Figure 14: every xy transpose packet
        turns at a diagonal node, so vertical channels at the diagonal
        carry the peak load."""
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=1_000,
            measure_cycles=5_000,
            track_channel_load=True,
            seed=9,
        )
        sim = WormholeSimulator(
            XY(mesh), MeshTransposePattern(mesh), config
        )
        result = sim.run()
        top = hottest_channels(sim.channels, result.channel_flits, top=4)
        for channel, _ in top:
            sx, sy = mesh.coords(channel.src)
            dx, dy = mesh.coords(channel.dst)
            # Every top channel touches a diagonal node — the turning
            # corner (j, j) every xy transpose path funnels through.
            assert sx == sy or dx == dy, (channel, (sx, sy), (dx, dy))


class TestRendering:
    def test_render_utilization_grid(self):
        mesh = Mesh2D(4, 4)
        config = SimulationConfig(
            offered_load=0.0,
            warmup_cycles=0,
            measure_cycles=100,
            track_channel_load=True,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        sim.inject_packet(0, 12, 50, created=0)  # straight north, col 0
        result = sim.run()
        art = render_channel_utilization(
            mesh, sim.channels, result.channel_flits, 100, NORTH
        )
        assert "50" in art  # 50 flits in 100 cycles = 50%
        assert "north" in art

    def test_render_rejects_zero_window(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            render_channel_utilization(mesh, [], [], 0, NORTH)

    def test_hottest_channels_sorted(self):
        mesh = Mesh2D(3, 3)
        channels = list(mesh.channels())
        loads = list(range(len(channels)))
        top = hottest_channels(channels, loads, top=3)
        assert [f for _, f in top] == sorted(loads, reverse=True)[:3]
