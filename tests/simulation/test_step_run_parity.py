"""``step()`` must do exactly what one ``run()`` iteration does.

Historically ``step()`` skipped the per-cycle bookkeeping ``run()``
performed — backlog sampling and the global deadlock watchdog — so a
stepped simulation ended with empty backlog samples and could sail past
a deadlock undetected.  Both now share ``_after_cycle``; these tests pin
the parity.
"""

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.routing.registry import make_algorithm
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import WormholeSimulator


def build(config, topology_spec="mesh:5x5", algorithm="west-first"):
    topology = parse_topology_spec(topology_spec)
    return WormholeSimulator(
        make_algorithm(algorithm, topology),
        make_pattern("uniform", topology),
        config,
    )


class TestStepRunParity:
    def test_stepping_matches_running(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=50, measure_cycles=300, seed=3
        )
        ran = build(config).run()
        stepped_sim = build(config)
        for _ in range(config.total_cycles):
            stepped_sim.step()
        stepped = stepped_sim.finalize()
        assert stepped.to_dict() == ran.to_dict()

    def test_step_samples_backlog(self):
        config = SimulationConfig(
            offered_load=2.0, warmup_cycles=10, measure_cycles=100,
            seed=1, queue_sample_period=20,
        )
        sim = build(config)
        for _ in range(config.total_cycles):
            sim.step()
        expected = len(build(config).run().backlog_samples)
        assert len(sim.result.backlog_samples) == expected
        assert expected > 0

    def test_step_trips_deadlock_watchdog(self):
        # Unrestricted minimal routing at high load deadlocks (the
        # paper's Figure 1 scenario): stepping past the silence
        # threshold must flag it on the same cycle run() does.
        from repro.core import TurnModel
        from repro.routing import TurnRestrictedMinimal
        from repro.topology import Mesh2D
        from repro.traffic import UniformPattern

        config = SimulationConfig(
            offered_load=8.0, warmup_cycles=0, measure_cycles=30_000,
            deadlock_threshold=1_200, seed=3,
        )

        def unrestricted():
            mesh = Mesh2D(6, 6)
            algorithm = TurnRestrictedMinimal(
                mesh, TurnModel.from_prohibited("none", 2, set())
            )
            return WormholeSimulator(
                algorithm, UniformPattern(mesh), config
            )

        ran = unrestricted().run()
        assert ran.deadlock
        stepped_sim = unrestricted()
        for _ in range(config.total_cycles):
            stepped_sim.step()
            if stepped_sim.result.deadlock:
                break
        assert stepped_sim.result.deadlock
        assert stepped_sim.result.deadlock_cycle == ran.deadlock_cycle

    def test_finalize_folds_end_of_run_state(self):
        config = SimulationConfig(
            offered_load=2.0, warmup_cycles=20, measure_cycles=150, seed=5
        )
        sim = build(config)
        for _ in range(config.total_cycles):
            sim.step()
        result = sim.finalize()
        assert result.inflight_at_end == len(sim.active)
        ran = build(config).run()
        assert result.inflight_at_end == ran.inflight_at_end
        assert result.max_stall_age_cycles == ran.max_stall_age_cycles
