"""Array-backend specifics the three-way equivalence suite doesn't cover:
the numpy gate (clear error without the optional extra), backend
dispatch, vectorized-envelope classification, heterogeneous batches,
LUT-cap demotion to the scalar fallback, the cross-batch routing-table
cache, and the golden fingerprints on the array backend.
"""

import dataclasses

import pytest

import repro.simulation.array_engine as ae
from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.faults.plan import FaultPlan
from repro.observability import ListSink
from repro.routing.registry import make_algorithm
from repro.simulation.array_engine import (
    ArrayWormholeSimulator,
    BatchSimulator,
    demotion_reasons,
    make_simulator,
    numpy_available,
    vectorized_envelope,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import WormholeSimulator

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


def build_point(
    topo_spec="mesh:5x5", algorithm="west-first", pattern="uniform",
    **overrides,
):
    topology = parse_topology_spec(topo_spec)
    kwargs = dict(
        offered_load=1.2, warmup_cycles=80, measure_cycles=300, seed=3
    )
    kwargs.update(overrides)
    config = SimulationConfig(**kwargs)
    return (
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
    )


def event_result(point):
    algorithm, pattern, config = point
    return WormholeSimulator(
        algorithm, pattern, config.with_backend("event")
    ).run()


class TestNumpyGate:
    """``backend="array"`` must fail loudly — not mysteriously — on a
    minimal install, while the event backend keeps working."""

    def test_array_without_numpy_raises_clear_error(self, monkeypatch):
        monkeypatch.setattr(ae, "np", None)
        algorithm, pattern, config = build_point()
        with pytest.raises(RuntimeError, match=r"repro\[array\]"):
            make_simulator(
                algorithm, pattern, config.with_backend("array")
            )
        with pytest.raises(RuntimeError, match=r"backend='event'"):
            BatchSimulator([(algorithm, pattern, config)])

    def test_event_backend_works_without_numpy(self, monkeypatch):
        monkeypatch.setattr(ae, "np", None)
        assert not numpy_available()
        algorithm, pattern, config = build_point(measure_cycles=120)
        sim = make_simulator(algorithm, pattern, config)
        assert isinstance(sim, WormholeSimulator)
        assert sim.run().generated_packets > 0


class TestDispatch:
    def test_event_backend_builds_event_simulator(self):
        algorithm, pattern, config = build_point()
        sim = make_simulator(algorithm, pattern, config)
        assert isinstance(sim, WormholeSimulator)

    @needs_numpy
    def test_array_backend_builds_array_simulator(self):
        algorithm, pattern, config = build_point()
        sim = make_simulator(
            algorithm, pattern, config.with_backend("array")
        )
        assert isinstance(sim, ArrayWormholeSimulator)
        assert sim.vectorized

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SimulationConfig(backend="gpu")


class TestVectorizedEnvelope:
    """The envelope predicate is pure config — no numpy needed — and
    names exactly the features the numpy kernels carry; everything else
    rides the cycle-locked scalar member (still bit-identical)."""

    def test_default_config_is_in_envelope(self):
        assert vectorized_envelope(SimulationConfig())

    @pytest.mark.parametrize(
        "overrides,reason",
        [
            (dict(output_selection="random"), "output-selection"),
            (dict(output_selection="zigzag"), "output-selection"),
            (dict(input_selection="random"), "input-selection"),
        ],
    )
    def test_feature_leaves_envelope(self, overrides, reason):
        config = SimulationConfig(**overrides)
        assert not vectorized_envelope(config)
        assert reason in demotion_reasons(config)

    def test_demotion_reasons_reports_every_applicable_gate(self):
        # A point can fail several gates at once; the predicate must
        # name all of them, not stop at the first.
        config = SimulationConfig(
            output_selection="random", input_selection="random"
        )
        assert demotion_reasons(config) == (
            "output-selection", "input-selection"
        )

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(packet_timeout=100),
            dict(packet_timeout=100, max_retries=2),
            dict(channel_series_period=50),
            dict(collect_router_blocked=True),
            dict(collect_latency_histogram=True),
            dict(output_selection="round-robin"),
            dict(output_selection="max-credits"),
            dict(output_selection="threshold", selection_threshold=3),
            dict(virtual_channels=2),
            dict(virtual_channels=4),
        ],
    )
    def test_widened_feature_stays_in_envelope(self, overrides):
        config = SimulationConfig(**overrides)
        assert vectorized_envelope(config)
        assert demotion_reasons(config) == ()

    def test_fault_plan_stays_in_envelope(self):
        topology = parse_topology_spec("mesh:5x5")
        plan = FaultPlan.random_links(topology, 2, seed=1, start=50)
        assert vectorized_envelope(SimulationConfig(fault_plan=plan))

    @needs_numpy
    def test_sink_demotes_to_scalar_member_but_stays_identical(self):
        algorithm, pattern, config = build_point()
        sink = ListSink()
        sim = ArrayWormholeSimulator(
            algorithm, pattern, config.with_backend("array"), sink=sink
        )
        assert not sim.vectorized
        result = sim.run()
        assert result.to_dict() == event_result(build_point()).to_dict()
        assert sink.events


@needs_numpy
class TestBatchSimulator:
    def test_heterogeneous_batch_matches_solo_runs_in_order(self):
        # Mixed topologies, algorithms, loads, and VC counts — the
        # torus VC=2 point runs on the vectorized kernels too — in one
        # batch.
        points = [
            build_point("mesh:5x5", "west-first", seed=3),
            build_point("mesh:4x6", "north-last", seed=5, offered_load=0.8),
            build_point("cube:4", "p-cube", seed=7, offered_load=2.0),
            build_point("mesh:5x5", "west-first", seed=11),
            build_point(
                "torus:4x2", "negative-first-torus", seed=9,
                offered_load=0.6, virtual_channels=2,
            ),
        ]
        batch = BatchSimulator(
            [(a, p, c.with_backend("array")) for a, p, c in points]
        )
        assert batch.batch_size == 5
        assert batch.vectorized_count == 5
        results = batch.run()
        assert len(results) == 5
        for point, result in zip(points, results):
            assert result.to_dict() == event_result(point).to_dict()

    def test_deadlock_member_freezes_without_disturbing_others(self):
        # Unrestricted minimal routing at extreme load deadlocks (the
        # known point from test_deadlock_diagnostics); its batch
        # neighbours must still finish with solo-identical results.
        from repro.core import TurnModel
        from repro.routing import TurnRestrictedMinimal

        def deadlock_point():
            mesh = parse_topology_spec("mesh:6x6")
            algorithm = TurnRestrictedMinimal(
                mesh, TurnModel.from_prohibited("none", 2, set())
            )
            config = SimulationConfig(
                offered_load=8.0, warmup_cycles=0,
                measure_cycles=30_000, deadlock_threshold=1_200, seed=3,
            )
            return algorithm, make_pattern("uniform", mesh), config

        points = [
            build_point("mesh:5x5", "west-first", seed=3),
            deadlock_point(),
            build_point("mesh:5x5", "north-last", seed=13),
        ]
        results = BatchSimulator(
            [(a, p, c.with_backend("array")) for a, p, c in points]
        ).run()
        assert results[1].deadlock
        for builder, result in zip(
            [
                lambda: build_point("mesh:5x5", "west-first", seed=3),
                deadlock_point,
                lambda: build_point("mesh:5x5", "north-last", seed=13),
            ],
            results,
        ):
            assert result.to_dict() == event_result(builder()).to_dict()

    def test_lut_cap_demotes_to_scalar_fallback(self, monkeypatch):
        monkeypatch.setattr(ae, "_LUT_ENTRY_CAP", 0)
        monkeypatch.setattr(ae, "_GROUP_CACHE", {})
        algorithm, pattern, config = build_point()
        sim = ArrayWormholeSimulator(
            algorithm, pattern, config.with_backend("array")
        )
        assert not sim.vectorized
        assert (
            sim.run().to_dict() == event_result(build_point()).to_dict()
        )

    def test_group_cache_shared_and_bounded(self, monkeypatch):
        monkeypatch.setattr(ae, "_GROUP_CACHE", {})
        a1, p1, c1 = build_point(seed=3)
        a2, p2, c2 = build_point(seed=5)
        BatchSimulator([
            (a1, p1, c1.with_backend("array")),
            (a2, p2, c2.with_backend("array")),
        ])
        assert len(ae._GROUP_CACHE) == 1  # same algorithm+topology key
        for k in range(ae._GROUP_CACHE_MAX + 2):
            a, p, c = build_point(f"mesh:3x{k + 3}", measure_cycles=50)
            ArrayWormholeSimulator(a, p, c.with_backend("array"))
        assert len(ae._GROUP_CACHE) <= ae._GROUP_CACHE_MAX

    def test_group_cache_reused_across_successive_batches(
        self, monkeypatch
    ):
        # A second BatchSimulator over the same (algorithm, topology)
        # group must reuse the very same _GroupTables object — that
        # identity is what amortises LUT construction across a campaign.
        monkeypatch.setattr(ae, "_GROUP_CACHE", {})
        a1, p1, c1 = build_point(seed=3, measure_cycles=50)
        BatchSimulator([(a1, p1, c1.with_backend("array"))]).run()
        (first,) = ae._GROUP_CACHE.values()
        built_rows = int(first.cbuilt.sum())
        assert built_rows > 0  # the run populated LUT rows
        a2, p2, c2 = build_point(seed=5, measure_cycles=50)
        BatchSimulator([(a2, p2, c2.with_backend("array"))]).run()
        (second,) = ae._GROUP_CACHE.values()
        assert second is first  # identity, not an equal rebuild
        assert int(first.cbuilt.sum()) >= built_rows

    def test_group_cache_keys_vc_classes_separately(self, monkeypatch):
        # The cache key includes the VC-class dimension: dateline LUTs
        # for vc=2 must never alias the vc=1 (or vc=3) tables of the
        # same algorithm+topology, while equal-num_vc batches still
        # reuse the identical _GroupTables object.
        monkeypatch.setattr(ae, "_GROUP_CACHE", {})
        a, p, c = build_point(
            "torus:4x2", "dateline-dimension-order", offered_load=0.6,
            measure_cycles=50,
        )
        for num_vc in (1, 2, 3):
            cfg = dataclasses.replace(c, virtual_channels=num_vc)
            BatchSimulator([(a, p, cfg.with_backend("array"))]).run()
        assert len(ae._GROUP_CACHE) == 3
        keys = {
            ae._group_key(a, p.topology, num_vc) for num_vc in (1, 2, 3)
        }
        assert keys == set(ae._GROUP_CACHE)
        two = ae._GROUP_CACHE[ae._group_key(a, p.topology, 2)]
        cfg = dataclasses.replace(c, virtual_channels=2)
        BatchSimulator([(a, p, cfg.with_backend("array"))]).run()
        again = ae._GROUP_CACHE[ae._group_key(a, p.topology, 2)]
        assert again is two  # identity reuse within a VC class

    def test_group_cache_evicts_oldest_first(self, monkeypatch):
        monkeypatch.setattr(ae, "_GROUP_CACHE", {})
        keys = []
        for k in range(ae._GROUP_CACHE_MAX + 1):
            a, p, c = build_point(f"mesh:3x{k + 3}", measure_cycles=50)
            ArrayWormholeSimulator(a, p, c.with_backend("array"))
            keys.append(ae._group_key(a, p.topology))
        assert len(ae._GROUP_CACHE) == ae._GROUP_CACHE_MAX
        assert keys[0] not in ae._GROUP_CACHE  # FIFO: oldest evicted
        assert all(k in ae._GROUP_CACHE for k in keys[1:])

    def test_lut_entry_cap_exact_boundary(self, monkeypatch):
        # The gate is ``rows * K <= _LUT_ENTRY_CAP``: a cap exactly at
        # the group's entry count stays vectorized; one below demotes.
        algorithm, pattern, config = build_point()
        entries = ae._GroupTables(algorithm, pattern.topology).cand.size
        for cap, expect_fast in [
            (entries + 1, True), (entries, True), (entries - 1, False),
        ]:
            monkeypatch.setattr(ae, "_LUT_ENTRY_CAP", cap)
            monkeypatch.setattr(ae, "_GROUP_CACHE", {})
            sim = ArrayWormholeSimulator(
                algorithm, pattern, config.with_backend("array")
            )
            assert sim.vectorized is expect_fast
            if not expect_fast:
                assert sim.demotion_counts == {"lut-cap": 1}


@needs_numpy
class TestDemotionObservability:
    """Silent fast-path loss is the failure mode the coverage counters
    exist to catch: every demoted member shows up in demotion_counts
    and drags vectorized_fraction below 1.0."""

    def test_all_vectorized_batch_reports_full_coverage(self):
        a, p, c = build_point()
        batch = BatchSimulator([(a, p, c.with_backend("array"))])
        assert batch.vectorized_fraction == 1.0
        assert batch.demotion_counts == {}

    def test_mixed_batch_counts_each_gate(self):
        points = [
            build_point(seed=3),
            build_point(seed=5, virtual_channels=2),  # in-envelope now
            build_point(seed=7, output_selection="zigzag"),
            build_point(seed=9, output_selection="random"),
            build_point(
                seed=11, input_selection="random",
                output_selection="random",  # fails two gates at once
            ),
        ]
        batch = BatchSimulator(
            [(a, p, c.with_backend("array")) for a, p, c in points]
        )
        assert batch.vectorized_count == 2
        assert batch.vectorized_fraction == pytest.approx(0.4)
        # The double-gate member counts once under *each* reason.
        assert batch.demotion_counts == {
            "output-selection": 3,
            "input-selection": 1,
        }

    def test_sink_demotion_counted_as_runtime_gate(self):
        a, p, c = build_point()
        sim = ArrayWormholeSimulator(
            a, p, c.with_backend("array"), sink=ListSink()
        )
        assert sim.demotion_counts == {"trace-sink": 1}


@needs_numpy
class TestProfiledRuns:
    """``--profile`` no longer demotes: the array backend times its own
    kernel passes, and profiling only observes the clock — profiled runs
    stay bit-identical to unprofiled ones on both backends."""

    def test_profiler_does_not_demote_and_stays_identical(self):
        from repro.observability import PhaseProfiler

        a, p, c = build_point()
        profiler = PhaseProfiler()
        sim = ArrayWormholeSimulator(
            a, p, c.with_backend("array"), profiler=profiler
        )
        assert sim.vectorized
        assert sim.demotion_counts == {}
        result = sim.run()
        assert result.to_dict() == event_result(build_point()).to_dict()
        for phase in ("generate", "inject", "allocate", "advance",
                      "collect"):
            assert profiler.calls.get(phase, 0) > 0
        assert profiler.total_seconds > 0.0

    def test_profiled_vc_point_stays_identical(self):
        from repro.observability import PhaseProfiler

        point = (
            "torus:4x2", "negative-first-torus", "uniform",
        )
        kwargs = dict(seed=9, offered_load=0.6, virtual_channels=2)
        a, p, c = build_point(*point, **kwargs)
        sim = ArrayWormholeSimulator(
            a, p, c.with_backend("array"), profiler=PhaseProfiler()
        )
        assert sim.vectorized
        expected = event_result(build_point(*point, **kwargs))
        assert sim.run().to_dict() == expected.to_dict()


# The four golden operating points (tests/simulation/
# test_selection_engine.py pins these against the event engine; the
# array backend must reproduce them bit-for-bit).
GOLDEN = [
    (
        "mesh:8x8", "west-first", "uniform",
        dict(offered_load=1.2, seed=3, warmup_cycles=500,
             measure_cycles=2_000),
        (71, 65, 7870, 10641, 9666, 343, 0, 218, 6),
    ),
    (
        "mesh:8x8", "xy", "transpose",
        dict(offered_load=0.8, seed=11, warmup_cycles=400,
             measure_cycles=1_500),
        (37, 36, 3400, 4860, 4242, 212, 0, 213, 1),
    ),
    (
        "cube:6", "p-cube", "uniform",
        dict(offered_load=2.0, seed=5, warmup_cycles=300,
             measure_cycles=1_200),
        (57, 51, 6780, 8251, 7511, 160, 0, 222, 6),
    ),
    (
        "torus:6x2", "negative-first-torus", "uniform",
        dict(offered_load=0.6, seed=9, warmup_cycles=300,
             measure_cycles=1_200, virtual_channels=2),
        (14, 14, 520, 564, 564, 58, 8, 1, 0),
    ),
]

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)


@needs_numpy
class TestGoldenFingerprintsOnArrayBackend:
    @pytest.mark.parametrize(
        "topo_spec,algorithm,pattern,overrides,expected", GOLDEN
    )
    def test_golden_fingerprint(
        self, topo_spec, algorithm, pattern, overrides, expected
    ):
        topology = parse_topology_spec(topo_spec)
        config = SimulationConfig(backend="array", **overrides)
        result = make_simulator(
            make_algorithm(algorithm, topology),
            make_pattern(pattern, topology),
            config,
        ).run()
        fingerprint = tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        )
        assert fingerprint == expected

    def test_goldens_as_one_batch(self):
        points = []
        for topo_spec, algorithm, pattern, overrides, _ in GOLDEN:
            topology = parse_topology_spec(topo_spec)
            points.append((
                make_algorithm(algorithm, topology),
                make_pattern(pattern, topology),
                SimulationConfig(backend="array", **overrides),
            ))
        results = BatchSimulator(points).run()
        for (_, _, _, _, expected), result in zip(GOLDEN, results):
            fingerprint = tuple(
                getattr(result, name) for name in FINGERPRINT_FIELDS
            )
            assert fingerprint == expected
