"""Engine-level virtual-channel semantics: link bandwidth sharing,
per-VC allocation, and end-to-end behaviour of the VC algorithms."""

import pytest

from repro.routing import (
    DatelineDimensionOrder,
    EscapeVCAdaptive,
    WestFirst,
    XY,
)
from repro.simulation import PacketState, SimulationConfig, WormholeSimulator
from repro.topology import KAryNCube, Mesh2D
from repro.traffic import MeshTransposePattern, UniformPattern


def quiet(mesh, algorithm=None, **overrides):
    algorithm = algorithm or XY(mesh)
    defaults = dict(offered_load=0.0, warmup_cycles=0, measure_cycles=2_000)
    defaults.update(overrides)
    return WormholeSimulator(
        algorithm, UniformPattern(mesh), SimulationConfig(**defaults)
    )


class TestLinkSharing:
    def test_two_worms_share_one_link(self):
        """Two packets on different VCs of the same physical link each get
        half the bandwidth: both progress, neither is serialised behind
        the other's tail."""
        mesh = Mesh2D(8, 8)
        sim = quiet(mesh, virtual_channels=2)
        # Both packets need the eastward link out of (3,0); with one VC
        # the second would wait for the first's 120-flit tail.
        a = sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(7, 0), 120)
        b = sim.inject_packet(mesh.node_xy(3, 0), mesh.node_xy(7, 0), 120)
        while a.state is not PacketState.DELIVERED or (
            b.state is not PacketState.DELIVERED
        ):
            sim.step()
            assert sim.cycle < 2_000
        # Serialised delivery would put ~120+ cycles between them; the
        # interleaved VCs finish within ~2x a single packet's time and
        # close together.
        assert abs(a.delivered - b.delivered) < 150
        # Sharing halves each worm's rate: total time ~2x the solo time.
        assert max(a.delivered, b.delivered) > 190

    def test_one_flit_per_link_per_cycle(self):
        """Aggregate delivered bandwidth through a shared link cannot
        exceed the physical link rate."""
        mesh = Mesh2D(8, 8)
        sim = quiet(mesh, virtual_channels=2)
        a = sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(7, 0), 100)
        b = sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(7, 0), 100)
        start = sim.cycle
        while b.state is not PacketState.DELIVERED:
            sim.step()
            assert sim.cycle < 3_000
        elapsed = b.delivered - start
        assert elapsed >= 200  # 200 flits through one injection+links

    def test_single_vc_configuration_unchanged(self):
        """num_vc=1 must behave exactly as before the VC extension."""
        mesh = Mesh2D(8, 8)
        sim = quiet(mesh, virtual_channels=1)
        packet = sim.inject_packet(0, 7, 30)
        while packet.state is not PacketState.DELIVERED:
            sim.step()
        assert packet.delivered == 7 + 30 - 1


class TestVCAllocation:
    def test_distinct_vcs_of_a_link_have_distinct_owners(self):
        mesh = Mesh2D(8, 8)
        sim = quiet(mesh, virtual_channels=2)
        a = sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(7, 0), 60)
        b = sim.inject_packet(mesh.node_xy(1, 0), mesh.node_xy(7, 0), 60)
        for _ in range(20):
            sim.step()
        owners = {}
        for packet in (a, b):
            for hold in packet.holds:
                assert sim.channel_alloc[hold.channel_id] is packet
                owners[hold.channel_id] = packet
        # No runtime channel is double-held.
        assert len(owners) == sum(len(p.holds) for p in (a, b))

    def test_turn_model_algorithm_with_two_vcs_delivers(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=500,
            measure_cycles=3_000,
            virtual_channels=2,
            seed=6,
        )
        result = WormholeSimulator(
            WestFirst(mesh), UniformPattern(mesh), config
        ).run()
        assert not result.deadlock
        assert result.delivered_packets > 0


class TestVCAlgorithmsEndToEnd:
    def test_dateline_routes_minimally_on_torus(self):
        torus = KAryNCube(6, 2)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=1_000,
            measure_cycles=5_000,
            virtual_channels=2,
            seed=8,
        )
        result = WormholeSimulator(
            DatelineDimensionOrder(torus), UniformPattern(torus), config
        ).run()
        assert not result.deadlock
        # Minimal torus routing: ~3.0 mean hops on a 6x6 torus (vs 4.0
        # via the mesh-restricted nonminimal algorithms).
        assert result.avg_hops == pytest.approx(3.0, rel=0.1)

    def test_dateline_survives_overload(self):
        torus = KAryNCube(5, 2)
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=8_000,
            deadlock_threshold=1_500,
            virtual_channels=2,
            seed=8,
        )
        result = WormholeSimulator(
            DatelineDimensionOrder(torus), UniformPattern(torus), config
        ).run()
        assert not result.deadlock

    def test_escape_vc_survives_overload(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=8_000,
            deadlock_threshold=1_500,
            virtual_channels=2,
            seed=8,
        )
        result = WormholeSimulator(
            EscapeVCAdaptive(mesh), MeshTransposePattern(mesh), config
        ).run()
        assert not result.deadlock
        assert result.delivered_packets > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(virtual_channels=0)
