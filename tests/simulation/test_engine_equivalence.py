"""The three engine backends are bit-identical on every feature.

``WormholeSimulator(reference=True)`` runs the pre-optimisation code
paths: scan-every-source generation, derive-from-scratch routing, no
wakeup parking.  Every operating point here runs the reference scan
engine, the optimised event engine, and — when numpy is installed —
the batched array backend, and compares the *complete*
``SimulationResult.to_dict()`` — counters, histograms, backlog
samples, utilization series — plus, where a sink is attached, the full
ordered trace-event stream.  Any divergence in RNG draw order,
arbitration order, or accounting shows up as a mismatch.

Equivalence classification (docs/SIMULATOR.md has the full table):
every feature is **bit-identical** across all three backends.  Inside
the vectorized envelope (any virtual-channel count — plain multi-VC,
torus dateline classes, escape-VC adaptive — fcfs input selection, and
any deterministic output policy — xy, round-robin, max-credits,
threshold — including fault plans, watchdog timeouts with retries,
profilers, and the streaming collectors) the array backend's numpy
kernels reproduce the event engine's decision stream exactly; outside
it (random/zigzag selection, trace sinks, the LUT entry cap) the array
backend drives a cycle-locked event-engine member, bit-identical by
construction.  There is no
statistically-equivalent-only feature class.  ``assert_equivalent``
additionally asserts that in-envelope points really ran on the
vectorized kernels, so the fault/policy/watchdog/collector legs here
cannot silently regress onto the scalar fallback.
"""

import dataclasses

import pytest

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.faults.plan import FaultPlan
from repro.observability import ListSink
from repro.routing.registry import make_algorithm
from repro.simulation.array_engine import (
    demotion_reasons,
    make_simulator,
    numpy_available,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import WormholeSimulator


def build(topology_spec, algorithm, pattern, config, reference, sink=None):
    topology = parse_topology_spec(topology_spec)
    return WormholeSimulator(
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
        sink=sink,
        reference=reference,
    )


def build_array(topology_spec, algorithm, pattern, config, sink=None):
    topology = parse_topology_spec(topology_spec)
    return make_simulator(
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        dataclasses.replace(config, backend="array"),
        sink=sink,
    )


def assert_equivalent(topology_spec, algorithm, pattern, config, trace=True):
    ref_sink = ListSink() if trace else None
    opt_sink = ListSink() if trace else None
    ref = build(topology_spec, algorithm, pattern, config, True, ref_sink)
    opt = build(topology_spec, algorithm, pattern, config, False, opt_sink)
    ref_result = ref.run()
    opt_result = opt.run()
    assert opt_result.to_dict() == ref_result.to_dict()
    if trace:
        assert opt_sink.events == ref_sink.events
    assert opt_result.generated_packets > 0  # the point exercised traffic
    if not numpy_available():
        return
    # Third way: the array backend, sinkless first so the vectorized
    # kernels (not just the scalar fallback) carry in-envelope points.
    arr_sim = build_array(topology_spec, algorithm, pattern, config)
    if not demotion_reasons(config):
        assert arr_sim.vectorized
    arr_result = arr_sim.run()
    assert arr_result.to_dict() == opt_result.to_dict()
    if trace:
        arr_sink = ListSink()
        arr_traced = build_array(
            topology_spec, algorithm, pattern, config, sink=arr_sink
        )
        assert arr_traced.run().to_dict() == opt_result.to_dict()
        assert arr_sink.events == opt_sink.events


MESH_ALGOS = ["xy", "west-first", "north-last", "negative-first"]


class TestMeshEquivalence:
    @pytest.mark.parametrize("algorithm", MESH_ALGOS)
    def test_saturated_mesh(self, algorithm):
        config = SimulationConfig(
            offered_load=1.5, warmup_cycles=100, measure_cycles=500, seed=3
        )
        assert_equivalent("mesh:6x6", algorithm, "uniform", config)

    def test_low_load_transpose(self):
        config = SimulationConfig(
            offered_load=0.6, warmup_cycles=100, measure_cycles=500, seed=11
        )
        assert_equivalent("mesh:8x8", "west-first", "transpose", config)

    def test_nonminimal_with_misroutes(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=500,
            seed=5, misroute_limit=2,
        )
        assert_equivalent("mesh:5x5", "negative-first", "uniform", config)

    def test_random_selection_policies(self):
        # Random input/output selection consumes RNG draws during
        # arbitration — the wakeup optimisation must not add or skip any.
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=400,
            seed=7, input_selection="random", output_selection="random",
        )
        assert_equivalent("mesh:5x5", "west-first", "uniform", config)

    def test_deep_buffers_and_long_messages(self):
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=100, measure_cycles=400,
            seed=9, buffer_depth=4, message_lengths=(5, 20, 60),
        )
        assert_equivalent("mesh:5x5", "north-last", "uniform", config)


class TestOtherTopologies:
    def test_hypercube_pcube(self):
        config = SimulationConfig(
            offered_load=2.0, warmup_cycles=100, measure_cycles=400, seed=5
        )
        assert_equivalent("cube:6", "p-cube", "uniform", config)

    def test_hypercube_ecube_reverse_flip(self):
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=100, measure_cycles=400, seed=2
        )
        assert_equivalent("cube:5", "e-cube", "reverse-flip", config)

    def test_torus_virtual_channels(self):
        config = SimulationConfig(
            offered_load=0.6, warmup_cycles=100, measure_cycles=400,
            seed=9, virtual_channels=2,
        )
        assert_equivalent(
            "torus:6x2", "negative-first-torus", "uniform", config
        )

    def test_torus_dateline_vc(self):
        config = SimulationConfig(
            offered_load=0.8, warmup_cycles=100, measure_cycles=400,
            seed=4, virtual_channels=2,
        )
        assert_equivalent(
            "torus:8x1", "dateline-dimension-order", "uniform", config
        )

    def test_mesh_escape_vc_adaptive(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=400,
            seed=6, virtual_channels=2,
        )
        assert_equivalent("mesh:5x5", "escape-vc-adaptive", "uniform", config)


class TestFaultEquivalence:
    def test_mid_run_link_failures(self):
        topology = parse_topology_spec("mesh:6x6")
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=100, measure_cycles=600,
            seed=3, drain_cycles=200,
            fault_plan=FaultPlan.random_links(topology, 3, seed=4, start=150),
            packet_timeout=300, max_retries=2,
        )
        assert_equivalent("mesh:6x6", "west-first", "uniform", config)

    def test_transient_faults_heal(self):
        topology = parse_topology_spec("mesh:6x6")
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=100, measure_cycles=600,
            seed=8, drain_cycles=200,
            fault_plan=FaultPlan.random_links(
                topology, 3, seed=5, start=150, end=400
            ),
            packet_timeout=300, max_retries=2,
        )
        assert_equivalent("mesh:6x6", "west-first", "uniform", config)

    def test_router_failure(self):
        from repro.faults.plan import FaultEvent

        plan = FaultPlan(events=(FaultEvent.router(14, start=200),))
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=100, measure_cycles=500,
            seed=6, fault_plan=plan, packet_timeout=250, max_retries=1,
        )
        assert_equivalent("mesh:6x6", "west-first", "uniform", config)


class TestSelectionPolicyEquivalence:
    """The congestion-aware policies read live allocation state and the
    stateful ones carry rotation pointers; both engines must invoke them
    at identical decision points or the streams diverge immediately."""

    @pytest.mark.parametrize(
        "policy", ["round-robin", "max-credits", "threshold"]
    )
    def test_saturated_mesh(self, policy):
        config = SimulationConfig(
            offered_load=1.5, warmup_cycles=100, measure_cycles=400,
            seed=3, output_selection=policy,
        )
        assert_equivalent("mesh:6x6", "west-first", "transpose", config)

    @pytest.mark.parametrize("policy", ["max-credits", "threshold"])
    def test_under_faults(self, policy):
        topology = parse_topology_spec("mesh:6x6")
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=500,
            seed=5, drain_cycles=200, output_selection=policy,
            fault_plan=FaultPlan.random_links(topology, 3, seed=4, start=150),
            packet_timeout=300, max_retries=2,
        )
        assert_equivalent("mesh:6x6", "negative-first", "uniform", config)

    def test_escape_vc_adaptive(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=400,
            seed=6, virtual_channels=2, output_selection="max-credits",
        )
        assert_equivalent("mesh:5x5", "escape-vc-adaptive", "uniform", config)


class TestWatchdogEquivalence:
    """Stall watchdogs + bounded-backoff retries without any faults:
    pure congestion pushes packet ages past the timeout, and both
    engines must kill, classify, and requeue the same victims on the
    same cycles."""

    def test_timeouts_fire_under_pure_congestion(self):
        config = SimulationConfig(
            offered_load=3.0, warmup_cycles=100, measure_cycles=500,
            seed=3, packet_timeout=100, max_retries=1, drain_cycles=100,
        )
        ref = build("mesh:6x6", "west-first", "transpose", config, True)
        result = ref.run()
        assert result.retried_packets > 0  # the watchdog really fired
        assert_equivalent("mesh:6x6", "west-first", "transpose", config)

    def test_zero_retries_drops_permanently(self):
        config = SimulationConfig(
            offered_load=3.0, warmup_cycles=100, measure_cycles=400,
            seed=7, packet_timeout=90, max_retries=0,
        )
        assert_equivalent("mesh:6x6", "north-last", "transpose", config)


class TestObservabilityEquivalence:
    def test_collectors_on(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=500, seed=3
        ).with_observability()
        assert_equivalent("mesh:6x6", "west-first", "uniform", config)

    def test_collectors_off_no_trace(self):
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=500, seed=3
        )
        assert_equivalent(
            "mesh:6x6", "west-first", "uniform", config, trace=False
        )
