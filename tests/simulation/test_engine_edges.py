"""Edge cases of the engine: tiny packets, validation, queue caps, and
the step() API."""

import pytest

from repro.routing import XY
from repro.simulation import (
    PacketState,
    SimulationConfig,
    WormholeSimulator,
)
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


def quiet_sim(mesh=None, **overrides):
    mesh = mesh or Mesh2D(4, 4)
    defaults = dict(offered_load=0.0, warmup_cycles=0, measure_cycles=1000)
    defaults.update(overrides)
    return WormholeSimulator(
        XY(mesh), UniformPattern(mesh), SimulationConfig(**defaults)
    )


class TestInjectValidation:
    def test_self_message_rejected(self):
        sim = quiet_sim()
        with pytest.raises(ValueError):
            sim.inject_packet(3, 3, 10)

    def test_zero_length_rejected(self):
        sim = quiet_sim()
        with pytest.raises(ValueError):
            sim.inject_packet(0, 1, 0)


class TestSingleFlitPackets:
    def test_one_flit_to_neighbor(self):
        mesh = Mesh2D(4, 4)
        sim = quiet_sim(mesh)
        packet = sim.inject_packet(0, 1, 1, created=0)
        for _ in range(10):
            sim.step()
            if packet.state is PacketState.DELIVERED:
                break
        assert packet.state is PacketState.DELIVERED
        # distance + length - 1 = 1 + 1 - 1 = 1 cycle to arrive, then the
        # ejection handshake.
        assert packet.delivered <= 4

    def test_back_to_back_single_flits(self):
        mesh = Mesh2D(4, 4)
        sim = quiet_sim(mesh)
        packets = [sim.inject_packet(0, 3, 1, created=0) for _ in range(5)]
        for _ in range(60):
            sim.step()
        assert all(p.state is PacketState.DELIVERED for p in packets)
        # FCFS injection: delivery order follows queue order.
        deliveries = [p.delivered for p in packets]
        assert deliveries == sorted(deliveries)


class TestQueueCap:
    def test_generation_stops_at_cap(self):
        mesh = Mesh2D(3, 3)
        config = SimulationConfig(
            offered_load=200.0,  # absurd overload
            warmup_cycles=0,
            measure_cycles=3_000,
            max_queue_per_node=20,
            seed=1,
            deadlock_threshold=10_000,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        sim.run()
        assert all(len(q) <= 20 for q in sim.queues)


class TestStepAPI:
    def test_step_advances_cycle(self):
        sim = quiet_sim()
        assert sim.cycle == 0
        sim.step()
        sim.step()
        assert sim.cycle == 2

    def test_step_and_run_agree_on_quiet_network(self):
        mesh = Mesh2D(4, 4)
        a = quiet_sim(mesh)
        b = quiet_sim(mesh)
        pa = a.inject_packet(0, 15, 12, created=0)
        pb = b.inject_packet(0, 15, 12, created=0)
        for _ in range(200):
            a.step()
        b.run()
        assert pa.delivered == pb.delivered


class TestWatchdogQuietNetwork:
    def test_idle_network_never_reports_deadlock(self):
        """No packets in flight -> silence is not deadlock."""
        mesh = Mesh2D(3, 3)
        config = SimulationConfig(
            offered_load=0.0,
            warmup_cycles=0,
            measure_cycles=9_000,
            deadlock_threshold=500,
        )
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        assert not result.deadlock
