"""Engine wiring for the selection-policy subsystem: the default path
stays bit-identical to the pre-policy engine (golden fingerprints),
congestion views bind only on demand, and every policy is only ever
offered — and only ever returns — legal candidates, under faults and
escape VCs included."""

import pytest

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.faults import FaultPlan
from repro.routing import make_algorithm
from repro.routing.selection import (
    MaxFreeCredits,
    ThresholdReroute,
    XYPreference,
)
from repro.simulation import SimulationConfig, WormholeSimulator

# The same golden operating points that pin the fault subsystem's
# zero-fault bit-identity (tests/faults/test_fault_injection.py).
# Selecting the "xy" policy explicitly must reproduce them exactly:
# XYPreference is the old inline min() rule, draws no RNG, and binds
# no congestion view.
GOLDEN = [
    (
        "mesh:8x8", "west-first", "uniform",
        dict(offered_load=1.2, seed=3, warmup_cycles=500,
             measure_cycles=2_000),
        (71, 65, 7870, 10641, 9666, 343, 0, 218, 6),
    ),
    (
        "mesh:8x8", "xy", "transpose",
        dict(offered_load=0.8, seed=11, warmup_cycles=400,
             measure_cycles=1_500),
        (37, 36, 3400, 4860, 4242, 212, 0, 213, 1),
    ),
    (
        "cube:6", "p-cube", "uniform",
        dict(offered_load=2.0, seed=5, warmup_cycles=300,
             measure_cycles=1_200),
        (57, 51, 6780, 8251, 7511, 160, 0, 222, 6),
    ),
    (
        "torus:6x2", "negative-first-torus", "uniform",
        dict(offered_load=0.6, seed=9, warmup_cycles=300,
             measure_cycles=1_200, virtual_channels=2),
        (14, 14, 520, 564, 564, 58, 8, 1, 0),
    ),
]

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)


def build_sim(topo_spec, algorithm, pattern, overrides):
    topology = parse_topology_spec(topo_spec)
    config = SimulationConfig(**overrides)
    return WormholeSimulator(
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
    )


class TestDefaultPathBitIdentity:
    @pytest.mark.parametrize(
        "topo_spec,algorithm,pattern,overrides,expected", GOLDEN
    )
    def test_explicit_xy_policy_matches_golden_fingerprint(
        self, topo_spec, algorithm, pattern, overrides, expected
    ):
        sim = build_sim(
            topo_spec, algorithm, pattern,
            dict(overrides, output_selection="xy"),
        )
        # The policy-class registry resolves "xy" to XYPreference with
        # no congestion view bound — the zero-cost default path.
        assert isinstance(sim.output_policy, XYPreference)
        assert sim.output_policy.view is None
        result = sim.run()
        fingerprint = tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        )
        assert fingerprint == expected


class TestCongestionBinding:
    def test_congestion_policy_gets_engine_view(self):
        sim = build_sim(
            "mesh:4x4", "west-first", "uniform",
            dict(offered_load=0.5, warmup_cycles=10, measure_cycles=10,
                 output_selection="max-credits"),
        )
        assert isinstance(sim.output_policy, MaxFreeCredits)
        assert sim.output_policy.view is not None

    def test_threshold_knob_reaches_the_policy(self):
        sim = build_sim(
            "mesh:4x4", "west-first", "uniform",
            dict(offered_load=0.5, warmup_cycles=10, measure_cycles=10,
                 output_selection="threshold", selection_threshold=5),
        )
        assert isinstance(sim.output_policy, ThresholdReroute)
        assert sim.output_policy.threshold == 5

    def test_fresh_policy_per_simulator(self):
        overrides = dict(
            offered_load=0.5, warmup_cycles=10, measure_cycles=10,
            output_selection="round-robin",
        )
        a = build_sim("mesh:4x4", "west-first", "uniform", overrides)
        b = build_sim("mesh:4x4", "west-first", "uniform", overrides)
        assert a.output_policy is not b.output_policy


class _LegalitySpy:
    """Wraps the engine's output policy: every invocation must offer a
    non-empty subset of the algorithm's legal (or escape) candidates,
    and the policy must pick from what it was offered."""

    def __init__(self, sim):
        self.sim = sim
        self.inner = sim.output_policy
        self.decisions = 0
        sim.output_policy = self

    # The engine only reads ``uses_congestion`` at construction time,
    # so forwarding the live attributes is enough for the hot loop.
    def __call__(self, options, packet, rng):
        sim = self.sim
        assert options, "policy invoked with an empty candidate set"
        node, dest = packet.head_node, packet.dst
        in_direction = packet.head_direction
        if sim.num_vc == 1:
            legal = set(sim.algorithm.candidates(node, dest, in_direction))
            legal |= set(
                sim.algorithm.escape_candidates(node, dest, in_direction)
            )
        else:
            in_vc = packet.head_vc
            legal = {
                d for d, _ in sim.algorithm.vc_candidates(
                    node, dest, in_direction, in_vc, sim.num_vc
                )
            }
            legal |= {
                d for d, _ in sim.algorithm.vc_escape_candidates(
                    node, dest, in_direction, in_vc, sim.num_vc
                )
            }
        assert set(options) <= legal, (
            f"offered {options} outside legal set {legal} at node {node}"
        )
        choice = self.inner(options, packet, rng)
        assert choice in options, (
            f"{self.inner!r} returned {choice} not in {options}"
        )
        self.decisions += 1
        return choice


SPY_CASES = [
    # (label, topo, algorithm, pattern, extra config)
    ("fault-free", "mesh:6x6", "west-first", "transpose", {}),
    (
        "fault-masked",
        "mesh:6x6", "negative-first", "uniform",
        dict(fault_links=6),
    ),
    (
        "escape-vc",
        "torus:6x2", "negative-first-torus", "uniform",
        dict(virtual_channels=2),
    ),
]


@pytest.mark.parametrize("policy", ["xy", "round-robin", "max-credits", "threshold"])
@pytest.mark.parametrize(
    "label,topo_spec,algorithm,pattern,extra",
    SPY_CASES, ids=[c[0] for c in SPY_CASES],
)
def test_policies_only_choose_legal_candidates(
    label, topo_spec, algorithm, pattern, extra, policy
):
    extra = dict(extra)
    fault_links = extra.pop("fault_links", 0)
    topology = parse_topology_spec(topo_spec)
    overrides = dict(
        offered_load=1.5, seed=2, warmup_cycles=100, measure_cycles=400,
        output_selection=policy, **extra,
    )
    if fault_links:
        overrides["fault_plan"] = FaultPlan.random_links(
            topology, fault_links, seed=4, start=50
        )
        overrides["packet_timeout"] = 300
        overrides["max_retries"] = 1
    config = SimulationConfig(**overrides)
    sim = WormholeSimulator(
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
    )
    spy = _LegalitySpy(sim)
    sim.run()
    assert spy.decisions > 0, "spy never saw a routing decision"
