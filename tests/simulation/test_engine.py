"""Engine-level behaviour: generation, arbitration policies, metrics,
determinism, and the deadlock watchdog."""

import pytest

from repro.core import TurnModel
from repro.routing import TurnRestrictedMinimal, XY, WestFirst
from repro.simulation import (
    PacketState,
    SimulationConfig,
    WormholeSimulator,
    detect_deadlock,
)
from repro.simulation.selection import (
    fcfs_input_selection,
    get_input_policy,
    get_output_policy,
    xy_output_selection,
    zigzag_output_selection,
)
from repro.topology import EAST, Mesh2D, NORTH
from repro.traffic import MeshTransposePattern, UniformPattern


class TestGeneration:
    def test_offered_load_matches_generated_volume(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0, warmup_cycles=0, measure_cycles=20_000, seed=2
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        result = sim.run()
        expected_msgs = (
            config.messages_per_cycle * config.measure_cycles * 64
        )
        assert result.generated_packets == pytest.approx(
            expected_msgs, rel=0.1
        )

    def test_zero_load_generates_nothing(self):
        mesh = Mesh2D(4, 4)
        config = SimulationConfig(
            offered_load=0.0, warmup_cycles=0, measure_cycles=500
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        result = sim.run()
        assert result.generated_packets == 0
        assert result.delivered_packets == 0

    def test_message_lengths_sampled_from_config(self):
        mesh = Mesh2D(4, 4)
        config = SimulationConfig(
            offered_load=2.0,
            warmup_cycles=0,
            measure_cycles=3_000,
            message_lengths=(7,),
            seed=3,
        )
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        result = sim.run()
        assert set(result.latency_by_length) == {7}

    def test_fixed_points_generate_no_traffic(self):
        mesh = Mesh2D(4, 4)
        pattern = MeshTransposePattern(mesh)
        config = SimulationConfig(offered_load=1.0, warmup_cycles=0, measure_cycles=100)
        sim = WormholeSimulator(XY(mesh), pattern, config)
        assert len(sim.sources) == 12  # 16 nodes minus the 4 diagonal


class TestDeterminism:
    def test_same_seed_same_result(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.5, warmup_cycles=200, measure_cycles=2_000, seed=9
        )
        results = [
            WormholeSimulator(WestFirst(mesh), UniformPattern(mesh), config).run()
            for _ in range(2)
        ]
        assert results[0].delivered_packets == results[1].delivered_packets
        assert results[0].delivered_flits == results[1].delivered_flits
        assert (
            results[0].total_latency_cycles == results[1].total_latency_cycles
        )

    def test_different_seed_different_traffic(self):
        mesh = Mesh2D(8, 8)
        base = SimulationConfig(
            offered_load=1.5, warmup_cycles=200, measure_cycles=2_000, seed=9
        )
        a = WormholeSimulator(XY(mesh), UniformPattern(mesh), base).run()
        b = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), base.with_seed(10)
        ).run()
        assert a.total_latency_cycles != b.total_latency_cycles


class TestSelectionPolicies:
    def test_fcfs_prefers_earlier_arrival(self):
        class P:
            def __init__(self, pid, since):
                self.pid, self.header_wait_since = pid, since

        early, late = P(2, 10), P(1, 20)
        assert fcfs_input_selection([late, early], None) is early

    def test_fcfs_tie_breaks_on_pid(self):
        class P:
            def __init__(self, pid, since):
                self.pid, self.header_wait_since = pid, since

        a, b = P(2, 10), P(1, 10)
        assert fcfs_input_selection([a, b], None) is b

    def test_xy_output_selection_prefers_lowest_dimension(self):
        options = [NORTH, EAST]
        assert xy_output_selection(options, None, None) == EAST

    def test_zigzag_prefers_dimension_change(self):
        class P:
            head_direction = EAST

        assert zigzag_output_selection([EAST, NORTH], P(), None) == NORTH

    def test_unknown_policy_names_raise(self):
        with pytest.raises(KeyError):
            get_output_policy("nope")
        with pytest.raises(KeyError):
            get_input_policy("nope")

    def test_random_policies_run(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=100,
            measure_cycles=1_000,
            input_selection="random",
            output_selection="random",
            seed=4,
        )
        result = WormholeSimulator(
            WestFirst(mesh), UniformPattern(mesh), config
        ).run()
        assert result.delivered_packets > 0


class TestMetrics:
    def test_latency_includes_source_queueing(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(offered_load=0.0, warmup_cycles=0, measure_cycles=2000)
        sim = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        first = sim.inject_packet(0, 7, 100, created=0)
        second = sim.inject_packet(0, 7, 10, created=0)
        while second.state is not PacketState.DELIVERED:
            sim.step()
        result = sim.result
        # Second message waited ~100 cycles at the source; total latency
        # must reflect that, network latency must not.
        assert result.total_latency_cycles > result.total_net_latency_cycles
        assert second.delivered - second.injected < 40

    def test_throughput_counts_measurement_window_only(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=0.4, warmup_cycles=2_000, measure_cycles=6_000, seed=5
        )
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        # Well below saturation, delivered volume tracks offered volume
        # (modulo end-of-window truncation of in-flight messages).
        offered_flits = 64 * 0.4 * result.measure_time_us
        assert result.delivered_flits == pytest.approx(offered_flits, rel=0.3)

    def test_summary_renders(self):
        mesh = Mesh2D(4, 4)
        config = SimulationConfig(offered_load=0.5, warmup_cycles=100, measure_cycles=500)
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        text = result.summary()
        assert "xy" in text and "uniform" in text


class TestDeadlockWatchdog:
    def test_unrestricted_adaptive_routing_deadlocks(self):
        """Figure 1: with no prohibited turns, circular waits happen."""
        mesh = Mesh2D(8, 8)
        anything_goes = TurnRestrictedMinimal(
            mesh, TurnModel.from_prohibited("none", 2, set())
        )
        config = SimulationConfig(
            offered_load=6.0,
            warmup_cycles=0,
            measure_cycles=60_000,
            deadlock_threshold=2_000,
            seed=1,
        )
        sim = WormholeSimulator(anything_goes, UniformPattern(mesh), config)
        result = sim.run()
        assert result.deadlock
        report = detect_deadlock(sim)
        assert report.deadlocked  # a genuine circular wait, not a strand
        assert all(len(cycle) >= 2 for cycle in report.cycles)

    def test_turn_model_routing_never_trips_watchdog(self):
        mesh = Mesh2D(8, 8)
        config = SimulationConfig(
            offered_load=6.0,
            warmup_cycles=0,
            measure_cycles=15_000,
            deadlock_threshold=2_000,
            seed=1,
        )
        result = WormholeSimulator(
            WestFirst(mesh), UniformPattern(mesh), config
        ).run()
        assert not result.deadlock


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SimulationConfig(buffer_depth=0)
        with pytest.raises(ValueError):
            SimulationConfig(channel_bandwidth=0)
        with pytest.raises(ValueError):
            SimulationConfig(message_lengths=())
        with pytest.raises(ValueError):
            SimulationConfig(offered_load=-1)
        with pytest.raises(ValueError):
            SimulationConfig(misroute_limit=-1)

    def test_derived_quantities(self):
        config = SimulationConfig(offered_load=2.1)
        assert config.cycle_time_us == pytest.approx(0.05)
        assert config.mean_message_length == pytest.approx(105.0)
        assert config.messages_per_cycle == pytest.approx(2.1 / 20 / 105)

    def test_with_load_preserves_other_fields(self):
        config = SimulationConfig(seed=42, buffer_depth=2)
        other = config.with_load(3.0)
        assert other.offered_load == 3.0
        assert other.seed == 42 and other.buffer_depth == 2
