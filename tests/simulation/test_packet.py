"""Unit tests for Packet and ChannelHold state."""

from repro.simulation import ChannelHold, Packet, PacketState


class TestPacket:
    def test_initial_state(self):
        p = Packet(pid=1, src=0, dst=5, length=10, created=100)
        assert p.state is PacketState.QUEUED
        assert not p.in_network
        assert p.flits_in_network == 0
        assert p.head_node == 0
        assert p.injected is None and p.delivered is None
        assert p.header_wait_since == 100

    def test_in_network_states(self):
        p = Packet(1, 0, 5, 10, 0)
        for state in (
            PacketState.ROUTING,
            PacketState.MOVING,
            PacketState.EJECT_WAIT,
            PacketState.EJECTING,
        ):
            p.state = state
            assert p.in_network
        p.state = PacketState.DELIVERED
        assert not p.in_network

    def test_flits_in_network_accounting(self):
        p = Packet(1, 0, 5, 10, 0)
        p.launched = 7
        p.ejected = 3
        assert p.flits_in_network == 4

    def test_repr_mentions_route(self):
        p = Packet(9, 3, 4, 200, 0)
        text = repr(p)
        assert "#9" in text and "3->4" in text and "200" in text


class TestChannelHold:
    def test_initial(self):
        h = ChannelHold(17)
        assert h.channel_id == 17
        assert h.moved == 0 and h.buffered == 0

    def test_slots_prevent_arbitrary_attributes(self):
        h = ChannelHold(0)
        try:
            h.extra = 1
        except AttributeError:
            pass
        else:
            raise AssertionError("ChannelHold should use __slots__")

    def test_repr(self):
        h = ChannelHold(3)
        h.moved, h.buffered = 5, 1
        assert "ch=3" in repr(h)
