"""Flit-level semantics of the wormhole simulator, checked against
hand-computed timings on small deterministic scenarios.

Key facts encoded here (Section 1 of the paper): wormhole latency is
proportional to the *sum* of packet length and distance — in this
simulator exactly ``distance + length - 1`` cycles for an uncontended
packet — and a blocked worm holds its chain of channels in place.
"""

import pytest

from repro.routing import XY
from repro.simulation import (
    PacketState,
    SimulationConfig,
    WormholeSimulator,
)
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


def quiet_config(**overrides):
    """No background traffic; packets are injected by hand."""
    defaults = dict(
        offered_load=0.0,
        warmup_cycles=0,
        measure_cycles=1_000,
        seed=1,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def make_sim(mesh=None, **overrides):
    mesh = mesh or Mesh2D(8, 8)
    return WormholeSimulator(
        XY(mesh), UniformPattern(mesh), quiet_config(**overrides)
    )


def run_until_delivered(sim, packet, limit=10_000):
    while packet.state is not PacketState.DELIVERED:
        sim.step()
        if sim.cycle > limit:
            raise AssertionError(f"{packet} not delivered within {limit} cycles")
    return packet


class TestSinglePacketTiming:
    @pytest.mark.parametrize(
        "src_xy,dst_xy,length",
        [((0, 0), (3, 0), 1), ((0, 0), (3, 0), 10), ((1, 1), (5, 4), 7),
         ((0, 0), (7, 7), 200)],
    )
    def test_uncontended_latency_is_distance_plus_length_minus_one(
        self, src_xy, dst_xy, length
    ):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        src, dst = mesh.node_at(src_xy), mesh.node_at(dst_xy)
        packet = sim.inject_packet(src, dst, length, created=0)
        run_until_delivered(sim, packet)
        hops = mesh.distance(src, dst)
        assert packet.delivered - packet.created == hops + length - 1
        assert packet.hops == hops

    def test_flit_conservation(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        packet = sim.inject_packet(0, 63, 50, created=0)
        run_until_delivered(sim, packet)
        assert packet.launched == packet.ejected == 50
        assert packet.flits_in_network == 0
        assert packet.holds == []

    def test_all_channels_released_after_delivery(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        packet = sim.inject_packet(0, 63, 30, created=0)
        run_until_delivered(sim, packet)
        assert all(owner is None for owner in sim.channel_alloc)
        assert all(owner is None for owner in sim.ejection_alloc)
        assert all(owner is None for owner in sim.injection_busy)

    def test_worm_occupies_a_contiguous_channel_chain(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        packet = sim.inject_packet(0, 7, 200, created=0)
        for _ in range(5):
            sim.step()
        held = [sim.channels[h.channel_id] for h in packet.holds]
        assert [c.src for c in held[1:]] == [c.dst for c in held[:-1]]
        # With single-flit buffers each held channel buffers at most 1 flit.
        assert all(h.buffered <= 1 for h in packet.holds)


class TestPipelining:
    def test_short_packet_frees_tail_channels_while_head_advances(self):
        """A 2-flit worm on a long path holds at most ~2 channels."""
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        packet = sim.inject_packet(0, 7, 2, created=0)
        max_held = 0
        while packet.state is not PacketState.DELIVERED:
            sim.step()
            max_held = max(max_held, len(packet.holds))
        assert max_held <= 3

    def test_long_packet_stretches_over_whole_path(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        packet = sim.inject_packet(0, 7, 200, created=0)
        seen_full_stretch = False
        while packet.state is not PacketState.DELIVERED:
            sim.step()
            if len(packet.holds) == 7:
                seen_full_stretch = True
        assert seen_full_stretch


class TestBlockingAndRelease:
    def test_blocked_worm_holds_channels(self):
        """A long packet blocks a crossing packet until its tail drains."""
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        # Blocker: long worm along row 1 (xy routing keeps it horizontal).
        blocker = sim.inject_packet(
            mesh.node_xy(0, 1), mesh.node_xy(7, 1), 150, created=0
        )
        for _ in range(6):
            sim.step()
        # Crosser: needs the vertical channel at (3,1) after one x-hop...
        # xy routes it east along row 0 then north through the column that
        # the blocker does NOT occupy; instead send it up column 3 across
        # row 1: from (3,0) to (3,3) the column channel at (3,1) is free -
        # the blocker holds only horizontal channels, so it must NOT block.
        crosser = sim.inject_packet(
            mesh.node_xy(3, 0), mesh.node_xy(3, 3), 5, created=sim.cycle
        )
        run_until_delivered(sim, crosser)
        assert blocker.state is not PacketState.DELIVERED
        run_until_delivered(sim, blocker)

    def test_head_on_channel_contention_serialises(self):
        """Two packets that need the same channel share it one at a time."""
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        first = sim.inject_packet(
            mesh.node_xy(0, 0), mesh.node_xy(4, 0), 60, created=0
        )
        sim.step()  # let the first packet grab the row
        second = sim.inject_packet(
            mesh.node_xy(1, 0), mesh.node_xy(5, 0), 10, created=sim.cycle
        )
        run_until_delivered(sim, second)
        run_until_delivered(sim, first)
        # The second packet needed channels held by the first, so it must
        # have been delivered after the first released them.
        assert second.delivered > first.created + 60

    def test_ejection_contention_serialises(self):
        """One ejection channel per node: simultaneous arrivals queue."""
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        dst = mesh.node_xy(4, 4)
        a = sim.inject_packet(mesh.node_xy(0, 4), dst, 40, created=0)
        b = sim.inject_packet(mesh.node_xy(4, 0), dst, 40, created=0)
        run_until_delivered(sim, a)
        run_until_delivered(sim, b)
        # 40 flits at 1 flit/cycle each: the two drains cannot overlap.
        assert abs(a.delivered - b.delivered) >= 40


class TestInjectionSerialisation:
    def test_second_message_waits_for_first_tail_to_launch(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        first = sim.inject_packet(0, 7, 100, created=0)
        second = sim.inject_packet(0, 56, 10, created=0)
        run_until_delivered(sim, second)
        # The second header cannot leave before the first tail has
        # launched (100 flits at 1 flit/cycle).
        assert second.injected >= 100

    def test_source_queue_backlog_tracked(self):
        mesh = Mesh2D(8, 8)
        sim = make_sim(mesh)
        sim.inject_packet(0, 7, 100, created=0)
        sim.inject_packet(0, 56, 10, created=0)
        sim.inject_packet(0, 57, 10, created=0)
        sim.step()
        # One launching, two still queued.
        assert sim.queues[0] and len(sim.queues[0]) == 2


class TestBufferDepth:
    def test_deeper_buffers_compress_a_blocked_worm(self):
        """When the head blocks, flits pile up to the buffer depth, so the
        worm needs fewer channels to park its body."""
        mesh = Mesh2D(8, 8)
        launched = {}
        for depth in (1, 4):
            sim = make_sim(mesh, buffer_depth=depth)
            # Blocker parks across row 0 and cannot finish (its own head
            # keeps streaming, so it holds the row for a long time).
            blocker = sim.inject_packet(
                mesh.node_xy(2, 0), mesh.node_xy(7, 0), 400, created=0
            )
            sim.step()
            victim = sim.inject_packet(
                mesh.node_xy(0, 0), mesh.node_xy(4, 0), 12, created=sim.cycle
            )
            for _ in range(40):
                sim.step()
            assert victim.state is not PacketState.DELIVERED
            launched[depth] = victim.launched
            max_fill = max((h.buffered for h in victim.holds), default=0)
            assert max_fill <= depth
            if depth > 1:
                assert max_fill > 1
        # The blocked victim holds two channels either way, but four-deep
        # buffers park four times the flits off the source.
        assert launched[1] == 2
        assert launched[4] == 8

    def test_latency_unchanged_by_buffer_depth_without_contention(self):
        mesh = Mesh2D(8, 8)
        for depth in (1, 2, 8):
            sim = make_sim(mesh, buffer_depth=depth)
            packet = sim.inject_packet(0, 63, 30, created=0)
            run_until_delivered(sim, packet)
            assert packet.delivered == mesh.distance(0, 63) + 30 - 1
