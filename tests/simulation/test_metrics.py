"""Unit tests for SimulationResult metrics and the sustainability rule."""

import pytest

from repro.simulation import SimulationResult


def make_result(**overrides):
    defaults = dict(
        algorithm="xy",
        pattern="uniform",
        offered_load=1.0,
        num_nodes=256,
        active_sources=256,
        measure_cycles=10_000,
        cycle_time_us=0.05,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestLatency:
    def test_no_deliveries_means_no_latency(self):
        result = make_result()
        assert result.avg_latency_us is None
        assert result.avg_network_latency_us is None
        assert result.avg_hops is None

    def test_latency_conversion_to_microseconds(self):
        result = make_result()
        result.delivered_packets = 4
        result.total_latency_cycles = 800
        assert result.avg_latency_us == pytest.approx(800 / 4 * 0.05)

    def test_network_latency_excludes_queueing(self):
        result = make_result()
        result.delivered_packets = 2
        result.total_latency_cycles = 1000
        result.total_net_latency_cycles = 400
        assert result.avg_network_latency_us < result.avg_latency_us


class TestThroughput:
    def test_aggregate_throughput(self):
        result = make_result()
        result.delivered_flits = 50_000
        assert result.measure_time_us == pytest.approx(500.0)
        assert result.throughput_flits_per_us == pytest.approx(100.0)
        assert result.throughput_per_node == pytest.approx(100.0 / 256)

    def test_offered_aggregate(self):
        result = make_result(offered_load=2.0, active_sources=240)
        assert result.offered_flits_per_us == pytest.approx(480.0)


class TestSustainability:
    def test_flat_backlog_is_sustainable(self):
        result = make_result()
        result.backlog_samples = [10] * 40
        assert result.backlog_growth == 0
        assert result.sustainable

    def test_growing_backlog_is_not(self):
        result = make_result()
        result.backlog_samples = list(range(0, 4000, 100))
        assert result.backlog_growth > 0.2 * 256
        assert not result.sustainable

    def test_small_growth_tolerated(self):
        result = make_result()
        result.backlog_samples = [0] * 20 + [5] * 20
        assert result.sustainable

    def test_deadlock_is_never_sustainable(self):
        result = make_result()
        result.backlog_samples = [0] * 40
        result.deadlock = True
        assert not result.sustainable

    def test_few_samples_default_to_zero_growth(self):
        result = make_result()
        result.backlog_samples = [3]
        assert result.backlog_growth == 0.0


class TestSummary:
    def test_summary_marks_unsustainable(self):
        result = make_result()
        result.backlog_samples = list(range(0, 8000, 100))
        assert "unsustainable" in result.summary()

    def test_summary_marks_deadlock(self):
        result = make_result()
        result.deadlock = True
        result.deadlock_cycle = 123
        assert "DEADLOCK" in result.summary()
        assert "123" in result.summary()

    def test_summary_without_latency(self):
        assert "n/a" in make_result().summary()
