"""Unit tests for SimulationResult metrics and the sustainability rule."""

import pytest

from repro.simulation import SimulationResult


def make_result(**overrides):
    defaults = dict(
        algorithm="xy",
        pattern="uniform",
        offered_load=1.0,
        num_nodes=256,
        active_sources=256,
        measure_cycles=10_000,
        cycle_time_us=0.05,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestLatency:
    def test_no_deliveries_means_no_latency(self):
        result = make_result()
        assert result.avg_latency_us is None
        assert result.avg_network_latency_us is None
        assert result.avg_hops is None

    def test_latency_conversion_to_microseconds(self):
        result = make_result()
        result.delivered_packets = 4
        result.total_latency_cycles = 800
        assert result.avg_latency_us == pytest.approx(800 / 4 * 0.05)

    def test_network_latency_excludes_queueing(self):
        result = make_result()
        result.delivered_packets = 2
        result.total_latency_cycles = 1000
        result.total_net_latency_cycles = 400
        assert result.avg_network_latency_us < result.avg_latency_us


class TestThroughput:
    def test_aggregate_throughput(self):
        result = make_result()
        result.delivered_flits = 50_000
        assert result.measure_time_us == pytest.approx(500.0)
        assert result.throughput_flits_per_us == pytest.approx(100.0)
        assert result.throughput_per_node == pytest.approx(100.0 / 256)

    def test_offered_aggregate(self):
        result = make_result(offered_load=2.0, active_sources=240)
        assert result.offered_flits_per_us == pytest.approx(480.0)


class TestSustainability:
    def test_flat_backlog_is_sustainable(self):
        result = make_result()
        result.backlog_samples = [10] * 40
        assert result.backlog_growth == 0
        assert result.sustainable

    def test_growing_backlog_is_not(self):
        result = make_result()
        result.backlog_samples = list(range(0, 4000, 100))
        assert result.backlog_growth > 0.2 * 256
        assert not result.sustainable

    def test_small_growth_tolerated(self):
        result = make_result()
        result.backlog_samples = [0] * 20 + [5] * 20
        assert result.sustainable

    def test_deadlock_is_never_sustainable(self):
        result = make_result()
        result.backlog_samples = [0] * 40
        result.deadlock = True
        assert not result.sustainable

    def test_few_samples_default_to_zero_growth(self):
        result = make_result()
        result.backlog_samples = [3]
        assert result.backlog_growth == 0.0


class TestSummary:
    def test_summary_marks_unsustainable(self):
        result = make_result()
        result.backlog_samples = list(range(0, 8000, 100))
        assert "unsustainable" in result.summary()

    def test_summary_marks_deadlock(self):
        result = make_result()
        result.deadlock = True
        result.deadlock_cycle = 123
        assert "DEADLOCK" in result.summary()
        assert "123" in result.summary()

    def test_summary_without_latency(self):
        assert "n/a" in make_result().summary()


class TestDegradationMetrics:
    def test_delivery_ratio_none_without_traffic(self):
        assert make_result().delivery_ratio is None

    def test_delivery_ratio_and_degraded_flag(self):
        result = make_result(
            generated_packets=10, delivered_packets=8, dropped_packets=2
        )
        assert result.delivery_ratio == 0.8
        assert result.degraded

    def test_healthy_run_is_not_degraded(self):
        result = make_result(generated_packets=10, delivered_packets=10)
        assert not result.degraded
        assert "degraded" not in result.summary()

    def test_summary_shows_degradation(self):
        result = make_result(
            generated_packets=10,
            delivered_packets=7,
            dropped_packets=3,
            killed_packets=2,
            retried_packets=1,
        )
        text = result.summary()
        assert "degraded" in text
        assert "ratio=0.700" in text
        assert "lost=3" in text
        assert "killed=2" in text
        assert "retries=1" in text


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        result = make_result(
            generated_packets=9,
            delivered_packets=7,
            delivered_flits=70,
            dropped_packets=2,
            killed_packets=1,
            retried_packets=3,
            drops_by_cause={"timeout-stall": 2, "link-failure": 1},
            max_stall_age_cycles=812,
            latency_by_length={10: [50, 60], 6: [30]},
            backlog_samples=[0, 1, 2],
        )
        again = SimulationResult.from_dict(result.to_dict())
        assert again == result

    def test_dict_keys_are_stably_ordered(self):
        import json

        result = make_result(
            drops_by_cause={"z-cause": 1, "a-cause": 2},
            latency_by_length={12: [5], 4: [7]},
        )
        data = result.to_dict()
        assert list(data["drops_by_cause"]) == ["a-cause", "z-cause"]
        assert list(data["latency_by_length"]) == ["4", "12"]
        # The whole payload is JSON-serializable deterministically.
        assert json.dumps(data) == json.dumps(
            make_result(
                drops_by_cause={"a-cause": 2, "z-cause": 1},
                latency_by_length={4: [7], 12: [5]},
            ).to_dict()
        )

    def test_from_dict_restores_int_length_keys(self):
        result = make_result(latency_by_length={8: [40]})
        again = SimulationResult.from_dict(result.to_dict())
        assert again.latency_by_length == {8: [40]}
