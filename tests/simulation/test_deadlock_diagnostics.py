"""Unit tests for the wait-for-graph deadlock diagnostics."""

from repro.core import TurnModel
from repro.routing import TurnRestrictedMinimal, XY
from repro.simulation import (
    SimulationConfig,
    WormholeSimulator,
    build_wait_for_graph,
    detect_deadlock,
)
from repro.simulation.packet import PacketState
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


def quiet_sim(mesh, algorithm=None):
    algorithm = algorithm or XY(mesh)
    config = SimulationConfig(
        offered_load=0.0, warmup_cycles=0, measure_cycles=1_000, seed=1
    )
    return WormholeSimulator(algorithm, UniformPattern(mesh), config)


class TestWaitForGraph:
    def test_empty_simulator_has_no_waits(self):
        sim = quiet_sim(Mesh2D(4, 4))
        report = detect_deadlock(sim)
        assert not report.deadlocked
        assert report.waiting_packets == 0
        assert "no circular wait" in report.describe()

    def test_single_blocked_packet_waits_on_holder(self):
        mesh = Mesh2D(6, 6)
        sim = quiet_sim(mesh)
        blocker = sim.inject_packet(
            mesh.node_xy(0, 0), mesh.node_xy(5, 0), 300, created=0
        )
        for _ in range(4):
            sim.step()
        victim = sim.inject_packet(
            mesh.node_xy(2, 1), mesh.node_xy(5, 1), 10, created=sim.cycle
        )
        # xy keeps the victim on row 1, so it never conflicts; use a
        # same-row victim instead.
        victim2 = sim.inject_packet(
            mesh.node_xy(1, 0), mesh.node_xy(4, 0), 10, created=sim.cycle
        )
        for _ in range(6):
            sim.step()
        graph = build_wait_for_graph(sim)
        if victim2.state is PacketState.ROUTING:
            assert graph.has_edge(victim2, blocker)
        # No cycle: the blocker is not waiting on the victim.
        assert not detect_deadlock(sim).deadlocked

    def test_ejection_wait_edges(self):
        mesh = Mesh2D(6, 6)
        sim = quiet_sim(mesh)
        dst = mesh.node_xy(3, 3)
        first = sim.inject_packet(mesh.node_xy(0, 3), dst, 200, created=0)
        second = sim.inject_packet(mesh.node_xy(3, 0), dst, 10, created=0)
        for _ in range(12):
            sim.step()
        graph = build_wait_for_graph(sim)
        if second.state is PacketState.EJECT_WAIT:
            assert graph.has_edge(second, first)

    def test_real_deadlock_produces_cycles(self):
        mesh = Mesh2D(6, 6)
        anything = TurnRestrictedMinimal(
            mesh, TurnModel.from_prohibited("none", 2, set())
        )
        config = SimulationConfig(
            offered_load=8.0,
            warmup_cycles=0,
            measure_cycles=30_000,
            deadlock_threshold=1_200,
            seed=3,
        )
        sim = WormholeSimulator(anything, UniformPattern(mesh), config)
        result = sim.run()
        assert result.deadlock
        report = detect_deadlock(sim)
        assert report.deadlocked
        # Every reported cycle is a genuine closed chain of waits.
        graph = build_wait_for_graph(sim)
        for cycle in report.cycles:
            for packet in cycle:
                assert packet.in_network
        assert report.blocked_packets >= len(report.cycles[0])
        assert "circular wait" in report.describe()
