"""Trace file reading (schema checks) and stream summarization."""

import json

import pytest

from repro.observability import (
    JsonlTraceSink,
    TraceEvent,
    read_trace,
    summarize_trace,
    trace_header,
)


def _write_trace(path, events, header=None):
    with JsonlTraceSink(path, header=header) as sink:
        for event in events:
            sink.emit(event)


EVENTS = [
    TraceEvent(kind="injected", cycle=5, pid=0, node=1),
    TraceEvent(kind="blocked", cycle=6, pid=0, node=1),
    TraceEvent(kind="blocked", cycle=8, pid=1, node=4),
    TraceEvent(kind="injected", cycle=7, pid=1, node=4),
    TraceEvent(kind="delivered", cycle=25, pid=0, node=9),
    TraceEvent(kind="dropped", cycle=30, pid=1, node=4, cause="timeout-stall"),
]


class TestReadTrace:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, EVENTS, header=trace_header(topology="mesh:4x4"))
        header, events = read_trace(path)
        assert header["topology"] == "mesh:4x4"
        assert list(events) == EVENTS

    def test_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(EVENTS[0].to_json_line() + "\n")
        with pytest.raises(ValueError, match="not a trace file"):
            read_trace(path)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = dict(trace_header(), schema=999)
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="schema 999"):
            read_trace(path)

    def test_rejects_non_json_first_line(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not a trace file"):
            read_trace(path)


class TestSummarizeTrace:
    def test_counts_and_cycle_span(self):
        summary = summarize_trace(EVENTS)
        assert summary.total_events == len(EVENTS)
        assert summary.counts_by_kind == {
            "injected": 2,
            "blocked": 2,
            "delivered": 1,
            "dropped": 1,
        }
        assert summary.first_cycle == 5
        assert summary.last_cycle == 30

    def test_transit_pairs_injected_with_delivered(self):
        summary = summarize_trace(EVENTS)
        # pid 0: injected at 5, delivered at 25; pid 1 was dropped.
        assert summary.transit_histogram == {20: 1}
        assert summary.transit_percentiles["p50"] == 20

    def test_drops_and_blocked_attribution(self):
        summary = summarize_trace(EVENTS)
        assert summary.drops_by_cause == {"timeout-stall": 1}
        assert summary.blocked_by_node == {1: 1, 4: 1}
        assert summary.top_blocked_nodes(top=1) == [(1, 1)]

    def test_to_dict_and_render(self):
        summary = summarize_trace(EVENTS)
        data = summary.to_dict()
        assert data["counts_by_kind"]["delivered"] == 1
        assert data["transit_percentiles"]["p100"] == 20
        text = summary.render()
        assert "6 events" in text
        assert "timeout-stall" in text
        assert "stall-prone" in text

    def test_empty_stream(self):
        summary = summarize_trace([])
        assert summary.total_events == 0
        assert summary.first_cycle is None
        assert summary.transit_percentiles == {
            "p50": None,
            "p90": None,
            "p99": None,
            "p100": None,
        }
