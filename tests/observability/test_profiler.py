"""PhaseProfiler arithmetic and report rendering."""

from repro.observability import PhaseProfiler
from repro.observability.profiler import ENGINE_PHASES


class TestPhaseProfiler:
    def test_add_accumulates_seconds_and_calls(self):
        prof = PhaseProfiler()
        prof.add("advance", 0.25)
        prof.add("advance", 0.75)
        assert prof.seconds["advance"] == 1.0
        assert prof.calls["advance"] == 2

    def test_route_excluded_from_total(self):
        # route is nested inside allocate: counting both would double
        # the arbitration phase.
        prof = PhaseProfiler()
        prof.add("allocate", 2.0)
        prof.add("route", 0.5)
        prof.add("advance", 1.0)
        assert prof.total_seconds == 3.0

    def test_exclusive_seconds_subtracts_nested_route(self):
        prof = PhaseProfiler()
        prof.add("allocate", 2.0)
        prof.add("route", 0.5)
        assert prof.exclusive_seconds("allocate") == 1.5
        assert prof.exclusive_seconds("route") == 0.5
        assert prof.exclusive_seconds("missing") == 0.0

    def test_exclusive_never_negative(self):
        prof = PhaseProfiler()
        prof.add("allocate", 0.1)
        prof.add("route", 0.5)  # clock skew should clamp, not go negative
        assert prof.exclusive_seconds("allocate") == 0.0

    def test_to_dict_is_json_ready(self):
        prof = PhaseProfiler()
        prof.add("generate", 0.5)
        prof.add("generate", 0.5)
        assert prof.to_dict() == {"generate": {"seconds": 1.0, "calls": 2}}

    def test_report_lists_phases_and_total(self):
        prof = PhaseProfiler()
        for phase in ENGINE_PHASES:
            prof.add(phase, 0.01)
        text = prof.report()
        for phase in ENGINE_PHASES:
            assert phase in text
        assert "within allocate" in text
        assert text.splitlines()[-1].startswith("total")

    def test_report_handles_empty_profiler(self):
        assert "total" in PhaseProfiler().report()
