"""Streaming collectors and exact histogram percentiles."""

from types import SimpleNamespace

import pytest

from repro.observability import exact_percentile, latency_percentiles
from repro.observability.collectors import MetricsCollectors


def _waiting(*nodes):
    return [SimpleNamespace(head_node=node) for node in nodes]


class TestMetricsCollectors:
    def test_nothing_enabled_collects_nothing(self):
        bundle = MetricsCollectors(num_channels=4, num_nodes=4)
        assert not bundle.any_enabled
        bundle.on_cycle_end(_waiting(0, 1))
        bundle.on_delivery(12)
        result = SimpleNamespace(
            channel_util_series=None,
            channel_series_period=None,
            router_blocked_cycles=None,
            latency_histogram=None,
        )
        bundle.finish(result)
        assert result.channel_util_series is None
        assert result.router_blocked_cycles is None
        assert result.latency_histogram is None

    def test_series_buckets_roll_at_period(self):
        bundle = MetricsCollectors(num_channels=2, num_nodes=1, channel_series_period=3)
        for cycle in range(7):
            bundle.channel_counts[0] += 1  # one flit on channel 0 per cycle
            bundle.on_cycle_end([])
        result = SimpleNamespace(channel_util_series=None, channel_series_period=None)
        bundle.finish(result)
        # 7 cycles at period 3: two full buckets plus a partial flush.
        assert result.channel_util_series == [[3, 0], [3, 0], [1, 0]]
        assert result.channel_series_period == 3

    def test_partial_bucket_not_flushed_twice(self):
        bundle = MetricsCollectors(num_channels=1, num_nodes=1, channel_series_period=5)
        bundle.channel_counts[0] += 1
        bundle.on_cycle_end([])
        result = SimpleNamespace(channel_util_series=None, channel_series_period=None)
        bundle.finish(result)
        bundle.finish(result)
        assert result.channel_util_series == [[1]]

    def test_router_blocked_counts_waiting_heads_per_cycle(self):
        bundle = MetricsCollectors(num_channels=1, num_nodes=4, collect_router_blocked=True)
        bundle.on_cycle_end(_waiting(2, 2, 3))
        bundle.on_cycle_end(_waiting(2))
        result = SimpleNamespace(router_blocked_cycles=None)
        bundle.finish(result)
        assert result.router_blocked_cycles == [0, 0, 3, 1]

    def test_latency_histogram_is_exact(self):
        bundle = MetricsCollectors(
            num_channels=1, num_nodes=1, collect_latency_histogram=True
        )
        for latency in (10, 10, 12, 30):
            bundle.on_delivery(latency)
        result = SimpleNamespace(latency_histogram=None)
        bundle.finish(result)
        assert result.latency_histogram == {10: 2, 12: 1, 30: 1}


class TestExactPercentile:
    def test_known_values(self):
        histogram = {10: 2, 12: 1, 30: 1}
        assert exact_percentile(histogram, 50) == 10
        assert exact_percentile(histogram, 75) == 12
        assert exact_percentile(histogram, 100) == 30

    def test_p100_is_the_true_maximum(self):
        histogram = {1: 1000, 999: 1}
        assert exact_percentile(histogram, 100) == 999

    def test_empty_histogram_is_none(self):
        assert exact_percentile({}, 50) is None

    def test_out_of_range_percentile_rejected(self):
        for bad in (0, -1, 101):
            with pytest.raises(ValueError, match="percentile"):
                exact_percentile({1: 1}, bad)

    def test_single_observation(self):
        assert exact_percentile({42: 1}, 1) == 42
        assert exact_percentile({42: 1}, 100) == 42

    def test_matches_sorted_list_nearest_rank(self):
        import math

        observations = [3, 7, 7, 9, 14, 14, 14, 21, 30, 95]
        histogram = {}
        for value in observations:
            histogram[value] = histogram.get(value, 0) + 1
        for p in (1, 10, 25, 50, 75, 90, 99, 100):
            rank = math.ceil(p / 100 * len(observations))
            assert exact_percentile(histogram, p) == sorted(observations)[rank - 1]

    def test_named_percentiles(self):
        out = latency_percentiles({10: 2, 12: 1, 30: 1})
        assert out == {"p50": 10, "p90": 30, "p99": 30, "p100": 30}
        assert latency_percentiles({1: 1}, percentiles=(99.9,)) == {"p99.9": 1}
