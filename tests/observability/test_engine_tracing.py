"""Engine-side observability: bit-identity with tracing on or off,
event-stream invariants, collector correctness, and profiling."""

import math

import pytest

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.observability import JsonlTraceSink, ListSink, PhaseProfiler, read_trace
from repro.observability.sinks import FilteringSink
from repro.routing import make_algorithm
from repro.simulation import SimulationConfig, WormholeSimulator

# The PR 2 golden fingerprints (mirrors tests/faults/test_fault_injection.py):
# operating points captured from the engine before the fault subsystem —
# and now the observability subsystem — existed.  Tracing and collection
# must never move a single number.
GOLDEN = [
    (
        "mesh:8x8", "west-first", "uniform",
        dict(offered_load=1.2, seed=3, warmup_cycles=500,
             measure_cycles=2_000),
        (71, 65, 7870, 10641, 9666, 343, 0, 218, 6),
    ),
    (
        "mesh:8x8", "xy", "transpose",
        dict(offered_load=0.8, seed=11, warmup_cycles=400,
             measure_cycles=1_500),
        (37, 36, 3400, 4860, 4242, 212, 0, 213, 1),
    ),
    (
        "cube:6", "p-cube", "uniform",
        dict(offered_load=2.0, seed=5, warmup_cycles=300,
             measure_cycles=1_200),
        (57, 51, 6780, 8251, 7511, 160, 0, 222, 6),
    ),
    (
        "torus:6x2", "negative-first-torus", "uniform",
        dict(offered_load=0.6, seed=9, warmup_cycles=300,
             measure_cycles=1_200, virtual_channels=2),
        (14, 14, 520, 564, 564, 58, 8, 1, 0),
    ),
]

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)


def _simulate(topo_spec, algorithm, pattern, config, **engine_kwargs):
    topology = parse_topology_spec(topo_spec)
    sim = WormholeSimulator(
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
        **engine_kwargs,
    )
    return sim, sim.run()


def _fingerprint(result):
    return tuple(getattr(result, name) for name in FINGERPRINT_FIELDS)


class TestBitIdentity:
    def test_disabled_observability_reproduces_golden(self):
        """The default path — no sink, no collectors — must still land
        exactly on the PR 2 fingerprint."""
        topo_spec, algorithm, pattern, overrides, expected = GOLDEN[0]
        sim, result = _simulate(
            topo_spec, algorithm, pattern, SimulationConfig(**overrides)
        )
        assert sim._sink is None and sim._collectors is None
        assert _fingerprint(result) == expected
        assert result.channel_util_series is None
        assert result.router_blocked_cycles is None
        assert result.latency_histogram is None

    @pytest.mark.parametrize(
        "topo_spec,algorithm,pattern,overrides,expected", GOLDEN
    )
    def test_full_observability_reproduces_golden(
        self, topo_spec, algorithm, pattern, overrides, expected
    ):
        """Sink + every collector + profiler attached: the fingerprint
        must not move by one flit — observability reads the simulation,
        never steers it."""
        config = SimulationConfig(**overrides).with_observability()
        sink = ListSink()
        _, result = _simulate(
            topo_spec,
            algorithm,
            pattern,
            config,
            sink=sink,
            profiler=PhaseProfiler(),
        )
        assert _fingerprint(result) == expected
        assert sink.events  # the run actually traced

    def test_event_stream_is_deterministic(self):
        def run():
            sink = ListSink()
            _simulate(
                "mesh:6x6",
                "west-first",
                "uniform",
                SimulationConfig(
                    offered_load=1.0, seed=13, warmup_cycles=200,
                    measure_cycles=800,
                ),
                sink=sink,
            )
            return sink.events

        assert run() == run()


class TestEventInvariants:
    @pytest.fixture(scope="class")
    def traced(self):
        topo_spec, algorithm, pattern, overrides, _ = GOLDEN[0]
        config = SimulationConfig(**overrides).with_observability()
        sink = ListSink()
        sim, result = _simulate(
            topo_spec, algorithm, pattern, config, sink=sink
        )
        return sim, result, sink

    def test_cycles_are_monotonic(self, traced):
        _, _, sink = traced
        cycles = [event.cycle for event in sink.events]
        assert cycles == sorted(cycles)

    def test_every_delivery_was_injected_first(self, traced):
        _, _, sink = traced
        injected = {event.pid: event.cycle for event in sink.by_kind("injected")}
        for event in sink.by_kind("delivered"):
            assert event.pid in injected
            assert injected[event.pid] <= event.cycle

    def test_grants_match_header_advances(self, traced):
        # Fault-free: every granted channel is eventually crossed by the
        # header, and every crossing was granted.
        _, _, sink = traced
        grants = len(sink.by_kind("channel_allocated"))
        advances = len(sink.by_kind("header_advance"))
        assert grants == advances > 0

    def test_no_fault_events_in_a_fault_free_run(self, traced):
        _, _, sink = traced
        for kind in ("dropped", "killed", "fault_applied"):
            assert sink.by_kind(kind) == []

    def test_blocked_emitted_once_per_stall_episode(self, traced):
        # A packet may block many times, but never twice without an
        # intervening grant (or ejection) for that packet.
        _, _, sink = traced
        blocked_since_grant = set()
        for event in sink.events:
            if event.kind == "blocked":
                assert event.pid not in blocked_since_grant
                blocked_since_grant.add(event.pid)
            elif event.kind in ("channel_allocated", "delivered"):
                blocked_since_grant.discard(event.pid)
        assert sink.by_kind("blocked")  # load 1.2 certainly stalls

    def test_channel_allocated_carries_location(self, traced):
        sim, _, sink = traced
        for event in sink.by_kind("channel_allocated"):
            channel = sim.channels[event.channel]
            assert channel.src == event.node
            assert repr(channel.direction) == event.direction


class TestCollectorsInEngine:
    @pytest.fixture(scope="class")
    def collected(self):
        topo_spec, algorithm, pattern, overrides, _ = GOLDEN[0]
        config = SimulationConfig(
            track_channel_load=True, **overrides
        ).with_observability()
        sim, result = _simulate(topo_spec, algorithm, pattern, config)
        return sim, result

    def test_histogram_mass_equals_measured_deliveries(self, collected):
        _, result = collected
        assert sum(result.latency_histogram.values()) == result.delivered_packets

    def test_percentiles_are_exact_order_statistics(self, collected):
        _, result = collected
        p50 = result.latency_percentile(50)
        p100 = result.latency_percentile(100)
        mean = result.total_latency_cycles / result.delivered_packets
        assert min(result.latency_histogram) <= p50 <= p100
        assert p100 == max(result.latency_histogram)
        assert min(result.latency_histogram) <= mean <= p100

    def test_series_covers_exactly_the_measurement_window(self, collected):
        _, result = collected
        expected_buckets = math.ceil(
            result.measure_cycles / result.channel_series_period
        )
        assert len(result.channel_util_series) == expected_buckets

    def test_series_totals_bounded_by_channel_load(self, collected):
        # channel_flits counts warmup-end onward *including* the drain
        # phase; the series covers only the measurement window, so it
        # can never exceed channel_flits on any channel.
        sim, result = collected
        totals = [0] * len(sim.channels)
        for bucket in result.channel_util_series:
            for i, flits in enumerate(bucket):
                totals[i] += flits
        assert len(totals) == len(result.channel_flits)
        assert all(s <= f for s, f in zip(totals, result.channel_flits))
        assert sum(totals) > 0

    def test_utilization_fractions_are_sane(self, collected):
        sim, result = collected
        util = result.channel_utilization()
        assert len(util) == len(sim.channels)
        assert all(0.0 <= u <= 1.0 for u in util)

    def test_router_blocked_counts_hot_routers(self, collected):
        sim, result = collected
        blocked = result.router_blocked_cycles
        assert len(blocked) == sim.topology.num_nodes
        assert all(b >= 0 for b in blocked)
        assert sum(blocked) > 0  # load 1.2 on an 8x8 mesh surely blocks

    def test_collectors_survive_result_round_trip(self, collected):
        from repro.simulation.metrics import SimulationResult

        _, result = collected
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.latency_histogram == result.latency_histogram
        assert rebuilt.channel_util_series == result.channel_util_series
        assert rebuilt.router_blocked_cycles == result.router_blocked_cycles
        assert rebuilt.channel_series_period == result.channel_series_period
        assert rebuilt == result


class TestProfiledRun:
    def test_profile_covers_the_pipeline_and_preserves_results(self):
        topo_spec, algorithm, pattern, overrides, expected = GOLDEN[0]
        profiler = PhaseProfiler()
        _, result = _simulate(
            topo_spec,
            algorithm,
            pattern,
            SimulationConfig(**overrides),
            profiler=profiler,
        )
        assert _fingerprint(result) == expected
        for phase in ("generate", "inject", "route", "allocate", "advance"):
            assert profiler.seconds.get(phase, 0.0) > 0.0
        # Phases run once per cycle; route is per arbitration call.
        assert profiler.calls["allocate"] == profiler.calls["advance"]
        assert profiler.total_seconds > 0.0
        assert "allocate" in profiler.report()

    def test_profile_times_fault_and_retry_phases(self):
        # Regression: the retry-requeue loop used to run untimed in
        # profiled mode, silently leaking its cost out of the report.
        from repro.analysis.runner import parse_topology_spec
        from repro.faults.plan import FaultPlan

        topology = parse_topology_spec("mesh:6x6")
        config = SimulationConfig(
            offered_load=1.2, warmup_cycles=100, measure_cycles=600,
            seed=7, drain_cycles=200,
            fault_plan=FaultPlan.random_links(topology, 6, seed=1, start=150),
            packet_timeout=100, max_retries=2,
        )
        profiler = PhaseProfiler()
        _, profiled = _simulate(
            "mesh:6x6", "west-first", "uniform", config, profiler=profiler
        )
        _, plain = _simulate("mesh:6x6", "west-first", "uniform", config)
        assert _fingerprint(profiled) == _fingerprint(plain)
        assert profiled.retried_packets > 0  # the point exercised retries
        for phase in ("faults", "retries", "watchdog"):
            assert profiler.seconds.get(phase, 0.0) > 0.0
        # One timed retry batch per cycle with retries due.
        assert profiler.calls["retries"] >= 1


class TestSinkIntegration:
    def test_jsonl_file_round_trips_engine_events(self, tmp_path):
        config = SimulationConfig(
            offered_load=0.8, seed=2, warmup_cycles=100, measure_cycles=400
        )
        path = tmp_path / "engine.jsonl"
        memory = ListSink()
        _simulate("mesh:5x5", "xy", "uniform", config, sink=memory)
        with JsonlTraceSink(path) as file_sink:
            _simulate("mesh:5x5", "xy", "uniform", config, sink=file_sink)
        _, events = read_trace(path)
        assert list(events) == memory.events

    def test_filtering_sink_in_the_engine(self):
        inner = ListSink()
        sink = FilteringSink(inner, kinds=["delivered"])
        _, result = _simulate(
            "mesh:5x5",
            "xy",
            "uniform",
            SimulationConfig(
                offered_load=0.8, seed=2, warmup_cycles=100,
                measure_cycles=400,
            ),
            sink=sink,
        )
        assert inner.events
        assert {event.kind for event in inner.events} == {"delivered"}
        assert sink.dropped > 0
        assert len(inner.events) >= result.delivered_packets
