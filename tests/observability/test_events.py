"""Trace event schema: validation and the exact JSONL round-trip."""

import json

import pytest

from repro.observability import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    TraceEvent,
    parse_jsonl,
    parse_jsonl_line,
)


class TestTraceEvent:
    def test_schema_version_is_one(self):
        assert TRACE_SCHEMA == 1

    def test_vocabulary_is_fixed(self):
        assert EVENT_KINDS == (
            "injected",
            "header_advance",
            "channel_allocated",
            "blocked",
            "delivered",
            "dropped",
            "killed",
            "fault_applied",
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            TraceEvent(kind="teleported", cycle=0)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TraceEvent(kind="injected", cycle=-1)

    def test_to_dict_omits_none_fields(self):
        event = TraceEvent(kind="injected", cycle=7, pid=3, node=12)
        assert event.to_dict() == {
            "kind": "injected",
            "cycle": 7,
            "pid": 3,
            "node": 12,
        }

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown trace event fields"):
            TraceEvent.from_dict({"kind": "injected", "cycle": 0, "speed": 9})

    def test_json_line_is_deterministic(self):
        event = TraceEvent(
            kind="channel_allocated",
            cycle=42,
            pid=5,
            node=9,
            channel=17,
            direction="+d0",
        )
        line = event.to_json_line()
        assert line == event.to_json_line()
        assert json.loads(line) == event.to_dict()
        assert "\n" not in line and " " not in line


class TestRoundTrip:
    EXAMPLES = [
        TraceEvent(kind="injected", cycle=0, pid=0, node=0),
        TraceEvent(kind="header_advance", cycle=3, pid=1, node=8, channel=2),
        TraceEvent(
            kind="channel_allocated",
            cycle=10,
            pid=2,
            node=5,
            channel=11,
            direction="-d1",
        ),
        TraceEvent(kind="blocked", cycle=11, pid=2, node=5),
        TraceEvent(kind="delivered", cycle=99, pid=2, node=63),
        TraceEvent(kind="dropped", cycle=4, pid=3, node=1, cause="timeout-stall"),
        TraceEvent(kind="killed", cycle=4, pid=3, node=1, cause="link-failure"),
        TraceEvent(
            kind="fault_applied", cycle=50, node=7, cause="fail:channel"
        ),
    ]

    @pytest.mark.parametrize("event", EXAMPLES, ids=lambda e: e.kind)
    def test_single_event_round_trips_exactly(self, event):
        assert parse_jsonl_line(event.to_json_line()) == event
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_stream_round_trips_exactly(self):
        lines = [event.to_json_line() for event in self.EXAMPLES]
        assert list(parse_jsonl(lines)) == self.EXAMPLES

    def test_blank_lines_skipped(self):
        lines = ["", self.EXAMPLES[0].to_json_line(), "   ", ""]
        assert list(parse_jsonl(lines)) == [self.EXAMPLES[0]]

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="not a JSON object"):
            parse_jsonl_line("[1,2,3]")
