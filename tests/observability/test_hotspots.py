"""Acceptance: the collectors reproduce the paper's load-concentration
story on a 16x16 mesh near saturation.

Under matrix transpose, west-first routing must finish every westward
hop before it may turn — so below-diagonal traffic (source (x, y) with
x > y, destination (y, x)) first runs west along its source row and then
north, and the *adaptive* remainder of each route still funnels toward
the mesh diagonal.  The per-channel utilization collectors should see
that as near-saturated WEST- and NORTH-going channels hugging the
diagonal, far above the mesh-wide mean, while blocked cycles pile up in
the below-diagonal routers whose worms queue behind the funnel.
(Measured on this engine: the hottest west/north channels sit within
two hops of the diagonal at ~99% utilization versus a ~18% mean, and
the most stall-prone routers all lie in the bottom rows with x > y.)
"""

import pytest

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.routing import make_algorithm
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import NORTH, WEST


@pytest.fixture(scope="module")
def traced_16x16():
    topology = parse_topology_spec("mesh:16x16")
    config = SimulationConfig(
        offered_load=1.5,  # well past west-first's transpose saturation
        seed=7,
        warmup_cycles=500,
        measure_cycles=2_000,
    ).with_observability()
    sim = WormholeSimulator(
        make_algorithm("west-first", topology),
        make_pattern("transpose", topology),
        config,
    )
    return topology, sim, sim.run()


def _by_direction(topology, sim, utilization, direction):
    return {
        topology.coords(channel.src): util
        for channel, util in zip(sim.channels, utilization)
        if channel.direction == direction
    }


class TestWestFirstTransposeHotspots:
    def test_hot_channels_concentrate_near_the_diagonal(self, traced_16x16):
        topology, sim, result = traced_16x16
        utilization = result.channel_utilization()
        for direction in (WEST, NORTH):
            util = _by_direction(topology, sim, utilization, direction)
            hottest = sorted(util, key=util.get, reverse=True)[:5]
            mean = sum(util.values()) / len(util)
            # Saturated hotspots against a lightly loaded background...
            assert util[hottest[0]] > 0.9
            assert mean < 0.3
            assert util[hottest[0]] > 3 * mean
            # ...and every one of the five hottest channels leaves a
            # router within two hops of the mesh diagonal.
            for x, y in hottest:
                assert abs(x - y) <= 2, (
                    f"hot {direction} channel at {(x, y)} is off-diagonal"
                )

    def test_blocked_cycles_pile_up_below_the_diagonal(self, traced_16x16):
        # Below-diagonal sources (x > y) *must* finish their westward
        # hops first, so their worms queue in the low rows behind the
        # saturated diagonal channels: every top stall-prone router
        # should sit strictly below the diagonal.
        topology, _, result = traced_16x16
        blocked = result.router_blocked_cycles
        ranked = sorted(range(len(blocked)), key=blocked.__getitem__, reverse=True)
        top = [topology.coords(node) for node in ranked[:5]]
        assert all(x > y for x, y in top), f"stalls not below-diagonal: {top}"
        assert blocked[ranked[0]] > result.measure_cycles // 2

    def test_saturation_shows_in_the_latency_tail(self, traced_16x16):
        _, _, result = traced_16x16
        p50 = result.latency_percentile(50)
        p100 = result.latency_percentile(100)
        assert p50 is not None
        # Near saturation the tail stretches far beyond the median.
        assert p100 > 2 * p50
