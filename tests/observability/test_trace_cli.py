"""The ``repro trace`` subcommand, ``--version``, and ``--profile``."""

import json

import pytest

from repro.cli import main
from repro.observability import read_trace, summarize_trace


def _trace_argv(tmp_path, *extra):
    return [
        "trace", "west-first",
        "--topology", "mesh:4x4",
        "--pattern", "uniform",
        "--load", "0.8",
        "--warmup", "100",
        "--cycles", "800",
        "--seed", "1",  # seed 0 generates nothing in so short a window
        "--out", str(tmp_path / "trace.jsonl"),
        *extra,
    ]


class TestTraceCommand:
    def test_writes_a_valid_trace_and_summary(self, tmp_path, capsys):
        assert main(_trace_argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "events" in out
        assert "delivered" in out

        header, events = read_trace(tmp_path / "trace.jsonl")
        assert header["schema"] == 1
        assert header["topology"] == "mesh:4x4"
        assert header["algorithm"] == "west-first"
        assert "config_hash" in header
        summary = summarize_trace(events)
        assert summary.counts_by_kind["injected"] > 0
        assert summary.counts_by_kind["delivered"] > 0

    def test_json_output_carries_run_and_trace(self, tmp_path, capsys):
        assert main(_trace_argv(tmp_path, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["point"]["algorithm"] == "west-first"
        assert payload["result"]["delivered_packets"] > 0
        assert payload["result"]["latency_histogram"]
        assert payload["trace"]["counts_by_kind"]["injected"] > 0
        assert payload["trace_file"].endswith("trace.jsonl")

    def test_event_filter_keeps_only_named_kinds(self, tmp_path):
        argv = _trace_argv(tmp_path, "--events", "injected,delivered")
        assert main(argv) == 0
        _, events = read_trace(tmp_path / "trace.jsonl")
        kinds = {event.kind for event in events}
        assert kinds == {"injected", "delivered"}

    def test_unknown_event_kind_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(_trace_argv(tmp_path, "--events", "teleported"))

    def test_heatmap_file_renders_all_directions(self, tmp_path, capsys):
        heatmap = tmp_path / "heat.txt"
        argv = _trace_argv(tmp_path, "--heatmap", str(heatmap))
        assert main(argv) == 0
        text = heatmap.read_text()
        for compass in ("west", "east", "south", "north"):
            assert compass in text

    def test_heatmap_requires_a_2d_mesh(self, tmp_path):
        argv = [
            "trace", "p-cube",
            "--topology", "cube:4",
            "--load", "0.5",
            "--warmup", "100",
            "--cycles", "300",
            "--out", str(tmp_path / "t.jsonl"),
            "--heatmap", "-",
        ]
        with pytest.raises(SystemExit):
            main(argv)

    def test_profile_prints_phase_table(self, tmp_path, capsys):
        assert main(_trace_argv(tmp_path, "--profile")) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "allocate" in out

    def test_profile_in_json_payload(self, tmp_path, capsys):
        assert main(_trace_argv(tmp_path, "--json", "--profile")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["allocate"]["calls"] > 0

    def test_series_period_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(_trace_argv(tmp_path, "--series-period", "0"))


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_simulate_profile_flag(self, capsys):
        code = main(
            [
                "simulate", "xy",
                "--topology", "mesh:4x4",
                "--load", "0.5",
                "--warmup", "100",
                "--cycles", "300",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out and "advance" in out
