"""Trace sinks: memory, JSONL files/streams, and kind filtering."""

import io
import json

from repro.observability import (
    FilteringSink,
    JsonlTraceSink,
    ListSink,
    TraceEvent,
    TraceSink,
    trace_header,
)
from repro.observability.sinks import HEADER_KIND

EVENTS = [
    TraceEvent(kind="injected", cycle=1, pid=0, node=0),
    TraceEvent(kind="blocked", cycle=2, pid=0, node=0),
    TraceEvent(kind="delivered", cycle=9, pid=0, node=3),
]


class TestListSink:
    def test_collects_and_filters_by_kind(self):
        sink = ListSink()
        for event in EVENTS:
            sink.emit(event)
        assert len(sink) == 3
        assert sink.by_kind("blocked") == [EVENTS[1]]
        sink.close()
        assert sink.closed

    def test_satisfies_the_protocol(self):
        assert isinstance(ListSink(), TraceSink)
        assert isinstance(JsonlTraceSink(io.StringIO()), TraceSink)


class TestTraceHeader:
    def test_carries_schema_and_provenance(self):
        header = trace_header(
            topology="mesh:8x8", algorithm="west-first", pattern="uniform"
        )
        assert header["kind"] == HEADER_KIND
        assert header["schema"] == 1
        assert header["topology"] == "mesh:8x8"
        assert "config_hash" not in header  # None entries omitted


class TestJsonlTraceSink:
    def test_writes_header_first_then_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, header=trace_header(topology="mesh:4x4"))
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        header = json.loads(lines[0])
        assert header["kind"] == HEADER_KIND
        assert header["topology"] == "mesh:4x4"
        assert [json.loads(line)["kind"] for line in lines[1:]] == [
            "injected",
            "blocked",
            "delivered",
        ]
        assert sink.emitted == 3

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit(EVENTS[0])
        assert len(path.read_text().splitlines()) == 2

    def test_stream_target_left_open(self):
        stream = io.StringIO()
        sink = JsonlTraceSink(stream)
        sink.emit(EVENTS[0])
        sink.close()
        assert not stream.closed  # caller-owned streams are only flushed
        assert len(stream.getvalue().splitlines()) == 2


class TestFilteringSink:
    def test_forwards_only_named_kinds(self):
        inner = ListSink()
        sink = FilteringSink(inner, kinds=["delivered"])
        for event in EVENTS:
            sink.emit(event)
        sink.close()
        assert [event.kind for event in inner.events] == ["delivered"]
        assert sink.dropped == 2
        assert inner.closed
