"""Property-based tests for topology invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.topology import Hypercube, KAryNCube, Mesh


mesh_dims = st.lists(st.integers(2, 5), min_size=1, max_size=4).map(tuple)


@st.composite
def mesh_and_node(draw):
    dims = draw(mesh_dims)
    topo = Mesh(dims)
    node = draw(st.integers(0, topo.num_nodes - 1))
    return topo, node


@st.composite
def torus_and_node(draw):
    k = draw(st.integers(2, 6))
    n = draw(st.integers(1, 3))
    topo = KAryNCube(k, n)
    node = draw(st.integers(0, topo.num_nodes - 1))
    return topo, node


class TestCoordinateAlgebra:
    @given(mesh_and_node())
    def test_coords_roundtrip(self, case):
        topo, node = case
        assert topo.node_at(topo.coords(node)) == node

    @given(mesh_and_node())
    def test_neighbor_symmetry(self, case):
        """Moving out and back returns to the start."""
        topo, node = case
        for d in topo.directions():
            nbr = topo.neighbor(node, d)
            if nbr is not None:
                assert topo.neighbor(nbr, d.opposite) == node

    @given(torus_and_node())
    def test_torus_neighbor_symmetry(self, case):
        topo, node = case
        for d in topo.directions():
            nbr = topo.neighbor(node, d)
            if nbr is not None:
                assert topo.neighbor(nbr, d.opposite) == node


class TestDistanceMetric:
    @given(mesh_and_node(), st.data())
    def test_triangle_inequality(self, case, data):
        topo, a = case
        b = data.draw(st.integers(0, topo.num_nodes - 1))
        c = data.draw(st.integers(0, topo.num_nodes - 1))
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)

    @given(torus_and_node(), st.data())
    def test_torus_distance_symmetric(self, case, data):
        topo, a = case
        b = data.draw(st.integers(0, topo.num_nodes - 1))
        assert topo.distance(a, b) == topo.distance(b, a)

    @given(mesh_and_node(), st.data())
    def test_productive_moves_reduce_distance(self, case, data):
        topo, src = case
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        here = topo.distance(src, dst)
        for d in topo.productive_directions(src, dst):
            nbr = topo.neighbor(src, d)
            assert nbr is not None
            assert topo.distance(nbr, dst) == here - 1

    @given(torus_and_node(), st.data())
    def test_torus_productive_moves_reduce_distance(self, case, data):
        topo, src = case
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        here = topo.distance(src, dst)
        for d in topo.productive_directions(src, dst):
            nbr = topo.neighbor(src, d)
            assert nbr is not None
            assert topo.distance(nbr, dst) == here - 1


class TestChannels:
    @given(mesh_dims)
    def test_channels_pair_up(self, dims):
        """Every channel has a reverse channel (pairs of unidirectional
        channels, as in the paper's simulator setup)."""
        topo = Mesh(dims)
        by_endpoints = {(c.src, c.dst) for c in topo.channels()}
        assert len(by_endpoints) == topo.num_channels()
        for src, dst in by_endpoints:
            assert (dst, src) in by_endpoints

    @given(st.integers(1, 8))
    def test_hypercube_channel_count(self, n):
        assert Hypercube(n).num_channels() == n * 2 ** n
