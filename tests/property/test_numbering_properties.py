"""Property-based tests for the channel numberings (Theorems 2, 3, 5):
monotone along random legal walks on random mesh shapes."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    dimension_order_numbering,
    negative_first_numbering,
    north_last_numbering,
    west_first_numbering,
)
from repro.routing import (
    NegativeFirst,
    NorthLast,
    WestFirst,
    XY,
    path_channels,
    walk,
)
from repro.topology import Mesh, Mesh2D


@st.composite
def walk_case(draw):
    m = draw(st.integers(2, 10))
    n = draw(st.integers(2, 10))
    topo = Mesh2D(m, n)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    seed = draw(st.integers(0, 2 ** 16))
    return topo, src, dst, seed


CASES = [
    (WestFirst, west_first_numbering, True),
    (NorthLast, north_last_numbering, True),
    (NegativeFirst, negative_first_numbering, False),
    (XY, dimension_order_numbering, True),
]


class TestMonotoneAlongRandomWalks:
    @given(walk_case())
    def test_all_numberings(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        rng = random.Random(seed)
        for alg_cls, builder, decreasing in CASES:
            numbering = builder(topo)
            path = walk(alg_cls(topo), src, dst, rng=rng)
            values = [numbering[c] for c in path_channels(topo, path)]
            pairs = list(zip(values, values[1:]))
            if decreasing:
                assert all(a > b for a, b in pairs), (alg_cls.__name__, values)
            else:
                assert all(a < b for a, b in pairs), (alg_cls.__name__, values)


@st.composite
def mesh_nd_case(draw):
    ndims = draw(st.integers(2, 4))
    dims = tuple(draw(st.integers(2, 4)) for _ in range(ndims))
    topo = Mesh(dims)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    seed = draw(st.integers(0, 2 ** 16))
    return topo, src, dst, seed


class TestNegativeFirstNDim:
    @given(mesh_nd_case())
    def test_theorem_5_on_random_nd_meshes(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        numbering = negative_first_numbering(topo)
        path = walk(NegativeFirst(topo), src, dst, rng=random.Random(seed))
        values = [numbering[c] for c in path_channels(topo, path)]
        assert all(a < b for a, b in zip(values, values[1:]))
