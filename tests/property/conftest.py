"""Hypothesis settings for the property suite: no per-example deadline
(the exhaustive-checking examples legitimately vary in cost across
machines), modest example counts for CI friendliness."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
